"""Fig. A — Adaptive-bitrate uplink vs. every fixed (modulation, rate).

A repo-original experiment for the adaptive PHY
(:mod:`repro.phy.modulation` / :mod:`repro.phy.rate`).  The measured
deployment spreads per-tag link quality across ~6 dB (tag8 sits on the
reference rib, tag11/tag12 hang off the rear frame), so no single
``(modulation, bitrate)`` serves the fleet: a rate fast enough for the
strong tags starves the weak ones, a rate safe for the weak tags wastes
the strong links' SNR headroom.  This sweep plays a three-phase channel
history — clean, degraded (a flat SNR penalty modelling a clamped rail /
welding-current burst), recovered — against

* **adaptive** — a per-tag :class:`~repro.phy.rate.RateController` on
  the default ladder, fed each round through the real telemetry
  pipeline (quality histograms → snapshot →
  :meth:`~repro.phy.rate.RateController.update_from_snapshot`), with
  jittered quality observations so the hysteresis machinery is
  actually exercised;
* **fixed** — one arm per registered
  :class:`~repro.phy.modulation.LinkConfig`, the same channel history,
  no adaptation.

Goodput charges each attempt its real airtime *plus* a fixed per-attempt
MAC overhead (slot guard, beacon share), so "blast at the top rate and
eat the losses" does not win by arithmetic accident.  Acceptance: the
adaptive arm's aggregate goodput strictly exceeds **every** fixed arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import telemetry
from repro.channel.medium import AcousticMedium
from repro.phy.modulation import LinkConfig, all_link_configs, get_modulation
from repro.phy.rate import (
    DEFAULT_LADDER,
    QUALITY_HISTOGRAM_BOUNDS_DB,
    QUALITY_METRIC,
    RateController,
)
from repro.sim.random import RandomStreams

#: Default seed; any seed works (the quality jitter is small against the
#: ladder margins), this one is pinned by the golden run.
DEFAULT_SEED = 23

#: Rounds per phase.  A round models one inventory pass: every tag gets
#: one attempt and eight quality observations.
CLEAN_ROUNDS = 20
DEGRADED_ROUNDS = 16
RECOVERY_ROUNDS = 12

#: Flat SNR penalty (dB) on every uplink during the degraded phase —
#: deep enough to kill the fast FM0 rungs, shallow enough that the FSK
#: fallback rungs still deliver.
PENALTY_DB = 13.0

#: Commissioning boot rung: new tags start at 750 bps raw FM0 (2x the
#: paper's stock rate, cleared with margin by every surveyed mount)
#: rather than the ladder's absolute bottom.
BOOT_CONFIG = LinkConfig("fm0_ook", 750.0)

#: Quality observations per tag per round, and their 1-sigma jitter
#: (dB): the telemetry histograms see a noisy estimator, not the
#: analytic truth, so dwell/hysteresis do real work.
OBS_PER_ROUND = 8
JITTER_DB = 0.5

#: Data payload bits delivered by one CRC-clean frame.
PAYLOAD_BITS = 12

#: Full frame length (preamble + TID + payload + CRC) in data bits.
FRAME_DATA_BITS = 32

#: Fixed per-attempt MAC overhead (s): slot guard time plus the tag's
#: share of the beacon — paid whether or not the frame decodes.
ATTEMPT_OVERHEAD_S = 0.020


@dataclass(frozen=True)
class FigAResult:
    """Aggregate goodputs plus the adaptive arm's per-tag story."""

    seed: int
    adaptive_goodput_bps: float
    fixed_goodput_bps: Dict[str, float]
    per_tag: Dict[str, Dict[str, object]]
    penalties_db: Tuple[float, ...]

    @property
    def best_fixed(self) -> Tuple[str, float]:
        label = max(self.fixed_goodput_bps, key=self.fixed_goodput_bps.get)
        return label, self.fixed_goodput_bps[label]

    @property
    def verdict(self) -> bool:
        """Adaptive must strictly beat every fixed arm."""
        return all(
            self.adaptive_goodput_bps > goodput
            for goodput in self.fixed_goodput_bps.values()
        )


def _penalty_schedule(
    clean: int, degraded: int, recovery: int, penalty_db: float
) -> Tuple[float, ...]:
    return (0.0,) * clean + (float(penalty_db),) * degraded + (0.0,) * recovery


def _attempt_goodput_bps(
    medium: AcousticMedium, tag: str, config: LinkConfig, penalty_db: float
) -> float:
    """Expected delivered data rate of one attempt under ``config``."""
    mod = get_modulation(config.modulation)
    success = medium.link_config_packet_success(
        tag, config, penalty_db=penalty_db
    )
    airtime_s = mod.frame_raw_bits(FRAME_DATA_BITS) / config.bitrate_bps
    return PAYLOAD_BITS * success / (airtime_s + ATTEMPT_OVERHEAD_S)


def run_figA(
    seed: int = DEFAULT_SEED,
    clean_rounds: int = CLEAN_ROUNDS,
    degraded_rounds: int = DEGRADED_ROUNDS,
    recovery_rounds: int = RECOVERY_ROUNDS,
    penalty_db: float = PENALTY_DB,
) -> FigAResult:
    """Play the three-phase history against adaptive and fixed arms."""
    medium = AcousticMedium()
    tags = sorted(name for name in medium.biw.mounts if name != "reader")
    penalties = _penalty_schedule(
        clean_rounds, degraded_rounds, recovery_rounds, penalty_db
    )

    # Adaptive arm: the plan standing at the start of each round carries
    # that round's traffic; the round's telemetry then updates the
    # controller for the next round (one-round reaction lag, like the
    # live networks).
    jitter_rng = RandomStreams(seed).stream("quality")
    controller = RateController(DEFAULT_LADDER, initial=BOOT_CONFIG)
    adaptive_total = 0.0
    for penalty in penalties:
        for tag in tags:
            adaptive_total += _attempt_goodput_bps(
                medium, tag, controller.config_for(tag), penalty
            )
        registry = telemetry.MetricsRegistry()
        for tag in tags:
            quality = medium.link_quality_db(tag, penalty_db=penalty)
            histogram = registry.histogram(
                QUALITY_METRIC, bounds=QUALITY_HISTOGRAM_BOUNDS_DB, tag=tag
            )
            for _ in range(OBS_PER_ROUND):
                histogram.observe(quality + JITTER_DB * jitter_rng.normal())
        controller.update_from_snapshot(registry.snapshot())
    n_attempts = len(penalties) * len(tags)
    adaptive_goodput = adaptive_total / n_attempts

    # Fixed arms: same channel history, one arm per registered config.
    fixed: Dict[str, float] = {}
    for config in all_link_configs():
        total = 0.0
        for penalty in penalties:
            for tag in tags:
                total += _attempt_goodput_bps(medium, tag, config, penalty)
        fixed[config.label] = total / n_attempts

    per_tag: Dict[str, Dict[str, object]] = {}
    for tag in tags:
        per_tag[tag] = {
            "quality_db": medium.link_quality_db(tag),
            "config": controller.config_for(tag).label,
            "switches": controller.switch_count(tag),
            "history": [list(entry) for entry in controller.history(tag)],
        }

    return FigAResult(
        seed=seed,
        adaptive_goodput_bps=adaptive_goodput,
        fixed_goodput_bps=fixed,
        per_tag=per_tag,
        penalties_db=penalties,
    )


def format_figA(result: FigAResult) -> str:
    """Render the sweep as an aligned table."""
    degraded = sum(1 for p in result.penalties_db if p > 0)
    lines = [
        f"adaptive uplink vs fixed configs (seed={result.seed}, "
        f"{len(result.penalties_db)} rounds, {degraded} degraded at "
        f"-{max(result.penalties_db):g} dB):",
        "",
        f"{'arm':>16}{'goodput bps':>14}",
    ]
    for label, goodput in sorted(
        result.fixed_goodput_bps.items(), key=lambda kv: kv[1]
    ):
        lines.append(f"{label:>16}{goodput:>14.1f}")
    lines.append(f"{'adaptive':>16}{result.adaptive_goodput_bps:>14.1f}")
    lines.append("")
    lines.append(f"{'tag':>6}{'quality':>9}{'switches':>10}  final config")
    for tag, info in sorted(
        result.per_tag.items(), key=lambda kv: kv[1]["quality_db"]
    ):
        lines.append(
            f"{tag:>6}{info['quality_db']:>9.2f}{info['switches']:>10}"
            f"  {info['config']}"
        )
    best_label, best_goodput = result.best_fixed
    margin = result.adaptive_goodput_bps - best_goodput
    lines.append("")
    lines.append(
        f"adaptive beats best fixed ({best_label}) by {margin:+.1f} bps: "
        + ("PASS" if result.verdict else "FAIL")
    )
    return "\n".join(lines)


def summarize_figA(result: FigAResult) -> Dict[str, object]:
    """JSON-able summary (experiment-runner / golden fragment)."""
    return {
        "seed": result.seed,
        "adaptive_goodput_bps": result.adaptive_goodput_bps,
        "fixed_goodput_bps": dict(result.fixed_goodput_bps),
        "per_tag": {tag: dict(info) for tag, info in result.per_tag.items()},
        "penalties_db": list(result.penalties_db),
        "verdict": result.verdict,
    }
