"""Fig. 8 — the beacon-loss shift story, rendered.

The paper's illustration: slots 0..7 with tags A, B, C, D occupying all
but slots 2 and 6.  Tag C (offset 1) misses a beacon: its stalled
counter shifts its *effective* offset to 2 — harmlessly into a free
slot (panel b).  A second miss shifts it onto B's slot 3 — a collision
(panel c).  This module reconstructs all three panels from the
assignment algebra and quantifies the two outcomes' probabilities for
any schedule, which is the analysis behind the Sec. 5.4 watchdog
refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.slot_schedule import Assignment, offsets_conflict

#: The paper's Fig. 8 setup: four tags over an 8-slot hyperperiod with
#: exactly slots 2 and 6 free; C originally transmits in slot 1 and B
#: owns offset 3 — so C's first missed beacon shifts it harmlessly into
#: slot 2 and a second miss collides it with B in slot 3.
FIG8_ASSIGNMENTS: Dict[str, Assignment] = {
    "A": Assignment("A", 4, 0),
    "B": Assignment("B", 4, 3),
    "C": Assignment("C", 8, 1),
    "D": Assignment("D", 8, 5),
}
FIG8_VICTIM = "C"


@dataclass(frozen=True)
class ShiftOutcome:
    """Where a tag lands after missing ``n_missed`` beacons."""

    n_missed: int
    effective_offset: int
    collides_with: Tuple[str, ...]

    @property
    def harmless(self) -> bool:
        return not self.collides_with


def shift_outcomes(
    assignments: Mapping[str, Assignment],
    victim: str,
    max_missed: int = 4,
) -> List[ShiftOutcome]:
    """Panel-by-panel: the victim's effective offset after each miss.

    A missed beacon stalls the local counter, so the effective offset
    advances by one per miss (Eq. 3 of the paper):
    ``a_eff = (a + n_missed) mod p``.
    """
    if victim not in assignments:
        raise KeyError(victim)
    a = assignments[victim]
    outcomes = []
    for n in range(max_missed + 1):
        offset = (a.offset + n) % a.period
        collisions = tuple(
            sorted(
                other.tag
                for name, other in assignments.items()
                if name != victim
                and offsets_conflict(a.period, offset, other.period, other.offset)
            )
        )
        outcomes.append(ShiftOutcome(n, offset, collisions))
    return outcomes


def shift_risk(
    assignments: Mapping[str, Assignment], victim: str
) -> Tuple[float, float]:
    """(P(first shift is harmless), P(first shift collides)) — the two
    outcomes Sec. 5.4 enumerates, for this schedule."""
    outcomes = shift_outcomes(assignments, victim, max_missed=1)
    first = outcomes[1]
    return (1.0, 0.0) if first.harmless else (0.0, 1.0)


def format_fig8() -> str:
    """Render the three panels of Fig. 8 for the paper's schedule."""
    from repro.analysis.render import render_schedule

    lines = ["Fig. 8(a) — original schedule (slots 2 and 6 free):"]
    lines.append(render_schedule(FIG8_ASSIGNMENTS, 8))
    outcomes = shift_outcomes(FIG8_ASSIGNMENTS, FIG8_VICTIM, max_missed=2)
    for outcome in outcomes[1:]:
        shifted = dict(FIG8_ASSIGNMENTS)
        shifted[FIG8_VICTIM] = Assignment(
            FIG8_VICTIM,
            FIG8_ASSIGNMENTS[FIG8_VICTIM].period,
            outcome.effective_offset,
        )
        panel = "b" if outcome.harmless else "c"
        verdict = (
            "harmless shift into a free slot"
            if outcome.harmless
            else f"collision with {', '.join(outcome.collides_with)}"
        )
        lines.append(
            f"\nFig. 8({panel}) — after {outcome.n_missed} missed "
            f"beacon(s), C's effective offset is {outcome.effective_offset} "
            f"({verdict}):"
        )
        lines.append(render_schedule(shifted, 8))
    lines.append(
        "\nThe Sec. 5.4 watchdog pre-empts panel (c): C re-enters MIGRATE "
        "at the first missed beacon instead of silently drifting."
    )
    return "\n".join(lines)
