"""Fig. R — Recovery time after injected beacon-loss bursts.

A repo-original experiment built on the fault-injection subsystem
(:mod:`repro.faults`): a converged six-tag network is hit with a
network-wide beacon-loss burst of 1..8 slots — every tag's Sec. 5.4
watchdog fires for the burst's duration, throwing them back to
MIGRATE — and we measure **slots-to-reconverge**: how long after the
burst clears until the reader again sees a full streak of
collision-free slots (:func:`repro.analysis.recovery.slots_to_reconverge`).

Every trial also replays itself under the same seed and checks the
fault trace's SHA-256 signature matches — the determinism contract of
the fault layer, asserted on every run of the experiment, not only in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.analysis.recovery import recovery_report, slots_to_reconverge
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.trace import TraceRecorder

#: Six tags at utilisation 11/16: disturbed allocations take visible
#: (but bounded) work to heal.
RECOVERY_PERIODS: Dict[str, int] = {
    "tag1": 4,
    "tag2": 8,
    "tag3": 8,
    "tag4": 16,
    "tag5": 16,
    "tag6": 16,
}

#: Slots of fault-free warm-up before the burst lands (ample for this
#: topology to converge from a cold start).
WARMUP_SLOTS = 600

#: Slots simulated after the burst clears.
MEASURE_SLOTS = 4000

#: Collision-free streak that counts as "recovered" (matches the
#: paper's convergence streak, Sec. 6.4).
RECOVERY_STREAK = 32

#: Burst lengths swept (slots of network-wide beacon loss).
DEFAULT_BURSTS: Sequence[int] = tuple(range(1, 9))


@dataclass(frozen=True)
class RecoveryTrial:
    """One burst length's outcome."""

    burst_slots: int
    slots_to_reconverge: Optional[int]
    collisions_after_clear: int
    trace_signature: str
    replay_identical: bool
    #: Fault events the controller applied/cleared during the measured
    #: run, consumed from the unified telemetry layer (not the trace).
    faults_applied: int = 0
    faults_cleared: int = 0


def _run_once(schedule: FaultSchedule, seed: int, n_slots: int) -> tuple:
    recorder = TraceRecorder()
    net = SlottedNetwork(
        RECOVERY_PERIODS,
        config=NetworkConfig(seed=seed, ideal_channel=True),
        faults=schedule,
        fault_recorder=recorder,
    )
    net.run(n_slots)
    return net, recorder


def run_figR(
    seed: int = 0,
    bursts: Sequence[int] = DEFAULT_BURSTS,
    warmup_slots: int = WARMUP_SLOTS,
    measure_slots: int = MEASURE_SLOTS,
    streak: int = RECOVERY_STREAK,
) -> List[RecoveryTrial]:
    """Sweep beacon-loss burst lengths; each trial verifies its own
    same-seed replay reproduces an identical fault trace."""
    trials: List[RecoveryTrial] = []
    for burst in bursts:
        if burst < 1:
            raise ValueError("burst length must be >= 1 slot")
        schedule = FaultSchedule(
            [
                FaultEvent(
                    slot=warmup_slots, duration=burst, kind="beacon_loss", target="*"
                )
            ]
        )
        n_slots = warmup_slots + burst + measure_slots
        tel = telemetry.active()
        if tel is None:
            with telemetry.collecting() as local:
                net, recorder = _run_once(schedule, seed, n_slots)
                snap = local.snapshot()
            applied = snap.total("faults.applied")
            cleared = snap.total("faults.cleared")
        else:
            before = tel.snapshot()
            net, recorder = _run_once(schedule, seed, n_slots)
            after = tel.snapshot()
            applied = after.total("faults.applied") - before.total("faults.applied")
            cleared = after.total("faults.cleared") - before.total("faults.cleared")
        report = recovery_report(net.records, schedule.last_clear_slot, streak)
        _, replay = _run_once(schedule, seed, n_slots)
        trials.append(
            RecoveryTrial(
                burst_slots=burst,
                slots_to_reconverge=report.slots_to_reconverge,
                collisions_after_clear=report.collisions_after_clear,
                trace_signature=recorder.signature(),
                replay_identical=replay.signature() == recorder.signature(),
                faults_applied=int(applied),
                faults_cleared=int(cleared),
            )
        )
    return trials


def format_figR(trials: List[RecoveryTrial]) -> str:
    """Render the burst-length sweep as an aligned table."""
    lines = [
        f"{'burst':>6}{'reconverge':>12}{'collisions':>12}{'replay':>8}  signature"
    ]
    for t in trials:
        reconverge = (
            str(t.slots_to_reconverge) if t.slots_to_reconverge is not None else "never"
        )
        replay = "ok" if t.replay_identical else "DRIFT"
        lines.append(
            f"{t.burst_slots:>6}{reconverge:>12}{t.collisions_after_clear:>12}"
            f"{replay:>8}  {t.trace_signature[:16]}"
        )
    return "\n".join(lines)
