"""Fig. 13 — Downlink packet loss and tag time synchronisation.

(a) DL beacon loss out of 1,000 sent vs raw bit rate.  Loss is timing-
    driven: the 12 kHz MCU timer and the reader's 0.1-0.3 ms software
    modulation jitter leave ample margin at 125-500 bps but blow
    through the half-raw-bit decision margin at 1000/2000 bps — the
    cliff of the paper's figure.
(b) Beacon reception time offset of each tag relative to Tag 6, from
    the envelope detector's amplitude-dependent threshold-crossing
    delay plus per-beacon jitter; the paper measures all offsets under
    5.0 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.medium import AcousticMedium
from repro.experiments.configs import DOWNLINK_BIT_RATES, PHY_PROBE_TAGS
from repro.phy.envelope import EnvelopeDetector
from repro.phy.pie import pie_packet_loss_probability
from repro.sim.random import RandomStreams

#: Reference tag for the synchronisation-offset measurement (Sec. 6.3).
SYNC_REFERENCE_TAG = "tag6"


@dataclass(frozen=True)
class DownlinkLossPoint:
    tag: str
    bit_rate_bps: float
    loss_probability: float
    expected_loss_per_1k: float


@dataclass(frozen=True)
class SyncOffsetSample:
    tag: str
    offsets_ms: np.ndarray

    @property
    def max_abs_ms(self) -> float:
        return float(np.max(np.abs(self.offsets_ms))) if self.offsets_ms.size else 0.0

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.offsets_ms)) if self.offsets_ms.size else 0.0


@dataclass(frozen=True)
class Fig13Result:
    loss_points: List[DownlinkLossPoint]
    sync_offsets: List[SyncOffsetSample]

    def loss(self, tag: str, rate: float) -> float:
        for p in self.loss_points:
            if p.tag == tag and p.bit_rate_bps == rate:
                return p.expected_loss_per_1k
        raise KeyError((tag, rate))


def run_fig13(
    medium: Optional[AcousticMedium] = None,
    tags: Sequence[str] = PHY_PROBE_TAGS,
    bit_rates: Sequence[float] = DOWNLINK_BIT_RATES,
    packets_sent: int = 1000,
    n_beacons: int = 200,
    per_beacon_jitter_ms: float = 0.4,
    seed: int = 0,
) -> Fig13Result:
    """Compute both panels of Fig. 13."""
    medium = medium if medium is not None else AcousticMedium()
    streams = RandomStreams(seed)
    loss_points = [
        DownlinkLossPoint(
            tag=tag,
            bit_rate_bps=rate,
            loss_probability=pie_packet_loss_probability(
                rate, downlink_snr_db=medium.downlink_snr_db(tag)
            ),
            expected_loss_per_1k=packets_sent
            * pie_packet_loss_probability(
                rate, downlink_snr_db=medium.downlink_snr_db(tag)
            ),
        )
        for tag in tags
        for rate in bit_rates
    ]

    detector = EnvelopeDetector()
    ref_delay = detector.threshold_crossing_delay_s(
        medium.carrier_amplitude_v(SYNC_REFERENCE_TAG)
    )
    sync: List[SyncOffsetSample] = []
    for tag in medium.tag_names():
        delay = detector.threshold_crossing_delay_s(medium.carrier_amplitude_v(tag))
        base_ms = (delay - ref_delay) * 1e3
        prop_ms = (
            medium.propagation_delay_s(tag)
            - medium.propagation_delay_s(SYNC_REFERENCE_TAG)
        ) * 1e3
        rng = streams.fork(tag).stream("sync")
        jitter = rng.normal(0.0, per_beacon_jitter_ms, size=n_beacons)
        sync.append(
            SyncOffsetSample(tag=tag, offsets_ms=base_ms + prop_ms + jitter)
        )
    return Fig13Result(loss_points=loss_points, sync_offsets=sync)


def format_fig13(result: Fig13Result) -> str:
    """Render the Fig. 13 loss grid and sync offsets as text."""
    rates = sorted({p.bit_rate_bps for p in result.loss_points})
    tags = sorted({p.tag for p in result.loss_points})
    lines = ["expected DL loss (out of 1000):"]
    lines.append(f"{'rate':>8} " + "".join(f"{t:>8}" for t in tags))
    for r in rates:
        lines.append(
            f"{r:>8.5g} " + "".join(f"{result.loss(t, r):>8.1f}" for t in tags)
        )
    lines.append("sync offsets vs tag6 (ms):")
    for s in result.sync_offsets:
        lines.append(f"{s.tag:<6} mean {s.mean_ms:+6.2f}  max|.| {s.max_abs_ms:5.2f}")
    return "\n".join(lines)
