"""Table 3 + Fig. 15 — First convergence time of the nine patterns.

First convergence time: slots until the reader sees 32 consecutive
collision-free slots after a RESET.  Fig. 15(a) sweeps slot utilisation
at a fixed 12 tags (c1-c5; paper medians grow 139 -> 1712 as U goes
0.38 -> 1.0); Fig. 15(b) sweeps tag count at fixed U = 0.75 (c2,
c6-c9), showing utilisation — not population — dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.experiments.configs import (
    FIXED_TAGS_SWEEP,
    FIXED_UTILIZATION_SWEEP,
    TransmissionPattern,
    pattern,
)

#: Convergence streak length (slots), Sec. 6.4.
CONVERGENCE_STREAK = 32


@dataclass(frozen=True)
class ConvergenceResult:
    """Per-pattern convergence statistics over repeated trials."""

    pattern_name: str
    utilization: float
    n_tags: int
    times: List[int]

    @property
    def median(self) -> float:
        return float(np.median(self.times)) if self.times else float("nan")

    @property
    def quartiles(self) -> tuple:
        if not self.times:
            return (float("nan"),) * 2
        return (
            float(np.percentile(self.times, 25)),
            float(np.percentile(self.times, 75)),
        )


def measure_convergence(
    patt: TransmissionPattern,
    n_trials: int = 10,
    medium: Optional[AcousticMedium] = None,
    seed: int = 0,
    max_slots: int = 100_000,
    ideal_channel: bool = True,
    streak: int = CONVERGENCE_STREAK,
) -> ConvergenceResult:
    """Run the pattern ``n_trials`` times from RESET and collect
    first-convergence times.

    ``ideal_channel`` defaults on: the convergence experiment isolates
    the protocol dynamics, matching the paper's controlled runs (their
    DL loss of <0.1% is negligible over these horizons).
    """
    medium = medium if medium is not None else AcousticMedium()
    times: List[int] = []
    for trial in range(n_trials):
        net = SlottedNetwork(
            patt.tag_periods(),
            medium=medium,
            config=NetworkConfig(seed=seed + 1000 * trial, ideal_channel=ideal_channel),
        )
        t = net.run_until_converged(streak=streak, max_slots=max_slots)
        if t is None:
            raise RuntimeError(
                f"pattern {patt.name} failed to converge within {max_slots} slots"
            )
        times.append(t)
    return ConvergenceResult(
        pattern_name=patt.name,
        utilization=float(patt.utilization),
        n_tags=patt.n_tags,
        times=times,
    )


def run_fig15(
    sweep: Sequence[str] = FIXED_TAGS_SWEEP,
    n_trials: int = 10,
    seed: int = 0,
    medium: Optional[AcousticMedium] = None,
) -> Dict[str, ConvergenceResult]:
    """Run one Fig. 15 panel (pass FIXED_UTILIZATION_SWEEP for (b))."""
    medium = medium if medium is not None else AcousticMedium()
    return {
        name: measure_convergence(pattern(name), n_trials, medium, seed)
        for name in sweep
    }


def format_fig15(results: Dict[str, ConvergenceResult]) -> str:
    """Render per-pattern convergence statistics (Table 3 / Fig. 15)."""
    lines = [
        f"{'pattern':<8}{'tags':>5}{'util':>7}{'median':>9}{'q25':>8}{'q75':>8}"
    ]
    for name, r in results.items():
        q25, q75 = r.quartiles
        lines.append(
            f"{name:<8}{r.n_tags:>5}{r.utilization:>7.3f}"
            f"{r.median:>9.0f}{q25:>8.0f}{q75:>8.0f}"
        )
    return "\n".join(lines)
