"""Table 2 — Tag power consumption in the three operating modes.

Reproduces the power table (RX 24.8 uW, TX 51.0 uW, IDLE 7.6 uW at
2.0 V) and the Sec. 6.2 sustainability argument: the protocol's
duty-cycled consumption fits inside even the worst tag's 47.1 uW net
charging power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.network import DEFAULT_SLOT_DURATION_S
from repro.hardware.mcu import Mcu, McuMode
from repro.hardware.power import TagPowerModel
from repro.phy.fm0 import fm0_frame_duration_s
from repro.phy.packets import UL_FRAME_BITS


@dataclass(frozen=True)
class Table2Result:
    table: Dict[str, Dict[str, float]]
    rx_savings_vs_active: float
    tx_savings_vs_active: float
    duty_cycled_power_w: float
    worst_case_budget_w: float

    @property
    def sustainable(self) -> bool:
        return self.duty_cycled_power_w <= self.worst_case_budget_w


def run_table2(
    period_slots: int = 4,
    slot_duration_s: float = DEFAULT_SLOT_DURATION_S,
    ul_raw_rate_bps: float = 375.0,
    dl_beacon_duration_s: float = 0.104,
    worst_case_budget_w: float = 47.1e-6,
) -> Table2Result:
    """Build Table 2 and check the energy budget for a tag transmitting
    every ``period_slots`` slots (the densest permitted schedule)."""
    power = TagPowerModel()
    mcu = Mcu()
    # 32 data bits FM0-coded at the 375 bps raw rate: ~171 ms airtime.
    ul_duration = fm0_frame_duration_s(UL_FRAME_BITS, ul_raw_rate_bps)
    rx_fraction = dl_beacon_duration_s / slot_duration_s
    tx_fraction = ul_duration / (period_slots * slot_duration_s)
    duty_power = power.duty_cycled_power_w(rx_fraction, tx_fraction)
    return Table2Result(
        table=power.table(),
        rx_savings_vs_active=mcu.savings_vs_active(McuMode.RX),
        tx_savings_vs_active=mcu.savings_vs_active(McuMode.TX),
        duty_cycled_power_w=duty_power,
        worst_case_budget_w=worst_case_budget_w,
    )


def format_table2(result: Table2Result) -> str:
    """Render Table 2 plus the sustainability verdict."""
    lines = [f"{'Mode':<6}{'MCU uA':>8}{'Total uA':>10}{'V':>6}{'Power uW':>10}"]
    for mode in ("RX", "TX", "IDLE"):
        row = result.table[mode]
        lines.append(
            f"{mode:<6}{row['mcu_current_ua']:>8.1f}{row['total_current_ua']:>10.1f}"
            f"{row['voltage_v']:>6.1f}{row['total_power_uw']:>10.1f}"
        )
    lines.append(
        f"duty-cycled avg: {result.duty_cycled_power_w * 1e6:.1f} uW vs "
        f"budget {result.worst_case_budget_w * 1e6:.1f} uW "
        f"({'sustainable' if result.sustainable else 'NOT sustainable'})"
    )
    return "\n".join(lines)
