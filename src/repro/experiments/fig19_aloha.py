"""Fig. 19 (Appendix B) — Per-tag ALOHA transmission/collision stats.

Charging times come straight from the deployment's harvesting chain
(Fig. 11b), so the baseline sees the same 4.5-56.2 s asymmetry the
protocol does.  Paper findings to reproduce: ~34.0% of transmissions
collision-free overall, per-tag success 28.4%-37.3%, Tag 8 transmitting
>11,000 times yet colliding in >60% of attempts, and slow tags faring
even worse — the unfairness that motivates distributed slot allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.aloha import AlohaResult, AlohaSimulation
from repro.channel.medium import AcousticMedium
from repro.hardware.harvester import EnergyHarvester


def deployment_charge_times(
    medium: Optional[AcousticMedium] = None,
) -> Dict[str, float]:
    """Full-charge times for all deployed tags from the energy model."""
    medium = medium if medium is not None else AcousticMedium()
    harvester = EnergyHarvester()
    return {
        tag: harvester.charge_time_s(medium.carrier_amplitude_v(tag))
        for tag in medium.tag_names()
    }


def run_fig19(
    duration_s: float = 10_000.0,
    seed: int = 0,
    medium: Optional[AcousticMedium] = None,
) -> AlohaResult:
    """Run the Appendix B ALOHA simulation on the real deployment."""
    sim = AlohaSimulation(
        deployment_charge_times(medium),
        duration_s=duration_s,
        seed=seed,
    )
    return sim.run()


def format_fig19(result: AlohaResult) -> str:
    """Render the per-tag ALOHA table of Fig. 19."""
    lines = [
        f"{'tag':<7}{'charge_s':>9}{'total_tx':>10}{'collided':>10}{'success':>9}"
    ]
    for tag in sorted(result.per_tag, key=lambda t: int(t.lstrip("tag"))):
        s = result.per_tag[tag]
        lines.append(
            f"{tag:<7}{s.charge_time_s:>9.1f}{s.total_tx:>10}"
            f"{s.collided_tx:>10}{s.success_rate:>9.1%}"
        )
    lines.append(
        f"overall collision-free: {result.overall_success_rate:.1%} (paper: 34.0%)"
    )
    return "\n".join(lines)
