"""Fig. M — Multi-hop relaying vs. direct-only on a junction ladder.

A repo-original experiment for the :mod:`repro.relay` subsystem.  The
paper's link budget (Sec. 4.2) charges every junction crossing twice on
the round-trip uplink but only once on the one-way downlink — so a tag
a few bulkheads deep still hears beacons while its own backscatter dies
on the way home.  This sweep measures what relaying buys in exactly
that regime: the :func:`repro.channel.deep_structure` ladder mounts six
tags at junction depths 0–5, and the same population runs twice under
the same seed:

* **direct** — :class:`~repro.relay.RelaySlottedNetwork` with
  ``relaying_enabled=False`` plus the PR 3 recovery ladder: byte-wise
  the plain network, the degradation baseline;
* **relayed** — relaying on, with
  :class:`~repro.resilience.RelayFallbackPolicy` engaging routes when
  the link health monitor gives up on a direct link.

The acceptance shape: tags at depth ≥ 3 deliver (strictly) more with
relaying, while shallow tags — which never engage a route — are no
worse.  (In practice they improve too: in the direct arm the dead tags
never commit and keep retrying at random offsets, polluting the
contention space; engaging routes retires that thrash.)  Delivery is
measured over the trailing window only, so the absent-detection and
route-engagement transient is excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.channel import deep_structure
from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig
from repro.relay import RelaySlottedNetwork
from repro.resilience import (
    NetworkSupervisor,
    RelayFallbackPolicy,
    default_policies,
)

#: Default seed; any seed works (the depth-3+ tags' direct uplink is
#: physics-dead, not unlucky), this one keeps the shallow tags' two
#: arms visually close.
DEFAULT_SEED = 3

#: Every ladder tag on the same period: equal offered load per depth.
FIGM_PERIOD = 8

#: Total slots simulated per arm.
N_SLOTS = 600

#: Trailing slots delivery is averaged over (excludes route engagement).
MEASURE_SLOTS = 400

#: Relayed delivery may trail direct by at most this much for shallow
#: tags (they never engage a route; the slack is pure sampling noise).
SHALLOW_TOLERANCE = 0.02

#: Junction depth at which the direct uplink is dead and relaying must
#: strictly win.
DEEP_DEPTH = 3


@dataclass(frozen=True)
class RelayDepthTrial:
    """One tag's paired direct/relayed outcome."""

    tag: str
    depth: int
    direct_delivery: float
    relayed_delivery: float
    route: Optional[Tuple[str, ...]]
    hops: int
    relayed_frames: int
    dropped_frames: int

    @property
    def verdict(self) -> bool:
        """Deep tags must strictly improve; shallow tags must be no
        worse (up to sampling slack)."""
        if self.depth >= DEEP_DEPTH:
            return self.relayed_delivery > self.direct_delivery
        return self.relayed_delivery >= self.direct_delivery - SHALLOW_TOLERANCE


def _build(seed: int, relaying: bool) -> Tuple[RelaySlottedNetwork, NetworkSupervisor]:
    medium = AcousticMedium(biw=deep_structure(), reference_tag="tag1")
    periods = {name: FIGM_PERIOD for name in medium.biw.mounts if name != "reader"}
    net = RelaySlottedNetwork(
        periods,
        config=NetworkConfig(seed=seed),
        medium=medium,
        relaying_enabled=relaying,
    )
    policies = default_policies()
    if relaying:
        policies.append(RelayFallbackPolicy())
    return net, NetworkSupervisor(net, policies=policies)


def _delivery(net: RelaySlottedNetwork, measure_slots: int) -> Dict[str, float]:
    expected = measure_slots / FIGM_PERIOD
    counts = {name: 0 for name in net.tags}
    for record in net.records[-measure_slots:]:
        if record.decoded is not None and record.acked:
            counts[record.decoded] += 1
    return {name: counts[name] / expected for name in counts}


def run_figM(
    seed: int = DEFAULT_SEED,
    n_slots: int = N_SLOTS,
    measure_slots: int = MEASURE_SLOTS,
) -> List[RelayDepthTrial]:
    """Run both arms on the junction ladder, one trial per tag."""
    direct_net, direct_sup = _build(seed, relaying=False)
    for _ in range(n_slots):
        direct_sup.step()
    relay_net, relay_sup = _build(seed, relaying=True)
    for _ in range(n_slots):
        relay_sup.step()

    direct = _delivery(direct_net, measure_slots)
    relayed = _delivery(relay_net, measure_slots)
    biw = relay_net.medium.biw
    trials: List[RelayDepthTrial] = []
    for name in sorted(direct, key=lambda n: biw.junction_depth(n)):
        route = relay_net.routes.get(name)
        trials.append(
            RelayDepthTrial(
                tag=name,
                depth=biw.junction_depth(name),
                direct_delivery=direct[name],
                relayed_delivery=relayed[name],
                route=route.chain if route is not None else None,
                hops=route.hops if route is not None else 0,
                relayed_frames=route.delivered if route is not None else 0,
                dropped_frames=route.dropped if route is not None else 0,
            )
        )
    return trials


def format_figM(trials: Sequence[RelayDepthTrial]) -> str:
    """Render the sweep as an aligned table."""
    lines = [
        f"{'tag':>6}{'depth':>6}{'direct':>8}{'relayed':>8}{'hops':>6}"
        f"{'fwd':>6}{'drop':>6}  route / verdict"
    ]
    for t in trials:
        route = ">".join(t.route) if t.route else "-"
        if t.depth >= DEEP_DEPTH:
            verdict = "rescued" if t.verdict else "STILL DARK"
        else:
            verdict = "no worse" if t.verdict else "REGRESSED"
        lines.append(
            f"{t.tag:>6}{t.depth:>6}{t.direct_delivery:>8.3f}"
            f"{t.relayed_delivery:>8.3f}{t.hops:>6}{t.relayed_frames:>6}"
            f"{t.dropped_frames:>6}  {route} ({verdict})"
        )
    deep = [t for t in trials if t.depth >= DEEP_DEPTH]
    rescued = sum(1 for t in deep if t.verdict)
    lines.append("")
    lines.append(
        f"{rescued}/{len(deep)} junction-shadowed tags (depth >= "
        f"{DEEP_DEPTH}) rescued by relaying"
    )
    return "\n".join(lines)


def summarize_figM(trials: Sequence[RelayDepthTrial]) -> Dict[str, object]:
    """JSON-able summary keyed by tag (experiment-runner fragment)."""
    out: Dict[str, object] = {}
    for t in trials:
        out[t.tag] = {
            "depth": t.depth,
            "direct_delivery": t.direct_delivery,
            "relayed_delivery": t.relayed_delivery,
            "route": list(t.route) if t.route else None,
            "hops": t.hops,
            "relayed_frames": t.relayed_frames,
            "dropped_frames": t.dropped_frames,
            "verdict": t.verdict,
        }
    return out
