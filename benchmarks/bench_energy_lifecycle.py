"""Energy-lifecycle bench: the Sec. 6.2 sustainability argument run
dynamically (supercapacitor physics in the slot loop), plus the
brown-out/recovery cycle the cutoff circuit enables."""

import numpy as np

from repro.core.energy_network import EnergyAwareNetwork
from repro.core.network import NetworkConfig
from repro.experiments.configs import pattern


def test_dynamic_sustainability(benchmark, medium):
    """Protocol duty cycle over 2000 slots: zero brownouts, activation
    spread matching the Fig. 11(b) charging times."""

    def run():
        net = EnergyAwareNetwork(
            pattern("c2").tag_periods(),
            medium,
            NetworkConfig(seed=1, ideal_channel=True),
        )
        net.run(2000)
        dark = {n: log.slots_dark for n, log in net.energy_log.items()}
        return net.total_brownouts(), net.settled_fraction(), dark

    brownouts, settled, dark = benchmark.pedantic(run, rounds=1, iterations=1)
    assert brownouts == 0
    assert settled == 1.0
    assert dark["tag8"] <= 6  # 4.5 s charge at 1 s slots
    assert 50 <= max(dark.values()) <= 62  # ~57 s for the cargo tags
    print(
        f"\nEnergy lifecycle (sustainable): 0 brownouts over 2000 slots; "
        f"activation spread {min(dark.values())}-{max(dark.values())} slots "
        f"(paper charging times: 4.5-56.2 s)"
    )


def test_overload_brownout_cycle(benchmark, medium):
    """An over-budget sensing load (60 uW) browns out only the tags
    whose net harvest cannot cover it — and they resume from LTH."""

    def run():
        net = EnergyAwareNetwork(
            {"tag11": 4, "tag8": 4},
            medium,
            NetworkConfig(seed=1, ideal_channel=True),
            sensor_samples_per_slot=60,
        )
        net.run(2000)
        return (
            net.energy_log["tag11"].brownouts,
            net.energy_log["tag8"].brownouts,
            net.availability(),
        )

    weak_bo, strong_bo, availability = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert weak_bo > 0
    assert strong_bo == 0
    print(
        f"\nEnergy lifecycle (overloaded, +60 uW sensing): tag11 "
        f"{weak_bo} brownouts (availability {availability['tag11']:.1%}), "
        f"tag8 none (availability {availability['tag8']:.1%}) — the 47.1 vs "
        f"587.8 uW budget asymmetry, live"
    )
