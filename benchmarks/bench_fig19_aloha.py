"""Fig. 19 (Appendix B) — per-tag ALOHA transmission and collision
statistics over 10,000 s with the deployment's real charging times."""

from repro.experiments.fig19_aloha import format_fig19, run_fig19


def test_fig19_aloha(benchmark, medium):
    result = benchmark.pedantic(
        run_fig19,
        kwargs=dict(duration_s=10_000.0, seed=3, medium=medium),
        rounds=1,
        iterations=1,
    )
    # Paper: 34.0% collision-free overall; Tag 8 >11,000 transmissions
    # with >60% collisions; slow tags >70% collisions.
    assert 0.25 <= result.overall_success_rate <= 0.40
    assert result.per_tag["tag8"].total_tx > 11_000
    assert result.per_tag["tag8"].success_rate < 0.45
    assert result.per_tag["tag11"].success_rate < 0.30
    print("\nFig. 19 (paper: 34.0% overall, per-tag 28.4-37.3%):")
    print(format_fig19(result))
