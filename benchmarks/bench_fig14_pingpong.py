"""Fig. 14 — ping-pong latency CDF: DL beacon airtime (stage 1) and
DL-end-to-UL-decoded delay (stage 2)."""

import pytest

from repro.experiments.fig14_pingpong import format_fig14, run_fig14


def test_fig14_pingpong(benchmark):
    result = benchmark(run_fig14, 2000)
    assert result.percentile_stage2_s(99) * 1e3 == pytest.approx(281.9, abs=15.0)
    assert result.mean_software_delay_s() * 1e3 == pytest.approx(58.9, abs=3.0)
    assert result.software_delay_fraction_of_ul() < 0.30
    print("\nFig. 14 (paper: 99% of stage 2 < 281.9 ms, software ~58.9 ms):")
    print(format_fig14(result))
