"""Fig. 13 — downlink packet loss vs bit rate (a) and per-tag beacon
synchronisation offsets (b)."""

from repro.experiments.fig13_downlink import format_fig13, run_fig13


def test_fig13_downlink(benchmark, medium):
    result = benchmark(run_fig13, medium)
    for tag in ("tag8", "tag4", "tag11"):
        assert result.loss(tag, 250.0) < 5.0
        assert result.loss(tag, 1000.0) > 200.0
        assert result.loss(tag, 2000.0) > 800.0
    for s in result.sync_offsets:
        assert s.max_abs_ms < 5.0  # paper: all offsets under 5.0 ms
    print("\nFig. 13 (paper: loss explodes at 1000/2000 bps; sync < 5 ms):")
    print(format_fig13(result))
