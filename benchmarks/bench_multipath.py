"""Multipath/ISI bench: the physical basis of the paper's conservative
bit-rate choice (Sec. 4.1 "Design Choice").

The deployment's echo delay spreads (~100-200 us from first-order edge
reflections) are negligible against the 375 bps raw bit (2.67 ms) but a
meaningful fraction of a 3000 bps bit (0.33 ms) — so heavy multipath
degrades the fast rates first, exactly the robustness argument for the
default rate."""

import numpy as np

from repro.channel.multipath import Echo, ImpulseResponse, MultipathModel
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket
from repro.phy.reader_dsp import ReaderReceiveChain


def test_multipath_rate_robustness(benchmark, medium):
    def run():
        model = MultipathModel(propagation=medium.propagation)
        spreads = {
            tag: model.impulse_response(tag).rms_delay_spread_s()
            for tag in ("tag8", "tag4", "tag11")
        }
        # Stress response: echoes pushed toward a 3000 bps bit time.
        stress = ImpulseResponse(
            (Echo(0.15e-3, 0.6), Echo(0.3e-3, 0.45), Echo(0.6e-3, 0.3))
        )
        uplink = BackscatterUplink(pzt=medium.pzt)
        chain = ReaderReceiveChain()
        rng = np.random.default_rng(1)
        decode = {}
        for rate in (375.0, 3000.0):
            ok = 0
            for k in range(10):
                pkt = UplinkPacket(1, 60 + k)
                comp = uplink.tag_component(
                    pkt.to_bits(), rate, 0.025, phase_rad=0.7 * k,
                    lead_in_s=max(0.012, 8.0 / rate),
                )
                cap = uplink.capture(
                    [stress.apply(comp)], medium.noise.psd_v2_per_hz, rng,
                    extra_samples=2000,
                )
                ok += pkt in chain.decode(cap, rate).packets
            decode[rate] = ok
        return spreads, decode

    spreads, decode = benchmark.pedantic(run, rounds=1, iterations=1)
    for tag, spread in spreads.items():
        assert spread < 0.1 / 375.0  # spread << default raw bit
    assert decode[375.0] > decode[3000.0]
    print(
        "\nMultipath / ISI (why 375 bps is the safe default):\n"
        "  deployment delay spreads: "
        + ", ".join(f"{t}: {s * 1e6:.0f} us" for t, s in spreads.items())
        + f"\n  under stress echoes: {decode[375.0]}/10 decode at 375 bps "
        f"vs {decode[3000.0]}/10 at 3000 bps"
    )
