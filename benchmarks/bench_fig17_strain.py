"""Fig. 17 — strain case study: reconstructed voltage vs displacement
for the three gauge tags, through real UL packets."""

from repro.experiments.fig17_strain import format_fig17, run_fig17


def test_fig17_strain(benchmark):
    result = benchmark(run_fig17)
    assert len(result.curves) == 3
    for c in result.curves:
        assert c.correlation() > 0.99  # "a clear correlation"
    slopes = [(c.voltage_v[-1] - c.voltage_v[0]) for c in result.curves]
    assert len({round(s, 3) for s in slopes}) == 3  # distinct sensitivities
    print("\nFig. 17 (monotone voltage/displacement per tag):")
    print(format_fig17(result))
