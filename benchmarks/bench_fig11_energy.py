"""Fig. 11 — amplified voltage per stage count for all 12 tags (a) and
charging time vs 16x voltage (b)."""

import pytest

from repro.experiments.fig11_energy import format_fig11, run_fig11


def test_fig11_energy(benchmark, medium):
    result = benchmark(run_fig11, medium)
    assert result.all_activate_at_8_stages()
    lo_t, hi_t = result.charging_time_range_s()
    assert lo_t == pytest.approx(4.5, abs=0.1)
    assert hi_t == pytest.approx(56.2, rel=0.03)
    row4 = next(r for r in result.rows if r.tag == "tag4")
    row11 = next(r for r in result.rows if r.tag == "tag11")
    assert row4.amplified_16x_v == pytest.approx(4.74, abs=0.1)
    assert row11.amplified_16x_v == pytest.approx(2.70, abs=0.05)
    print("\nFig. 11 (paper anchors: tag4 4.74 V, tag11 2.70 V @16x; "
          "charge 4.5-56.2 s):")
    print(format_fig11(result))
