"""Fig. 16 — long-running slot statistics under pattern c3: non-empty
ratio vs the 0.84375 bound and the collision ratio over 10,000 slots."""

from repro.experiments.fig16_longrun import format_fig16, run_fig16


def test_fig16_longrun(benchmark, medium):
    result = benchmark.pedantic(
        run_fig16,
        kwargs=dict(n_slots=10_000, seed=2, medium=medium),
        rounds=1,
        iterations=1,
    )
    # Paper: average non-empty 0.812 (bound 0.84375), collision 0.056.
    assert 0.74 <= result.mean_non_empty <= result.utilization_bound + 0.01
    assert result.mean_collision < 0.12
    print("\nFig. 16 (paper: non-empty 0.812, collision 0.056):")
    print(format_fig16(result))
