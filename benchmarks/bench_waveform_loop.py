"""Waveform-in-the-loop bench: the MAC driven by the real DSP chain,
certifying the fast slot-level outcome model.

Two legs: the default template fast path (baseband tag templates +
cached leak/noise assembly) and the uncached reference pipeline
(``REPRO_PHY_FAST=0`` semantics via :func:`repro.phy.cache.fast_path`).
Both must produce identical decode outcomes — the differential suite
in ``tests/phy/test_fast_path_differential.py`` pins that byte-for-byte;
here we only require the same convergence/decode counts while timing
each leg.  Throughput per tier is tracked in
``benchmarks/BENCH_waveform.json`` (see ``tools/bench_smoke.py``).
"""

from repro.core.network import NetworkConfig
from repro.core.waveform_network import WaveformNetwork
from repro.phy import cache as phy_cache


def _drive(medium):
    net = WaveformNetwork(
        {"tag5": 4, "tag8": 4, "tag9": 8},
        medium=medium,
        config=NetworkConfig(seed=3),
    )
    conv = net.run_until_converged(streak=16, max_slots=400)
    records = net.run(40)
    decoded = sum(1 for r in records if r.decoded is not None)
    collided = sum(1 for r in records if r.truly_collided)
    return conv, decoded, collided, len(net.slot_logs)


def test_waveform_fidelity_convergence(benchmark, medium):
    def run():
        with phy_cache.fast_path(True):
            return _drive(medium)

    conv, decoded, collided, slots = benchmark.pedantic(run, rounds=1, iterations=1)
    assert conv is not None
    assert decoded >= 20  # ~U x 40 = 25
    assert collided == 0
    print(
        f"\nWaveform-in-the-loop: converged in {conv} slots through the "
        f"real FM0 chain + IQ clustering; {decoded}/40 slots decoded "
        f"post-convergence (U = 0.625), {collided} collisions "
        f"({slots} slots of full DSP)"
    )


def test_waveform_fidelity_convergence_reference(benchmark, medium):
    """Same drive with the fast path off: times the executable-spec
    pipeline (per-tag passband synthesis + full mix/filter/decimate)."""

    def run():
        with phy_cache.fast_path(False):
            return _drive(medium)

    conv, decoded, collided, slots = benchmark.pedantic(run, rounds=1, iterations=1)
    assert conv is not None
    assert decoded >= 20
    assert collided == 0
    print(
        f"\nReference pipeline: converged in {conv} slots, {decoded}/40 "
        f"decoded post-convergence, {collided} collisions "
        f"({slots} slots of full DSP)"
    )
