"""Waveform-in-the-loop bench: the MAC driven by the real DSP chain,
certifying the fast slot-level outcome model."""

from repro.core.network import NetworkConfig
from repro.core.waveform_network import WaveformNetwork


def test_waveform_fidelity_convergence(benchmark, medium):
    def run():
        net = WaveformNetwork(
            {"tag5": 4, "tag8": 4, "tag9": 8},
            medium=medium,
            config=NetworkConfig(seed=3),
        )
        conv = net.run_until_converged(streak=16, max_slots=400)
        records = net.run(40)
        decoded = sum(1 for r in records if r.decoded is not None)
        collided = sum(1 for r in records if r.truly_collided)
        return conv, decoded, collided, len(net.slot_logs)

    conv, decoded, collided, slots = benchmark.pedantic(run, rounds=1, iterations=1)
    assert conv is not None
    assert decoded >= 20  # ~U x 40 = 25
    assert collided == 0
    print(
        f"\nWaveform-in-the-loop: converged in {conv} slots through the "
        f"real FM0 chain + IQ clustering; {decoded}/40 slots decoded "
        f"post-convergence (U = 0.625), {collided} collisions "
        f"({slots} slots of full DSP)"
    )
