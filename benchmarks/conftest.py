"""Shared benchmark fixtures."""

import pytest

from repro.channel.medium import AcousticMedium


@pytest.fixture(scope="session")
def medium() -> AcousticMedium:
    return AcousticMedium()
