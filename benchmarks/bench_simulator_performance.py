"""Simulator performance: slots per second across the three execution
fidelities.  A systems repo should know its own speed envelope — these
numbers size what each fidelity can afford (10^5 slots for protocol
sweeps, 10^2-10^3 for DSP-in-the-loop certification)."""

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.realtime import RealtimeNetwork
from repro.core.waveform_network import WaveformNetwork
from repro.experiments.configs import pattern

PERIODS = {"tag5": 4, "tag8": 4, "tag9": 8}


def test_perf_slot_level(benchmark, medium):
    def run():
        net = SlottedNetwork(
            pattern("c3").tag_periods(),
            medium=medium,
            config=NetworkConfig(seed=1, ideal_channel=True),
        )
        net.run(2000)
        return len(net.records)

    slots = benchmark(run)
    assert slots == 2000


def test_perf_realtime(benchmark, medium):
    def run():
        net = RealtimeNetwork(
            PERIODS, medium=medium, config=NetworkConfig(seed=1, ideal_channel=True)
        )
        net.run(500)
        net.stop()
        return len(net.records)

    slots = benchmark(run)
    assert slots == 500


def test_perf_waveform_in_the_loop(benchmark, medium):
    def run():
        net = WaveformNetwork(
            PERIODS, medium=medium, config=NetworkConfig(seed=1)
        )
        net.run(30)
        return len(net.records)

    slots = benchmark.pedantic(run, rounds=2, iterations=1)
    assert slots == 30


def test_perf_engine_event_throughput(benchmark):
    from repro.sim.engine import Simulator

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.schedule_in(0.001, tick)

        sim.schedule_in(0.0, tick)
        sim.run()
        return count

    events = benchmark(run)
    assert events == 20_000
