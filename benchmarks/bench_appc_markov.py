"""Appendix C — mechanical verification of the convergence proof on
exhaustively-enumerable configurations, plus exact expected
convergence times from the fundamental matrix."""

from repro.analysis.markov import SlotAllocationChain


def test_appc_verify_absorbing(benchmark):
    def verify():
        out = {}
        for periods in [(2, 2), (2, 4), (4, 4), (2, 4, 4), (4, 4, 2)]:
            chain = SlotAllocationChain(periods)
            out[periods] = (
                chain.verify_lemma1(),
                chain.verify_absorbing(),
                chain.expected_absorption_time(),
            )
        return out

    results = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert all(lemma1 and absorbing for lemma1, absorbing, _ in results.values())
    print("\nAppendix C (absorbing Markov chain verification):")
    for periods, (lemma1, absorbing, et) in results.items():
        print(
            f"  periods {periods}: lemma1={lemma1} absorbing={absorbing} "
            f"E[convergence]={et:.2f} slots"
        )
