"""Mega-casting bench (Sec. 1): quantifies the paper's claim that
single-piece casting — fewer seams — yields "a more uniform medium for
vibration propagation"."""

from repro.channel.biw import onvo_l60, onvo_l60_megacast
from repro.channel.medium import AcousticMedium
from repro.channel.propagation import PropagationModel
from repro.hardware.harvester import EnergyHarvester


def test_megacasting_benefit(benchmark):
    def run():
        harvester = EnergyHarvester()
        out = {}
        for name, factory in (("stamped", onvo_l60), ("megacast", onvo_l60_megacast)):
            biw = factory()
            medium = AcousticMedium(biw=biw, propagation=PropagationModel(biw))
            voltages = {
                t: medium.carrier_amplitude_v(t) for t in medium.tag_names()
            }
            out[name] = {
                "worst_16x_v": min(
                    harvester.amplified_voltage_v(v) for v in voltages.values()
                ),
                "worst_charge_s": max(
                    harvester.charge_time_s(v) for v in voltages.values()
                ),
                "mean_loss_db": sum(
                    medium.propagation.link("reader", t).loss_db
                    for t in medium.tag_names()
                )
                / 12.0,
            }
        return out

    results = benchmark(run)
    stamped, cast = results["stamped"], results["megacast"]
    assert cast["worst_16x_v"] > stamped["worst_16x_v"]
    assert cast["worst_charge_s"] < stamped["worst_charge_s"]
    assert cast["mean_loss_db"] < stamped["mean_loss_db"]
    print(
        "\nMega-casting (Sec. 1 claim, quantified):\n"
        f"  worst-tag 16x voltage: {stamped['worst_16x_v']:.2f} V -> "
        f"{cast['worst_16x_v']:.2f} V\n"
        f"  worst-tag charge time: {stamped['worst_charge_s']:.1f} s -> "
        f"{cast['worst_charge_s']:.1f} s\n"
        f"  mean one-way path loss: {stamped['mean_loss_db']:.1f} dB -> "
        f"{cast['mean_loss_db']:.1f} dB"
    )
