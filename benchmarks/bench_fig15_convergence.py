"""Table 3 + Fig. 15 — first convergence time across the nine
transmission patterns: (a) fixed 12 tags, rising utilisation;
(b) fixed utilisation 0.75, shrinking tag count."""

import numpy as np

from repro.experiments.configs import (
    FIXED_TAGS_SWEEP,
    FIXED_UTILIZATION_SWEEP,
)
from repro.experiments.table3_convergence import format_fig15, run_fig15

N_TRIALS = 8


def test_fig15a_fixed_tags(benchmark, medium):
    results = benchmark.pedantic(
        run_fig15,
        kwargs=dict(sweep=FIXED_TAGS_SWEEP, n_trials=N_TRIALS, medium=medium),
        rounds=1,
        iterations=1,
    )
    medians = [results[n].median for n in FIXED_TAGS_SWEEP]
    # Paper: medians rise 139 -> 1712 as U goes 0.38 -> 1.0; the shape
    # to hold is strong monotone-ish growth with a >5x end-to-end ratio.
    assert medians[-1] > 5 * medians[0]
    assert results["c5"].median > results["c3"].median > results["c1"].median
    print("\nFig. 15(a) (paper medians: c1 139 ... c5 1712):")
    print(format_fig15(results))


def test_fig15b_fixed_utilization(benchmark, medium):
    results = benchmark.pedantic(
        run_fig15,
        kwargs=dict(
            sweep=FIXED_UTILIZATION_SWEEP, n_trials=N_TRIALS, medium=medium, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    medians = np.array([results[n].median for n in FIXED_UTILIZATION_SWEEP])
    # Paper: at fixed U=0.75 convergence times cluster — utilisation,
    # not tag count, is the dominant factor.
    assert medians.max() < 8 * medians.min()
    print("\nFig. 15(b) (paper: comparable times across c2, c6-c9):")
    print(format_fig15(results))
