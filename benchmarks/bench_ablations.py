"""Ablations of the design choices DESIGN.md calls out.

Each ablation disables one refinement and measures the cost on the
long-run metrics or convergence — quantifying why the paper's design
decisions exist.
"""

import numpy as np

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.experiments.configs import pattern
from repro.hardware.diode import SiliconDiode
from repro.hardware.multiplier import VoltageMultiplier


def _longrun_collision(medium, seed, **config_kwargs):
    net = SlottedNetwork(
        pattern("c3").tag_periods(),
        medium=medium,
        config=NetworkConfig(
            seed=seed, beacon_loss_probability=2e-3, **config_kwargs
        ),
    )
    records = net.run(4000)
    return float(np.mean([1.0 if r.truly_collided else 0.0 for r in records]))


def test_ablation_beacon_loss_timer(benchmark, medium):
    """Sec. 5.4 refinement: the watchdog that pre-empts stale counters."""

    def run():
        with_timer = np.mean(
            [_longrun_collision(medium, s) for s in (1, 2, 3)]
        )
        without = np.mean(
            [
                _longrun_collision(medium, s, enable_beacon_loss_timer=False)
                for s in (1, 2, 3)
            ]
        )
        return with_timer, without

    with_timer, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nAblation (beacon-loss watchdog): collision ratio "
        f"{with_timer:.3f} with vs {without:.3f} without"
    )
    # The watchdog exists to contain desynchronisation; it must not make
    # things worse, and the run must stay functional either way.
    assert with_timer < 0.25
    assert without < 0.5


def test_ablation_future_collision_avoidance(benchmark, medium):
    """Sec. 5.6: without it, a short-period newcomer can thrash forever
    against settled long-period tags."""

    def convergence(enable):
        times = []
        for seed in range(6):
            net = SlottedNetwork(
                pattern("c5").tag_periods(),  # utilisation 1.0: tightest
                medium=medium,
                config=NetworkConfig(
                    seed=seed,
                    ideal_channel=True,
                    enable_future_avoidance=enable,
                ),
            )
            t = net.run_until_converged(max_slots=30_000)
            times.append(t if t is not None else 30_000)
        return float(np.median(times))

    def run():
        return convergence(True), convergence(False)

    with_avoid, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nAblation (future-collision avoidance) c5 median convergence: "
        f"{with_avoid:.0f} slots with vs {without:.0f} without"
    )
    assert with_avoid < 30_000  # converges with the mechanism


def test_ablation_nack_threshold(benchmark, medium):
    """N=3 consecutive NACKs: tolerance for isolated decode failures."""

    def run():
        out = {}
        for n in (1, 3, 5):
            ratios = []
            for seed in (1, 2):
                net = SlottedNetwork(
                    pattern("c3").tag_periods(),
                    medium=medium,
                    config=NetworkConfig(seed=seed, nack_threshold=n),
                )
                records = net.run(3000)
                ratios.append(
                    np.mean([1.0 if r.truly_collided else 0.0 for r in records])
                )
            out[n] = float(np.mean(ratios))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation (NACK threshold N): collision ratio by N:")
    for n, ratio in results.items():
        print(f"  N={n}: {ratio:.3f}")
    # N=1 evicts settled tags on every stray decode failure; it must not
    # beat the paper's N=3 meaningfully.
    assert results[3] < results[1] + 0.05


def test_ablation_schottky_vs_silicon(benchmark, medium):
    """Sec. 3.2: silicon diodes' 0.7 V drop versus Schottky 0.15 V."""

    def run():
        schottky = VoltageMultiplier(n_stages=8)
        silicon = VoltageMultiplier(n_stages=8, diode=SiliconDiode())
        activated_schottky = activated_silicon = 0
        for tag in medium.tag_names():
            vp = medium.carrier_amplitude_v(tag)
            activated_schottky += schottky.output_voltage(vp) >= 2.3
            activated_silicon += silicon.output_voltage(vp) >= 2.3
        return activated_schottky, activated_silicon

    schottky_n, silicon_n = benchmark(run)
    print(
        f"\nAblation (diode choice): {schottky_n}/12 tags activate with "
        f"Schottky vs {silicon_n}/12 with silicon rectifiers"
    )
    assert schottky_n == 12
    assert silicon_n < 12


def test_ablation_fsk_in_ook_out(benchmark):
    """Sec. 4.1: the ring-effect mitigation on the downlink."""
    import numpy as np

    from repro.phy.modem import FskOokDownlink

    def run():
        dl = FskOokDownlink()
        bits = [1, 0, 1, 0]
        fsk = dl.beacon_waveform(bits, 250.0)
        naive = dl.naive_ook_waveform(bits, 250.0)
        raw_bit = int(dl.sample_rate_hz / 250.0)
        # Residual energy in the OFF gap right after the first pulse.
        start = 2 * raw_bit + int(0.0002 * dl.sample_rate_hz)
        window = slice(start, start + 400)
        return float(np.max(np.abs(fsk[window]))), float(
            np.max(np.abs(naive[window]))
        )

    fsk_resid, naive_resid = benchmark(run)
    print(
        f"\nAblation (FSK-in-OOK-out): OFF-gap residual {fsk_resid:.3f} V "
        f"vs naive OOK ring tail {naive_resid:.3f} V"
    )
    assert fsk_resid < naive_resid


def test_ablation_empty_flag(benchmark, medium):
    """Sec. 5.5: the EMPTY flag lets late arrivals integrate without
    disturbing the settled population."""

    def integration(enable_empty):
        disruptions = []
        join_times = []
        for seed in range(6):
            periods = pattern("c2").tag_periods()
            late_tag = "tag11"
            net = SlottedNetwork(
                periods,
                medium=medium,
                config=NetworkConfig(
                    seed=seed, ideal_channel=True, enable_empty_flag=enable_empty
                ),
                activation_slot={late_tag: 200},
            )
            net.run(200)  # early tags settle
            records = net.run(400)
            # How many collisions did the late arrival cause, and how
            # long until its first clean delivery?
            disruptions.append(sum(1 for r in records if r.truly_collided))
            join_times.append(
                next(
                    (i for i, r in enumerate(records) if r.decoded == late_tag),
                    400,
                )
            )
        return float(np.mean(disruptions)), float(np.mean(join_times))

    def run():
        return integration(True), integration(False)

    (with_d, with_j), (without_d, without_j) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nAblation (EMPTY flag) — late tag11 joining a settled c2 network:\n"
        f"  with EMPTY:    {with_d:.1f} collisions caused, first delivery "
        f"after {with_j:.0f} slots\n"
        f"  without EMPTY: {without_d:.1f} collisions caused, first delivery "
        f"after {without_j:.0f} slots"
    )
    # The gated newcomer must cause no more disruption than the blind one.
    assert with_d <= without_d + 1
