"""Future-work extension benches (Secs. 2.2 and 6.3 discussions).

Quantifies what each named extension buys over the baseline system:
ambient harvesting (charging speedup while driving), M-ASK (throughput
multiplication where SNR allows), FDMA (capacity beyond one packet per
slot), and a second reader (worst-case harvest + convergence at high
load).
"""

import numpy as np
import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.experiments.configs import pattern
from repro.ext.ambient import DrivingCondition, HybridHarvester
from repro.ext.fdma import FdmaNetwork
from repro.ext.mask import MultiLevelBackscatter, viable_tags_for_mask
from repro.ext.multireader import MultiReaderDeployment


def test_ext_ambient_harvesting(benchmark, medium):
    def run():
        h = HybridHarvester()
        out = {}
        for tag in ("tag8", "tag4", "tag11"):
            vp = medium.carrier_amplitude_v(tag)
            out[tag] = {
                cond: (h.charge_time_s(vp, cond), h.speedup(vp, cond))
                for cond in DrivingCondition
            }
        return out

    results = benchmark(run)
    assert results["tag11"][DrivingCondition.HIGHWAY][1] > 2.0
    print("\nExtension: ambient harvesting (charge time / speedup):")
    for tag, by_cond in results.items():
        cells = "  ".join(
            f"{c.value}:{t:.1f}s({s:.1f}x)" for c, (t, s) in by_cond.items()
        )
        print(f"  {tag}: {cells}")


def test_ext_mask_throughput(benchmark, medium):
    def run():
        rows = []
        for levels in (2, 4, 8):
            for baud in (187.5, 750.0, 1500.0):
                mod = MultiLevelBackscatter(levels=levels, symbol_rate_baud=baud)
                viable, _ = viable_tags_for_mask(medium, levels, baud)
                rows.append((levels, baud, mod.throughput_bps(), len(viable)))
        return rows

    rows = benchmark(run)
    by_key = {(m, b): (tp, v) for m, b, tp, v in rows}
    # 4-ASK doubles throughput and the whole deployment supports it at
    # the conservative symbol rate...
    assert by_key[(4, 187.5)][0] == 2 * by_key[(2, 187.5)][0]
    assert by_key[(4, 187.5)][1] == 12
    # ...but the far tags drop out as the symbol rate rises.
    assert by_key[(4, 1500.0)][1] < 12
    print("\nExtension: M-ASK (throughput bps / viable tags of 12):")
    for m, b, tp, v in rows:
        print(f"  {m}-ASK @{b:g} baud: {tp:g} bps, {v}/12 tags viable")


def test_ext_fdma_capacity(benchmark, medium):
    def run():
        periods = {f"tag{i}": 4 for i in range(1, 13)}  # demand U = 3.0
        net = FdmaNetwork(
            periods, medium=medium, config=NetworkConfig(seed=2, ideal_channel=True)
        )
        conv = net.run_until_converged(max_slots=50_000)
        net.run(400)
        return net.n_active_channels, conv, net.aggregate_goodput()

    channels, conv, goodput = benchmark.pedantic(run, rounds=1, iterations=1)
    assert channels == 3
    assert conv is not None
    assert goodput > 1.5  # beyond the single-carrier ceiling of 1.0
    print(
        f"\nExtension: FDMA — 12 tags at period 4 (demand 3.0x capacity): "
        f"{channels} channels, converged in {conv} slots, aggregate "
        f"goodput {goodput:.2f} packets/slot (single-carrier max: 1.0)"
    )


def test_ext_multireader(benchmark, medium):
    def run():
        d = MultiReaderDeployment()
        single_worst, multi_worst = d.worst_case_improvement()
        periods = pattern("c5").tag_periods()
        nets = d.build_networks(periods, NetworkConfig(seed=3, ideal_channel=True))
        multi_conv = max(
            n.run_until_converged(max_slots=60_000) or 60_000 for n in nets.values()
        )
        baseline = SlottedNetwork(
            periods, config=NetworkConfig(seed=3, ideal_channel=True)
        )
        single_conv = baseline.run_until_converged(max_slots=60_000) or 60_000
        return single_worst, multi_worst, single_conv, multi_conv

    single_t, multi_t, single_c, multi_c = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert multi_t < 0.8 * single_t
    print(
        f"\nExtension: second reader in the cargo area —\n"
        f"  worst-case charge time: {single_t:.1f} s -> {multi_t:.1f} s\n"
        f"  c5 (U=1.0) convergence: {single_c} slots -> {multi_c} slots "
        f"(split domains)"
    )


def test_ext_parallel_decoding(benchmark, medium):
    """FlipTracer-style collision separation: packets harvested from
    slots the baseline reader would burn with a NACK."""
    import numpy as np

    from repro.ext.parallel import ParallelCollisionDecoder
    from repro.phy.modem import BackscatterUplink
    from repro.phy.packets import UplinkPacket

    def run():
        uplink = BackscatterUplink(pzt=medium.pzt)
        decoder = ParallelCollisionDecoder()
        rng = np.random.default_rng(5)
        trials = 16
        both = one = 0
        for t in range(trials):
            p1, p2 = UplinkPacket(1, 100 + t), UplinkPacket(2, 2000 + t)
            c1 = uplink.tag_component(
                p1.to_bits(), 375.0, 0.02,
                phase_rad=float(rng.uniform(0, 2 * np.pi)),
            )
            c2 = uplink.tag_component(
                p2.to_bits(), 375.0, 0.011,
                phase_rad=float(rng.uniform(0, 2 * np.pi)), delay_s=0.004,
            )
            cap = uplink.capture([c1, c2], 2.673e-10, rng, extra_samples=3000)
            got = decoder.decode(cap, 375.0)
            n = sum(p in got for p in (p1, p2))
            both += n == 2
            one += n == 1
        return trials, both, one

    trials, both, one = benchmark.pedantic(run, rounds=1, iterations=1)
    assert both + one >= trials // 2
    print(
        f"\nExtension: parallel collision decoding — of {trials} two-tag "
        f"collisions: both packets {both}, one packet {one}, none "
        f"{trials - both - one} (baseline reader recovers zero)"
    )


def test_ext_rate_adaptation(benchmark, medium):
    """Per-tag rate adaptation: the fastest reliable rate per link,
    shrinking airtime and TX energy where Fig. 12's SNR headroom allows."""
    from repro.ext.rate_adaptation import RateAdapter
    from repro.experiments.configs import pattern

    def run():
        adapter = RateAdapter(medium)
        assignments = adapter.assign_all()
        base, adapted = adapter.airtime_savings(pattern("c2").tag_periods())
        energy = adapter.energy_savings_per_report()
        return assignments, base, adapted, energy

    assignments, base, adapted, energy = benchmark(run)
    assert adapted < base
    print(
        "\nExtension: rate adaptation (fastest reliable rate per tag):"
    )
    for tag in ("tag8", "tag4", "tag11"):
        a = assignments[tag]
        print(
            f"  {tag}: {a.rate_bps:g} bps, airtime {a.airtime_s * 1e3:.0f} ms, "
            f"TX energy ratio {energy[tag]:.2f}"
        )
    print(
        f"  fleet airtime per slot (c2 schedule): {base * 1e3:.1f} ms -> "
        f"{adapted * 1e3:.1f} ms"
    )
