"""Sensitivity analysis: how robust are the headline conclusions to the
calibrated channel constants?

The propagation model has three calibrated knobs (absorption alpha,
seam loss, perpendicular-junction loss).  The paper's qualitative
claims — all tags activate at 8 stages, Tag 8 charges fastest, the
cargo tags slowest, the turning-face tag pays a junction penalty —
should survive substantial perturbation of those knobs; the exact
voltages of Fig. 11 should not.  This bench maps that boundary.
"""

import numpy as np

from repro.channel.biw import JointKind, onvo_l60
from repro.channel.medium import AcousticMedium
from repro.channel.propagation import PropagationModel
from repro.hardware.harvester import EnergyHarvester


def _characterise(alpha_scale: float, joint_scale: float):
    biw = onvo_l60()
    base = dict(biw.joint_loss_table)
    for kind in (JointKind.SEAM, JointKind.PERPENDICULAR):
        biw.set_joint_loss(kind, base[kind] * joint_scale)
    medium = AcousticMedium(
        biw=biw,
        propagation=PropagationModel(biw, alpha_db_per_m=2.0 * alpha_scale),
    )
    harvester = EnergyHarvester()
    voltages = {t: medium.carrier_amplitude_v(t) for t in medium.tag_names()}
    amplified = {t: harvester.amplified_voltage_v(v) for t, v in voltages.items()}
    times = {t: harvester.charge_time_s(v) for t, v in voltages.items()}
    return {
        "all_activate": all(v >= 2.3 for v in amplified.values()),
        "fastest": min(times, key=times.get),
        "slowest": max(times, key=times.get),
        "worst_charge_s": max(times.values()),
        "tag11_16x": amplified["tag11"],
    }


def test_sensitivity_to_channel_constants(benchmark):
    def run():
        rows = {}
        for alpha_scale in (0.5, 1.0, 1.5):
            for joint_scale in (0.5, 1.0, 1.5):
                rows[(alpha_scale, joint_scale)] = _characterise(
                    alpha_scale, joint_scale
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    nominal = rows[(1.0, 1.0)]
    assert nominal["all_activate"]
    # Qualitative structure is robust across the whole sweep: tag8 is
    # always fastest and the slowest is always one of the high-loss
    # tags (the cargo pair — or, when junction losses are scaled to
    # extremes, the turning-face tag 4, whose perpendicular penalty
    # then dominates: itself a physically sensible outcome).
    for key, row in rows.items():
        assert row["fastest"] == "tag8", f"{key}: fastest changed"
        assert row["slowest"] in ("tag4", "tag11", "tag12"), f"{key}: slowest changed"
    # Activation margins are NOT unconditionally robust: the heaviest
    # channel (1.5x on both knobs) pushes the cargo tags below 2.3 V —
    # the deployment genuinely depends on the BiW being a decent medium.
    heavy = rows[(1.5, 1.5)]
    light = rows[(0.5, 0.5)]
    assert light["all_activate"]
    assert heavy["tag11_16x"] < nominal["tag11_16x"]

    print("\nSensitivity sweep (alpha x, joint x) -> activation / worst charge:")
    for (a, j), row in rows.items():
        print(
            f"  ({a:>3}, {j:>3}): all-activate={str(row['all_activate']):<5} "
            f"worst={row['worst_charge_s']:7.1f}s tag11@16x={row['tag11_16x']:.2f}V"
        )


def test_sensitivity_to_harvest_exponent(benchmark):
    def run():
        medium = AcousticMedium()
        out = {}
        for gamma_scale in (0.9, 1.0, 1.1):
            harvester = EnergyHarvester(harvest_exponent=1.5859 * gamma_scale)
            times = [
                harvester.charge_time_s(medium.carrier_amplitude_v(t))
                for t in medium.tag_names()
            ]
            out[gamma_scale] = (min(times), max(times))
        return out

    out = benchmark(run)
    lo, hi = out[1.0]
    assert lo >= 4.0
    # The charge-time *spread* direction is robust; the absolute span
    # moves with the exponent.
    for scale, (tmin, tmax) in out.items():
        assert tmax > 5 * tmin
    print("\nHarvest-exponent sensitivity (min, max charge time):")
    for scale, (tmin, tmax) in out.items():
        print(f"  gamma x{scale}: {tmin:.1f}s - {tmax:.1f}s")
