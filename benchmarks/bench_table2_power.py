"""Table 2 — tag power consumption per operating mode (RX 24.8 uW,
TX 51.0 uW, IDLE 7.6 uW) plus the Sec. 6.2 sustainability check."""

import pytest

from repro.experiments.table2_power import format_table2, run_table2


def test_table2_power_rows(benchmark):
    result = benchmark(run_table2)
    assert result.table["RX"]["total_power_uw"] == pytest.approx(24.8)
    assert result.table["TX"]["total_power_uw"] == pytest.approx(51.0)
    assert result.table["IDLE"]["total_power_uw"] == pytest.approx(7.6)
    assert result.sustainable
    print("\n" + format_table2(result))
