"""Theory-vs-simulation bench: the fluid convergence model must order
the Table 3 patterns the way the simulator (and the paper) do."""

import numpy as np

from repro.analysis.theory import convergence_trend, estimate_convergence_slots
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.experiments.configs import TABLE3_PATTERNS


def test_fluid_model_vs_simulation(benchmark, medium):
    def run():
        est = convergence_trend(
            {n: TABLE3_PATTERNS[n].periods() for n in TABLE3_PATTERNS}
        )
        measured = {}
        for name in ("c1", "c2", "c3", "c4"):
            times = []
            for seed in range(5):
                net = SlottedNetwork(
                    TABLE3_PATTERNS[name].tag_periods(),
                    medium=medium,
                    config=NetworkConfig(seed=seed, ideal_channel=True),
                )
                times.append(net.run_until_converged(max_slots=100_000))
            measured[name] = float(np.median(times))
        return est, measured

    est, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both orderings agree on the utilisation sweep.
    names = ["c1", "c2", "c3", "c4"]
    est_order = sorted(names, key=lambda n: est[n])
    meas_order = sorted(names, key=lambda n: measured[n])
    assert est_order[-1] == meas_order[-1] == "c4"
    assert est["c5"] > est["c4"]
    print("\nFluid-model estimate vs simulated median (slots to converge):")
    for name in TABLE3_PATTERNS:
        m = f"{measured[name]:7.0f}" if name in measured else "      —"
        print(f"  {name}: estimate {est[name]:7.0f}  simulated {m}")
    print("  (the model tracks the trend; its absolute values run high "
          "because the streak criterion fires earlier than the fluid "
          "residual — see repro.analysis.theory)")
