"""Fig. 12 — uplink SNR (a) and packet loss (b) vs bit rate for the
three probe tags, in both analytic and waveform-verified modes."""

import pytest

from repro.experiments.fig12_uplink import (
    format_fig12,
    run_fig12,
    run_fig12_waveform,
)


def test_fig12_analytic(benchmark, medium):
    result = benchmark(run_fig12, medium)
    assert result.snr("tag8", 3000.0) > 11.7
    assert result.snr("tag11", 750.0) == pytest.approx(18.1, abs=1.0)
    for tag in ("tag8", "tag4", "tag11"):
        for rate in (93.75, 375.0, 3000.0):
            assert result.loss(tag, rate) <= 5.0  # < 0.5% of 1000
    print("\nFig. 12 analytic (paper: tag8 >11.7 dB @3000, tag11 ~18.1 dB "
          "@750, loss <0.5%):")
    print(format_fig12(result))


def test_fig12_waveform_verification(benchmark, medium):
    points = benchmark.pedantic(
        run_fig12_waveform,
        kwargs=dict(
            medium=medium,
            tags=("tag8", "tag4", "tag11"),
            bit_rates=(375.0, 3000.0),
            packets_sent=6,
        ),
        rounds=1,
        iterations=1,
    )
    by_key = {(p.tag, p.bit_rate_bps): p for p in points}
    # Ordering and slope survive the full DSP chain.
    assert (
        by_key[("tag8", 375.0)].measured_snr_db
        > by_key[("tag11", 375.0)].measured_snr_db
    )
    for tag in ("tag8", "tag4", "tag11"):
        assert (
            by_key[(tag, 375.0)].measured_snr_db
            > by_key[(tag, 3000.0)].measured_snr_db
        )
    lost = sum(p.packets_lost for p in points)
    sent = sum(p.packets_sent for p in points)
    assert lost / sent < 0.10
    print("\nFig. 12 waveform-verified (PSD-measured SNR, decoded through "
          "the reader chain):")
    for p in points:
        print(
            f"  {p.tag} @{p.bit_rate_bps:g} bps: {p.measured_snr_db:5.1f} dB, "
            f"lost {p.packets_lost}/{p.packets_sent}"
        )
