"""Table 1 — vanilla slot allocation for four tags with periods
(2, 4, 8, 8): reconstructs the paper's illustrative schedule and
benchmarks the assignment algorithm at deployment scale."""

from repro.core.slot_schedule import (
    assign_offsets,
    count_collision_slots,
    schedule_table,
)
from repro.experiments.configs import TABLE1_OFFSETS, TABLE1_PERIODS, pattern


def test_table1_schedule(benchmark):
    result = benchmark(assign_offsets, TABLE1_PERIODS, TABLE1_OFFSETS)
    table = schedule_table(result, 8)
    assert count_collision_slots(table) == 0
    assert all(len(slot) == 1 for slot in table)  # utilisation 1.0
    print("\nTable 1 schedule (slot -> transmitter):")
    print("  " + " ".join(f"{i}:{slot[0]}" for i, slot in enumerate(table)))


def test_vanilla_assignment_12_tags(benchmark):
    periods = pattern("c3").tag_periods()
    result = benchmark(assign_offsets, periods)
    assert count_collision_slots(schedule_table(result)) == 0
