#!/usr/bin/env python
"""Randomised chaos smoke for the resilience layer.

Unlike the deterministic chaos suite (tests/resilience/), this tool
draws a *fresh* seed on every run and logs it before doing anything
else, so a CI failure is always reproducible:

    python tools/chaos_smoke.py --seed <logged seed>

Each trial generates a random fault schedule over the standard fault
scenario population, runs it under a supervised network with the
default recovery policies, and asserts the safety net:

* the run completes with one record per slot,
* no MAC invariant is violated and the escalation ladder stays idle,
* once the last fault clears, the network reconverges, and
* a no-policy supervised replay is byte-identical to the plain run
  (the zero-cost-when-off contract).

Usage:
    python tools/chaos_smoke.py                   # random seed, 5 trials
    python tools/chaos_smoke.py --seed 123456     # reproduce a failure
    python tools/chaos_smoke.py --trials 20 --n-faults 8
"""

from __future__ import annotations

import argparse
import os
import secrets
import sys
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.scenarios import SCENARIO_PERIODS
from repro.faults.schedule import FaultSchedule
from repro.resilience import NetworkSupervisor

#: Protocol-level fault kinds the recovery policies target.
RECOVERY_KINDS = ("beacon_loss", "brownout", "harvester_collapse", "reader_restart")

MEASURE_SLOTS = 400
CONVERGE_BUDGET = 20_000


def run_trial(seed: int, n_faults: int, max_duration: int) -> List[str]:
    """One chaos trial; returns a list of failure descriptions (empty = pass)."""
    failures: List[str] = []
    schedule = FaultSchedule.generate(
        seed=seed,
        n_slots=MEASURE_SLOTS,
        tags=sorted(SCENARIO_PERIODS),
        kinds=RECOVERY_KINDS,
        n_faults=n_faults,
        max_duration=max_duration,
        start_slot=50,
    )
    n_slots = MEASURE_SLOTS + schedule.last_clear_slot

    def build():
        return SlottedNetwork(
            SCENARIO_PERIODS,
            config=NetworkConfig(seed=seed, ideal_channel=True),
            faults=schedule,
        )

    net = build()
    supervisor = NetworkSupervisor(net)
    supervisor.run(n_slots)

    if len(net.records) != n_slots:
        failures.append(f"run truncated: {len(net.records)}/{n_slots} records")
    if supervisor.violations:
        failures.append(
            f"{len(supervisor.violations)} invariant violation(s): "
            f"{supervisor.violations[0].to_jsonable()}"
        )
    if supervisor.escalations:
        failures.append(
            f"escalation ladder fired: "
            f"{[e.level for e in supervisor.escalations]}"
        )
    if supervisor.run_until_converged(max_slots=CONVERGE_BUDGET) is None:
        failures.append(f"no reconvergence within {CONVERGE_BUDGET} slots")

    # Zero-cost contract: supervision with no policies must not perturb
    # the trace, faults and all.
    plain = build()
    plain.run(n_slots)
    off = build()
    NetworkSupervisor(off, policies=()).run(n_slots)
    if [r.__dict__ for r in plain.records] != [r.__dict__ for r in off.records]:
        failures.append("no-policy supervised trace diverged from plain run")

    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Random-seed chaos smoke for the resilience layer."
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master seed (default: random; always logged for replay)",
    )
    parser.add_argument("--trials", type=int, default=5, help="trials to run")
    parser.add_argument(
        "--n-faults", type=int, default=6, help="faults per generated schedule"
    )
    parser.add_argument(
        "--max-duration", type=int, default=12, help="max fault duration in slots"
    )
    args = parser.parse_args(argv)

    master = args.seed if args.seed is not None else secrets.randbelow(2**31)
    print(f"chaos-smoke master seed: {master}")
    print(f"replay with: python tools/chaos_smoke.py --seed {master} "
          f"--trials {args.trials} --n-faults {args.n_faults} "
          f"--max-duration {args.max_duration}")

    failed = 0
    for trial in range(args.trials):
        seed = master + trial
        failures = run_trial(seed, args.n_faults, args.max_duration)
        verdict = "ok" if not failures else "FAIL"
        print(f"  trial {trial} (seed {seed}): {verdict}")
        for failure in failures:
            print(f"    - {failure}")
        failed += bool(failures)

    print(f"{args.trials - failed}/{args.trials} trials passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
