#!/usr/bin/env python
"""Randomised chaos smoke for the resilience layer.

Unlike the deterministic chaos suite (tests/resilience/), this tool
draws a *fresh* seed on every run and logs it before doing anything
else, so a CI failure is always reproducible:

    python tools/chaos_smoke.py --seed <logged seed>

Each trial generates a random fault schedule over the standard fault
scenario population, runs it under a supervised network with the
default recovery policies, and asserts the safety net:

* the run completes with one record per slot,
* no MAC invariant is violated and the escalation ladder stays idle,
* once the last fault clears, the network reconverges, and
* a no-policy supervised replay is byte-identical to the plain run
  (the zero-cost-when-off contract).

Usage:
    python tools/chaos_smoke.py                   # random seed, 5 trials
    python tools/chaos_smoke.py --seed 123456     # reproduce a failure
    python tools/chaos_smoke.py --trials 20 --n-faults 8
"""

from __future__ import annotations

import argparse
import os
import secrets
import sys
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.channel import deep_structure
from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.scenarios import SCENARIO_PERIODS
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.relay import RelaySlottedNetwork
from repro.resilience import (
    NetworkSupervisor,
    RelayFallbackPolicy,
    default_policies,
)

#: Protocol-level fault kinds the recovery policies target.
RECOVERY_KINDS = ("beacon_loss", "brownout", "harvester_collapse", "reader_restart")

MEASURE_SLOTS = 400
CONVERGE_BUDGET = 20_000

RELAY_SLOTS = 600
RELAY_PERIODS = {f"tag{i}": 8 for i in range(1, 7)}


def run_trial(seed: int, n_faults: int, max_duration: int) -> List[str]:
    """One chaos trial; returns a list of failure descriptions (empty = pass)."""
    failures: List[str] = []
    schedule = FaultSchedule.generate(
        seed=seed,
        n_slots=MEASURE_SLOTS,
        tags=sorted(SCENARIO_PERIODS),
        kinds=RECOVERY_KINDS,
        n_faults=n_faults,
        max_duration=max_duration,
        start_slot=50,
    )
    n_slots = MEASURE_SLOTS + schedule.last_clear_slot

    def build():
        return SlottedNetwork(
            SCENARIO_PERIODS,
            config=NetworkConfig(seed=seed, ideal_channel=True),
            faults=schedule,
        )

    net = build()
    supervisor = NetworkSupervisor(net)
    supervisor.run(n_slots)

    if len(net.records) != n_slots:
        failures.append(f"run truncated: {len(net.records)}/{n_slots} records")
    if supervisor.violations:
        failures.append(
            f"{len(supervisor.violations)} invariant violation(s): "
            f"{supervisor.violations[0].to_jsonable()}"
        )
    if supervisor.escalations:
        failures.append(
            f"escalation ladder fired: "
            f"{[e.level for e in supervisor.escalations]}"
        )
    if supervisor.run_until_converged(max_slots=CONVERGE_BUDGET) is None:
        failures.append(f"no reconvergence within {CONVERGE_BUDGET} slots")

    # Zero-cost contract: supervision with no policies must not perturb
    # the trace, faults and all.
    plain = build()
    plain.run(n_slots)
    off = build()
    NetworkSupervisor(off, policies=()).run(n_slots)
    if [r.__dict__ for r in plain.records] != [r.__dict__ for r in off.records]:
        failures.append("no-policy supervised trace diverged from plain run")

    return failures


def run_relay_trial(seed: int, n_faults: int, max_duration: int) -> List[str]:
    """One relay-tier chaos trial on the junction-depth ladder.

    Shadowed tags (depth >= 3) get rescued over tag-to-tag routes; the
    generated schedule browns relays out mid-route, freezes the relay
    table, and attenuates direct uplinks.  The safety net: the run
    completes cleanly, routes engage and actually deliver, and a
    relay-off replay is byte-identical to a plain network under the
    same schedule (the zero-cost-when-off contract of the relay tier).
    """
    failures: List[str] = []
    schedule = FaultSchedule.generate(
        seed=seed,
        n_slots=RELAY_SLOTS,
        tags=["tag1", "tag2", "tag3", "tag4"],
        kinds=("relay_brownout", "relay_table_stale", "attenuation"),
        n_faults=n_faults,
        max_duration=max_duration,
        start_slot=150,
    )
    n_slots = max(RELAY_SLOTS, schedule.last_clear_slot + 100)

    def build(relaying: bool):
        return RelaySlottedNetwork(
            dict(RELAY_PERIODS),
            config=NetworkConfig(seed=seed),
            medium=AcousticMedium(biw=deep_structure(), reference_tag="tag1"),
            faults=schedule,
            relaying_enabled=relaying,
        )

    net = build(True)
    supervisor = NetworkSupervisor(
        net, policies=default_policies() + [RelayFallbackPolicy()]
    )
    supervisor.run(n_slots)

    if len(net.records) != n_slots:
        failures.append(f"run truncated: {len(net.records)}/{n_slots} records")
    if supervisor.violations:
        failures.append(
            f"{len(supervisor.violations)} invariant violation(s): "
            f"{supervisor.violations[0].to_jsonable()}"
        )
    if supervisor.escalations:
        failures.append(
            f"escalation ladder fired: "
            f"{[e.level for e in supervisor.escalations]}"
        )
    engaged = {entry[2] for entry in net.relay_log if entry[1] == "relay.engage"}
    if not engaged:
        failures.append("no relay route ever engaged on the deep ladder")
    delivered = sum(
        1 for entry in net.relay_log if entry[1] == "relay.deliver"
    )
    if not delivered:
        failures.append("relay routes engaged but delivered nothing")

    # Zero-cost contract: a relay network with relaying disabled must
    # replay byte-identically to the plain slot network, faults and all.
    off = build(False)
    off.run(n_slots)
    plain = SlottedNetwork(
        dict(RELAY_PERIODS),
        config=NetworkConfig(seed=seed),
        medium=AcousticMedium(biw=deep_structure(), reference_tag="tag1"),
        faults=schedule,
    )
    plain.run(n_slots)
    if [r.__dict__ for r in off.records] != [r.__dict__ for r in plain.records]:
        failures.append("relay-off trace diverged from plain run")

    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Random-seed chaos smoke for the resilience layer."
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master seed (default: random; always logged for replay)",
    )
    parser.add_argument("--trials", type=int, default=5, help="trials to run")
    parser.add_argument(
        "--n-faults", type=int, default=6, help="faults per generated schedule"
    )
    parser.add_argument(
        "--max-duration", type=int, default=12, help="max fault duration in slots"
    )
    args = parser.parse_args(argv)

    master = args.seed if args.seed is not None else secrets.randbelow(2**31)
    print(f"chaos-smoke master seed: {master}")
    print(f"replay with: python tools/chaos_smoke.py --seed {master} "
          f"--trials {args.trials} --n-faults {args.n_faults} "
          f"--max-duration {args.max_duration}")

    failed = 0
    for trial in range(args.trials):
        seed = master + trial
        failures = run_trial(seed, args.n_faults, args.max_duration)
        verdict = "ok" if not failures else "FAIL"
        print(f"  trial {trial} (seed {seed}): {verdict}")
        for failure in failures:
            print(f"    - {failure}")
        failed += bool(failures)

    # Relay-tier trials: longer windows so routes engage before the
    # faults land, so fewer of them.
    relay_trials = max(1, args.trials // 2)
    for trial in range(relay_trials):
        seed = master + args.trials + trial
        failures = run_relay_trial(seed, args.n_faults, args.max_duration)
        verdict = "ok" if not failures else "FAIL"
        print(f"  relay trial {trial} (seed {seed}): {verdict}")
        for failure in failures:
            print(f"    - {failure}")
        failed += bool(failures)

    total = args.trials + relay_trials
    print(f"{total - failed}/{total} trials passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
