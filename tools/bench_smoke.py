#!/usr/bin/env python
"""Quick benchmark smoke run: the fidelity-tier benchmarks that gate
the waveform hot path, written to a BENCH_*.json snapshot.

Usage:
    python tools/bench_smoke.py                 # BENCH_<git-rev>.json
    python tools/bench_smoke.py --out my.json
    python tools/bench_smoke.py --keep 5        # prune older snapshots

Runs the subset that covers all three fidelity tiers plus the event
engine (bench_simulator_performance.py) and the end-to-end DSP loop
(bench_waveform_loop.py) — a couple of minutes, not the full suite.
Compare two snapshots with:

    python tools/bench_compare.py BENCH_old.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from typing import List

SMOKE_BENCHMARKS = [
    "benchmarks/bench_simulator_performance.py",
    "benchmarks/bench_waveform_loop.py",
]

# Resilience-off overhead gate: stepping through NetworkSupervisor with
# no policies may not slow the MAC loop beyond these ratios (measured
# ~2.7x with per-slot invariant checks, ~1.6x without; thresholds leave
# headroom for noisy shared runners).
OVERHEAD_SLOTS = 4000
OVERHEAD_REPEATS = 3
MAX_RATIO_CHECKED = 4.0
MAX_RATIO_UNCHECKED = 2.5

# Multi-reader overhead gate: a single-reader MultiReaderNetwork must
# stay within this ratio of a plain SlottedNetwork over the same seed
# and topology — the zero-cost-off contract for the multireader layer
# (run() delegates straight to the lone cell; measured ~1.0x, the gate
# leaves headroom for noisy shared runners).
MAX_RATIO_MULTIREADER = 1.05

# Relay overhead gate: a RelaySlottedNetwork with relaying disabled
# must stay within this ratio of a plain SlottedNetwork over the same
# seed and topology — the zero-cost-off contract for the relay layer
# (step() delegates straight to the base class when no routes exist;
# measured ~1.0x, the gate leaves headroom for noisy shared runners).
MAX_RATIO_RELAY = 1.05

# Adaptive-PHY overhead gate: a SlottedNetwork with a RateController
# installed but the REPRO_PHY_ADAPTIVE gate closed must stay within
# this ratio of a plain SlottedNetwork over the same seed and topology
# — the zero-cost-off contract for the adaptive PHY (the per-slot work
# reduces to one adaptive_enabled() lookup; the differential suite
# holds the slot logs byte-identical, this gate holds the wall time).
MAX_RATIO_ADAPTIVE = 1.05

# Telemetry overhead gate: the instrument sites are guarded by a single
# `telemetry.active()` lookup, so running with collection enabled may
# not slow the MAC loop beyond this ratio (measured ~1.2x; the gate
# leaves headroom for noisy shared runners). With telemetry off the
# sites must be effectively free — that leg shares the same gate.
MAX_RATIO_TELEMETRY = 3.0

# Waveform-tier throughput snapshot: steady-state slots/s for the slot
# tier and for the waveform tier with the template fast path on and
# off, plus the template-cache hit rate.  The committed baseline lives
# at benchmarks/BENCH_waveform.json; diff a fresh snapshot against it
# with `python tools/bench_compare.py <baseline> <fresh>`.
WAVEFORM_WARMUP_SLOTS = 40
WAVEFORM_TIMED_SLOTS = 120
# /2 adds "kernel_backend": which repro.phy.kernels backend (numba /
# cext / numpy) served the measurement — numbers from different
# backends are not comparable, so the snapshot records it.
WAVEFORM_SNAPSHOT_SCHEMA = "bench-waveform/2"

# Kernels-off overhead gate: with the ``REPRO_PHY_KERNELS`` gate
# closed every kernel rides the numpy fallback — the pre-kernel-tier
# code path — so the waveform fast tier must stay within this ratio of
# the baseline measured just before the kernel tier landed
# (1.03 ms/slot).  Guards against the dispatch layer taxing the
# fallback everyone gets when no compiler/numba is available.
KERNELS_OFF_BASELINE_MS_PER_SLOT = 1.03
MAX_RATIO_KERNELS_OFF = 1.05
KERNELS_OFF_REPEATS = 3

# Fleet-tier throughput snapshot: aggregate (network x tag x slot) work
# units per second for the batch engine at each fleet width, plus the
# sequential single-network rate the speedups are measured against.
# The committed baseline lives at benchmarks/BENCH_fleet.json.
FLEET_WARMUP_SLOTS = 32
FLEET_TIMED_SLOTS = 256
FLEET_SIZES = (16, 128, 1024)
FLEET_SEQUENTIAL_SLOTS = 2000
FLEET_SNAPSHOT_SCHEMA = "bench-fleet/1"


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_out() -> str:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=repo_root(),
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        rev = "worktree"
    return f"BENCH_{rev}.json"


def resilience_overhead_check() -> bool:
    """Time supervised (no-policy) stepping against the plain MAC loop.

    Returns True when both overhead ratios stay under their gates.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    from repro.core.network import NetworkConfig, SlottedNetwork
    from repro.resilience import NetworkSupervisor

    periods = {f"tag{i}": p for i, p in enumerate((4, 8, 8, 16, 16, 32), start=1)}

    def timed(supervised: bool, check_invariants: bool = True) -> float:
        best = float("inf")
        for _ in range(OVERHEAD_REPEATS):
            net = SlottedNetwork(
                periods, config=NetworkConfig(seed=0, ideal_channel=True)
            )
            runner = (
                NetworkSupervisor(net, policies=(), check_invariants=check_invariants)
                if supervised
                else net
            )
            start = time.perf_counter()
            runner.run(OVERHEAD_SLOTS)
            best = min(best, time.perf_counter() - start)
        return best

    plain = timed(supervised=False)
    checked = timed(supervised=True, check_invariants=True) / plain
    unchecked = timed(supervised=True, check_invariants=False) / plain
    ok = checked <= MAX_RATIO_CHECKED and unchecked <= MAX_RATIO_UNCHECKED
    print(
        f"resilience-off overhead over {OVERHEAD_SLOTS} slots: "
        f"{checked:.2f}x with invariant checks (gate {MAX_RATIO_CHECKED}x), "
        f"{unchecked:.2f}x without (gate {MAX_RATIO_UNCHECKED}x) "
        f"-> {'ok' if ok else 'FAIL'}"
    )
    return ok


def telemetry_overhead_check() -> bool:
    """Time the MAC loop with telemetry collection on against off.

    Returns True when the enabled/disabled ratio stays under the gate.
    The disabled leg is the shipping default, so this also smoke-tests
    the zero-cost-when-off contract: the guarded sites reduce to one
    module-level lookup per slot batch.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    from repro import telemetry
    from repro.core.network import NetworkConfig, SlottedNetwork

    periods = {f"tag{i}": p for i, p in enumerate((4, 8, 8, 16, 16, 32), start=1)}

    def timed(collect: bool) -> float:
        best = float("inf")
        for _ in range(OVERHEAD_REPEATS):
            net = SlottedNetwork(
                periods, config=NetworkConfig(seed=0, ideal_channel=True)
            )
            if collect:
                start = time.perf_counter()
                with telemetry.collecting():
                    net.run(OVERHEAD_SLOTS)
                best = min(best, time.perf_counter() - start)
            else:
                start = time.perf_counter()
                net.run(OVERHEAD_SLOTS)
                best = min(best, time.perf_counter() - start)
        return best

    off = timed(collect=False)
    ratio = timed(collect=True) / off
    ok = ratio <= MAX_RATIO_TELEMETRY
    print(
        f"telemetry-on overhead over {OVERHEAD_SLOTS} slots: "
        f"{ratio:.2f}x vs telemetry off (gate {MAX_RATIO_TELEMETRY}x) "
        f"-> {'ok' if ok else 'FAIL'}"
    )
    return ok


def multireader_overhead_check() -> bool:
    """Time a single-reader MultiReaderNetwork against the plain loop.

    Returns True when the ratio stays under the gate.  With one reader
    the multireader wrapper must be provably inert: same slot records,
    and (checked here) indistinguishable wall time — ``run()`` hands
    the whole batch to the lone cell.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    from repro.core.network import NetworkConfig, SlottedNetwork
    from repro.multireader import MultiReaderNetwork, deployment_for

    periods = {f"tag{i}": p for i, p in enumerate((4, 8, 8, 16, 16, 32), start=1)}

    def timed(multi: bool) -> float:
        best = float("inf")
        for _ in range(OVERHEAD_REPEATS):
            config = NetworkConfig(seed=0, ideal_channel=True)
            net = (
                MultiReaderNetwork(
                    periods, deployment=deployment_for(1), config=config
                )
                if multi
                else SlottedNetwork(periods, config=config)
            )
            start = time.perf_counter()
            net.run(OVERHEAD_SLOTS)
            best = min(best, time.perf_counter() - start)
        return best

    ratio = timed(multi=True) / timed(multi=False)
    ok = ratio <= MAX_RATIO_MULTIREADER
    print(
        f"single-reader multireader overhead over {OVERHEAD_SLOTS} slots: "
        f"{ratio:.2f}x vs plain SlottedNetwork "
        f"(gate {MAX_RATIO_MULTIREADER}x) -> {'ok' if ok else 'FAIL'}"
    )
    return ok


def relay_overhead_check() -> bool:
    """Time a relaying-disabled RelaySlottedNetwork against the plain loop.

    Returns True when the ratio stays under the gate.  With relaying
    off the wrapper must be provably inert: same slot records (held
    byte-identical by tests/relay/), and (checked here)
    indistinguishable wall time — ``step()`` falls straight through to
    the base class and no relay RNG stream is ever created.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    from repro.core.network import NetworkConfig, SlottedNetwork
    from repro.relay import RelaySlottedNetwork

    periods = {f"tag{i}": p for i, p in enumerate((4, 8, 8, 16, 16, 32), start=1)}

    def build(relay: bool):
        config = NetworkConfig(seed=0, ideal_channel=True)
        if relay:
            return RelaySlottedNetwork(
                periods, config=config, relaying_enabled=False
            )
        return SlottedNetwork(periods, config=config)

    def one_run(relay: bool) -> float:
        net = build(relay)
        start = time.perf_counter()
        net.run(OVERHEAD_SLOTS)
        return time.perf_counter() - start

    # Warm both paths once, then interleave the timed repeats so
    # interpreter warm-up cannot bias whichever leg runs first.
    one_run(True)
    one_run(False)
    best = {True: float("inf"), False: float("inf")}
    for _ in range(OVERHEAD_REPEATS):
        for relay in (True, False):
            best[relay] = min(best[relay], one_run(relay))

    ratio = best[True] / best[False]
    ok = ratio <= MAX_RATIO_RELAY
    print(
        f"relay-off overhead over {OVERHEAD_SLOTS} slots: "
        f"{ratio:.2f}x vs plain SlottedNetwork "
        f"(gate {MAX_RATIO_RELAY}x) -> {'ok' if ok else 'FAIL'}"
    )
    return ok


def adaptive_overhead_check() -> bool:
    """Time an adaptive-gated-off SlottedNetwork against the plain loop.

    Returns True when the ratio stays under the gate.  With the
    ``REPRO_PHY_ADAPTIVE`` gate closed a network must be provably
    inert even with a rate controller installed: same slot records
    (held byte-identical by tests/phy/test_adaptive_differential.py),
    and (checked here) indistinguishable wall time — each slot pays
    one ``adaptive_enabled()`` lookup and nothing else.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    from repro.core.network import NetworkConfig, SlottedNetwork
    from repro.phy import rate

    periods = {f"tag{i}": p for i, p in enumerate((4, 8, 8, 16, 16, 32), start=1)}

    def build(adaptive_stack: bool):
        config = NetworkConfig(seed=0, ideal_channel=True)
        if adaptive_stack:
            return SlottedNetwork(
                periods,
                config=config,
                rate_controller=rate.RateController(rate.DEFAULT_LADDER),
            )
        return SlottedNetwork(periods, config=config)

    def one_run(adaptive_stack: bool) -> float:
        net = build(adaptive_stack)
        start = time.perf_counter()
        net.run(OVERHEAD_SLOTS)
        return time.perf_counter() - start

    with rate.adaptive(False):
        # Warm both paths once, then interleave the timed repeats so
        # interpreter warm-up cannot bias whichever leg runs first.
        one_run(True)
        one_run(False)
        best = {True: float("inf"), False: float("inf")}
        for _ in range(OVERHEAD_REPEATS):
            for adaptive_stack in (True, False):
                best[adaptive_stack] = min(
                    best[adaptive_stack], one_run(adaptive_stack)
                )

    ratio = best[True] / best[False]
    ok = ratio <= MAX_RATIO_ADAPTIVE
    print(
        f"adaptive-off overhead over {OVERHEAD_SLOTS} slots: "
        f"{ratio:.2f}x vs plain SlottedNetwork "
        f"(gate {MAX_RATIO_ADAPTIVE}x) -> {'ok' if ok else 'FAIL'}"
    )
    return ok


def kernels_overhead_check() -> bool:
    """Time the waveform fast tier with compiled kernels forced off.

    Returns True when the kernels-off ms/slot stays within
    ``MAX_RATIO_KERNELS_OFF`` of the pre-kernel-tier baseline.  The
    numpy fallback *is* that baseline's code path, so this gate keeps
    the dispatch layer honest for environments with no C compiler and
    no numba: the escape hatch must not quietly cost the fallback
    anything.  Best-of-``KERNELS_OFF_REPEATS`` to shrug off scheduler
    noise.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    from repro.core.network import NetworkConfig
    from repro.core.waveform_network import WaveformNetwork
    from repro.phy import cache as phy_cache
    from repro.phy import kernels

    periods = {"tag5": 4, "tag8": 4, "tag9": 8}

    best = float("inf")
    with kernels.use_kernels(False):
        for _ in range(KERNELS_OFF_REPEATS):
            phy_cache.clear_caches()
            with phy_cache.fast_path(True):
                net = WaveformNetwork(periods, config=NetworkConfig(seed=3))
                net.run(WAVEFORM_WARMUP_SLOTS)
                start = time.perf_counter()
                net.run(WAVEFORM_TIMED_SLOTS)
                elapsed = time.perf_counter() - start
            best = min(best, 1e3 * elapsed / WAVEFORM_TIMED_SLOTS)

    limit = KERNELS_OFF_BASELINE_MS_PER_SLOT * MAX_RATIO_KERNELS_OFF
    ok = best <= limit
    print(
        f"kernels-off waveform fast tier over {WAVEFORM_TIMED_SLOTS} slots: "
        f"{best:.2f} ms/slot vs {KERNELS_OFF_BASELINE_MS_PER_SLOT:.2f} "
        f"pre-kernel baseline (gate {limit:.2f} ms/slot) "
        f"-> {'ok' if ok else 'FAIL'}"
    )
    return ok


def waveform_snapshot(out_path: str) -> None:
    """Measure steady-state slots/s per fidelity tier into ``out_path``.

    Each waveform leg warms up for ``WAVEFORM_WARMUP_SLOTS`` slots (so
    template builds and grow-once buffers are amortised out, matching
    how long experiment runs behave) and then times
    ``WAVEFORM_TIMED_SLOTS`` slots.  The fast leg also records the
    template-cache hit rate over the timed window — a steady-state run
    should sit at (or very near) 1.0.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    import json

    from repro import perf
    from repro.core.network import NetworkConfig, SlottedNetwork
    from repro.core.waveform_network import WaveformNetwork
    from repro.phy import cache as phy_cache
    from repro.phy import kernels

    periods = {"tag5": 4, "tag8": 4, "tag9": 8}

    def slot_tier() -> float:
        net = SlottedNetwork(
            {f"tag{i}": p for i, p in enumerate((4, 8, 8, 16, 16, 32), start=1)},
            config=NetworkConfig(seed=0, ideal_channel=True),
        )
        start = time.perf_counter()
        net.run(OVERHEAD_SLOTS)
        return OVERHEAD_SLOTS / (time.perf_counter() - start)

    def waveform_tier(fast: bool) -> dict:
        phy_cache.clear_caches()
        with phy_cache.fast_path(fast):
            net = WaveformNetwork(periods, config=NetworkConfig(seed=3))
            net.run(WAVEFORM_WARMUP_SLOTS)
            perf.reset()
            start = time.perf_counter()
            net.run(WAVEFORM_TIMED_SLOTS)
            elapsed = time.perf_counter() - start
            ratios = phy_cache.hit_ratios(perf.report()["counters"])
        tier = {
            "slots_per_s": WAVEFORM_TIMED_SLOTS / elapsed,
            "ms_per_slot": 1e3 * elapsed / WAVEFORM_TIMED_SLOTS,
        }
        if fast:
            tier["template_hit_rate"] = ratios["template"]["hit_ratio"]
        return tier

    snapshot = {
        "schema": WAVEFORM_SNAPSHOT_SCHEMA,
        "warmup_slots": WAVEFORM_WARMUP_SLOTS,
        "timed_slots": WAVEFORM_TIMED_SLOTS,
        "kernel_backend": kernels.backend(),
        "tiers": {
            "slot": {"slots_per_s": slot_tier()},
            "waveform_fast": waveform_tier(fast=True),
            "waveform_reference": waveform_tier(fast=False),
        },
    }
    with open(out_path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    tiers = snapshot["tiers"]
    print(
        "waveform snapshot: "
        f"kernels {snapshot['kernel_backend']}, "
        f"slot {tiers['slot']['slots_per_s']:.0f} slots/s, "
        f"fast {tiers['waveform_fast']['slots_per_s']:.1f} slots/s "
        f"({tiers['waveform_fast']['ms_per_slot']:.2f} ms/slot, "
        f"template hit rate {tiers['waveform_fast']['template_hit_rate']:.2f}), "
        f"reference {tiers['waveform_reference']['slots_per_s']:.1f} slots/s "
        f"({tiers['waveform_reference']['ms_per_slot']:.2f} ms/slot)"
    )
    print(f"wrote {out_path}")


def fleet_snapshot(out_path: str) -> None:
    """Measure the batch engine's aggregate tag-slots/s into ``out_path``.

    One leg per fleet width in ``FLEET_SIZES``: build a plain fleet of
    that many networks (seeds 0..N-1, the six-tag smoke topology, real
    channel), warm it up, then time ``FLEET_TIMED_SLOTS`` vectorised
    steps.  The sequential leg times one ``SlottedNetwork`` with the
    same topology and channel so the snapshot carries the speedup each
    width buys.
    """
    sys.path.insert(0, os.path.join(repo_root(), "src"))
    import json

    from repro.core.network import NetworkConfig, SlottedNetwork
    from repro.fleet import FleetEngine, specs_for_seeds

    periods = {f"tag{i}": p for i, p in enumerate((4, 8, 8, 16, 16, 32), start=1)}
    n_tags = len(periods)

    net = SlottedNetwork(periods, config=NetworkConfig(seed=0))
    start = time.perf_counter()
    net.run(FLEET_SEQUENTIAL_SLOTS)
    sequential = FLEET_SEQUENTIAL_SLOTS * n_tags / (time.perf_counter() - start)

    fleet: dict = {}
    for size in FLEET_SIZES:
        engine = FleetEngine(periods, specs_for_seeds(range(size)))
        for _ in range(FLEET_WARMUP_SLOTS):
            engine.step_all()
        start = time.perf_counter()
        for _ in range(FLEET_TIMED_SLOTS):
            engine.step_all()
        elapsed = time.perf_counter() - start
        rate = size * FLEET_TIMED_SLOTS * n_tags / elapsed
        fleet[str(size)] = {
            "tag_slots_per_s": rate,
            "speedup_vs_sequential": rate / sequential,
        }

    snapshot = {
        "schema": FLEET_SNAPSHOT_SCHEMA,
        "warmup_slots": FLEET_WARMUP_SLOTS,
        "timed_slots": FLEET_TIMED_SLOTS,
        "n_tags": n_tags,
        "sequential_tag_slots_per_s": sequential,
        "fleet": fleet,
    }
    with open(out_path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    curve = ", ".join(
        f"N={size} {fleet[str(size)]['tag_slots_per_s']:.0f} tag-slots/s "
        f"(x{fleet[str(size)]['speedup_vs_sequential']:.1f})"
        for size in FLEET_SIZES
    )
    print(f"fleet snapshot: sequential {sequential:.0f} tag-slots/s; {curve}")
    print(f"wrote {out_path}")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark smoke subset into a JSON snapshot."
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="snapshot path (default: BENCH_<git-rev>.json in the repo root)",
    )
    parser.add_argument(
        "--skip-overhead-check",
        action="store_true",
        help="skip the resilience and telemetry overhead gates",
    )
    parser.add_argument(
        "--waveform-out",
        default=None,
        metavar="PATH",
        help="waveform-tier throughput snapshot path "
        "(default: BENCH_waveform.json in the repo root)",
    )
    parser.add_argument(
        "--waveform-only",
        action="store_true",
        help="emit only the waveform throughput snapshot (skips the "
        "pytest-benchmark run and the overhead gates); used by the "
        "advisory CI bench job",
    )
    parser.add_argument(
        "--multireader-only",
        action="store_true",
        help="run only the single-reader multireader overhead gate "
        "(skips everything else); used by the advisory CI figT job",
    )
    parser.add_argument(
        "--relay-only",
        action="store_true",
        help="run only the relay-off overhead gate (skips everything "
        "else); used by the advisory CI figM job",
    )
    parser.add_argument(
        "--adaptive-only",
        action="store_true",
        help="run only the adaptive-off overhead gate (skips everything "
        "else); used by the advisory CI figA job",
    )
    parser.add_argument(
        "--kernels-only",
        action="store_true",
        help="run only the kernels-off overhead gate (waveform fast "
        "tier with REPRO_PHY_KERNELS forced off vs the pre-kernel "
        "baseline); used by the advisory CI kernels job",
    )
    parser.add_argument(
        "--fleet-out",
        default=None,
        metavar="PATH",
        help="fleet-tier throughput snapshot path "
        "(default: BENCH_fleet.json in the repo root)",
    )
    parser.add_argument(
        "--fleet-only",
        action="store_true",
        help="emit only the fleet throughput snapshot (skips everything "
        "else); used by the advisory CI bench-fleet job",
    )
    args = parser.parse_args(argv)

    root = repo_root()
    if args.multireader_only:
        return 0 if multireader_overhead_check() else 2
    if args.relay_only:
        return 0 if relay_overhead_check() else 2
    if args.adaptive_only:
        return 0 if adaptive_overhead_check() else 2
    if args.kernels_only:
        return 0 if kernels_overhead_check() else 2
    if args.fleet_only:
        fleet_snapshot(args.fleet_out or os.path.join(root, "BENCH_fleet.json"))
        return 0
    waveform_out = args.waveform_out or os.path.join(root, "BENCH_waveform.json")
    waveform_snapshot(waveform_out)
    if args.waveform_only:
        return 0
    fleet_snapshot(args.fleet_out or os.path.join(root, "BENCH_fleet.json"))
    overhead_ok = True
    if not args.skip_overhead_check:
        overhead_ok = resilience_overhead_check()
        overhead_ok = telemetry_overhead_check() and overhead_ok
        overhead_ok = multireader_overhead_check() and overhead_ok
        overhead_ok = relay_overhead_check() and overhead_ok
        overhead_ok = adaptive_overhead_check() and overhead_ok
    out = args.out or os.path.join(root, default_out())
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *SMOKE_BENCHMARKS,
        "-q",
        f"--benchmark-json={out}",
    ]
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd, cwd=root, env=env)
    if proc.returncode == 0:
        print(f"wrote {out}")
    if proc.returncode == 0 and not overhead_ok:
        return 2
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
