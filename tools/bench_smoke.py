#!/usr/bin/env python
"""Quick benchmark smoke run: the fidelity-tier benchmarks that gate
the waveform hot path, written to a BENCH_*.json snapshot.

Usage:
    python tools/bench_smoke.py                 # BENCH_<git-rev>.json
    python tools/bench_smoke.py --out my.json
    python tools/bench_smoke.py --keep 5        # prune older snapshots

Runs the subset that covers all three fidelity tiers plus the event
engine (bench_simulator_performance.py) and the end-to-end DSP loop
(bench_waveform_loop.py) — a couple of minutes, not the full suite.
Compare two snapshots with:

    python tools/bench_compare.py BENCH_old.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List

SMOKE_BENCHMARKS = [
    "benchmarks/bench_simulator_performance.py",
    "benchmarks/bench_waveform_loop.py",
]


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_out() -> str:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=repo_root(),
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        rev = "worktree"
    return f"BENCH_{rev}.json"


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark smoke subset into a JSON snapshot."
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="snapshot path (default: BENCH_<git-rev>.json in the repo root)",
    )
    args = parser.parse_args(argv)

    root = repo_root()
    out = args.out or os.path.join(root, default_out())
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *SMOKE_BENCHMARKS,
        "-q",
        f"--benchmark-json={out}",
    ]
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd, cwd=root, env=env)
    if proc.returncode == 0:
        print(f"wrote {out}")
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
