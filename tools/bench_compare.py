#!/usr/bin/env python
"""Compare two benchmark JSON snapshots.

Usage:
    python tools/bench_compare.py BENCH_before.json BENCH_after.json
    python tools/bench_compare.py old.json new.json --threshold 1.10
    python tools/bench_compare.py benchmarks/BENCH_waveform.json BENCH_waveform.json

Two formats are understood, picked automatically:

* pytest-benchmark documents — matches benchmarks by fullname and
  reports the ratio of mean runtimes (after / before);
* ``bench-waveform/*`` throughput snapshots (from
  ``tools/bench_smoke.py``) — compares slots/s per fidelity tier, where
  higher is better; ``/2`` snapshots also carry the active
  ``repro.phy.kernels`` backend, shown (and flagged when the two sides
  differ — cross-backend numbers are not comparable);
* ``bench-fleet/1`` throughput snapshots (from
  ``tools/bench_smoke.py --fleet-only``) — compares the batch engine's
  aggregate tag-slots/s per fleet width (plus the sequential baseline),
  higher is better.

Either way the tool exits non-zero if any shared entry regressed by
more than ``--threshold`` (default 1.25, i.e. 25% slower).  Use the
smoke target to produce the inputs:

    make bench-smoke            # writes BENCH_<git-rev>.json + BENCH_waveform.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def load_doc(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def is_waveform_snapshot(doc: dict) -> bool:
    return str(doc.get("schema", "")).startswith("bench-waveform/")


def is_fleet_snapshot(doc: dict) -> bool:
    return str(doc.get("schema", "")).startswith("bench-fleet/")


def load_fleet_rates(doc: dict) -> Dict[str, float]:
    """Map leg name -> tag-slots/s from a bench-fleet snapshot.

    Fleet widths sort numerically (``N=0016`` style keys) so the
    report reads as the scaling curve.
    """
    rates: Dict[str, float] = {}
    if "sequential_tag_slots_per_s" in doc:
        rates["sequential"] = float(doc["sequential_tag_slots_per_s"])
    for size, entry in doc.get("fleet", {}).items():
        if "tag_slots_per_s" in entry:
            rates[f"fleet N={int(size):>5d}"] = float(entry["tag_slots_per_s"])
    return rates


def load_means(doc: dict) -> Dict[str, float]:
    """Map benchmark fullname -> mean seconds from a pytest-benchmark
    JSON document."""
    means: Dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        if name and "mean" in stats:
            means[name] = float(stats["mean"])
    return means


def load_rates(doc: dict) -> Dict[str, float]:
    """Map tier name -> slots/s from a bench-waveform snapshot."""
    rates: Dict[str, float] = {}
    for tier, entry in doc.get("tiers", {}).items():
        if "slots_per_s" in entry:
            rates[tier] = float(entry["slots_per_s"])
    return rates


def compare_rates(
    before: Dict[str, float],
    after: Dict[str, float],
    threshold: float,
    unit: str = "slots/s",
) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression lines) for throughput tiers.

    Throughput is higher-is-better, so a regression is
    ``after < before / threshold``.
    """
    lines: List[str] = []
    regressions: List[str] = []
    shared = sorted(set(before) & set(after))
    width = max((len(n) for n in shared), default=4)
    for name in shared:
        old, new = before[name], after[name]
        ratio = new / old if old > 0 else float("inf")
        marker = ""
        if ratio < 1.0 / threshold:
            marker = "  REGRESSION"
            regressions.append(name)
        elif ratio > threshold:
            marker = "  improved"
        lines.append(
            f"{name:<{width}}  {old:>10.1f} {unit} -> {new:>10.1f} {unit}"
            f"  x{ratio:.2f}{marker}"
        )
    for name in sorted(set(before) - set(after)):
        lines.append(f"{name:<{width}}  (removed)")
    for name in sorted(set(after) - set(before)):
        lines.append(f"{name:<{width}}  (new: {after[name]:.1f} {unit})")
    return lines, regressions


def compare(
    before: Dict[str, float], after: Dict[str, float], threshold: float
) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression lines) for the shared names."""
    lines: List[str] = []
    regressions: List[str] = []
    shared = sorted(set(before) & set(after))
    width = max((len(n) for n in shared), default=4)
    for name in shared:
        old, new = before[name], after[name]
        ratio = new / old if old > 0 else float("inf")
        marker = ""
        if ratio > threshold:
            marker = "  REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 / threshold:
            marker = "  improved"
        lines.append(
            f"{name:<{width}}  {old * 1e3:>10.3f} ms -> {new * 1e3:>10.3f} ms"
            f"  x{ratio:.2f}{marker}"
        )
    for name in sorted(set(before) - set(after)):
        lines.append(f"{name:<{width}}  (removed)")
    for name in sorted(set(after) - set(before)):
        lines.append(f"{name:<{width}}  (new: {after[name] * 1e3:.3f} ms)")
    return lines, regressions


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two pytest-benchmark JSON snapshots."
    )
    parser.add_argument("before", help="baseline BENCH_*.json")
    parser.add_argument("after", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="flag mean-runtime ratios above this as regressions "
        "(default: 1.25)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")

    before_doc = load_doc(args.before)
    after_doc = load_doc(args.after)

    def kind(doc: dict) -> str:
        if is_waveform_snapshot(doc):
            return "waveform"
        if is_fleet_snapshot(doc):
            return "fleet"
        return "pytest"

    if kind(before_doc) != kind(after_doc):
        print(
            f"error: cannot mix a {kind(before_doc)} document with a "
            f"{kind(after_doc)} one",
            file=sys.stderr,
        )
        return 2
    if kind(before_doc) == "waveform":
        before = load_rates(before_doc)
        after = load_rates(after_doc)
    elif kind(before_doc) == "fleet":
        before = load_fleet_rates(before_doc)
        after = load_fleet_rates(after_doc)
    else:
        before = load_means(before_doc)
        after = load_means(after_doc)
    if not before or not after:
        print("error: no benchmarks found in one of the inputs", file=sys.stderr)
        return 2
    if not set(before) & set(after):
        print("error: the two files share no benchmark names", file=sys.stderr)
        return 2
    if kind(before_doc) == "waveform":
        lines, regressions = compare_rates(before, after, args.threshold)
        print(f"slot throughput, {args.before} -> {args.after}:")
        b_backend = before_doc.get("kernel_backend")
        a_backend = after_doc.get("kernel_backend")
        if b_backend or a_backend:
            note = (
                "  (DIFFERENT BACKENDS — ratios not comparable)"
                if b_backend != a_backend
                else ""
            )
            print(
                f"  kernel backend: {b_backend or '?'} -> "
                f"{a_backend or '?'}{note}"
            )
    elif kind(before_doc) == "fleet":
        lines, regressions = compare_rates(
            before, after, args.threshold, unit="tag-slots/s"
        )
        print(f"fleet throughput, {args.before} -> {args.after}:")
    else:
        lines, regressions = compare(before, after, args.threshold)
        print(f"mean runtime, {args.before} -> {args.after}:")
    for line in lines:
        print(" ", line)
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond x{args.threshold:.2f}:",
            file=sys.stderr,
        )
        for name in regressions:
            print(f"  {name}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
