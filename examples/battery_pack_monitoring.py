#!/usr/bin/env python3
"""Battery-pack monitoring scenario (the paper's motivating workload).

Tags over the battery pack need second-level updates (thermal runaway
develops over ~30 s, Sec. 6.3 discussion); structural-aging tags can
report once per half-minute.  This script provisions heterogeneous
periods accordingly, verifies each tag's energy budget can sustain its
duty cycle, and then injects a mid-run failure: the fast battery tag
browns out and rejoins — exercising RESET-free self-healing.

Run:  python examples/battery_pack_monitoring.py
"""

from repro import AcousticMedium, NetworkConfig, SlottedNetwork
from repro.hardware import EnergyHarvester, TagDevice, TagPowerModel
from repro.phy.fm0 import fm0_frame_duration_s
from repro.phy.packets import UL_FRAME_BITS

# Battery-pack tags (above the pack, second row) report every 8 slots;
# crash-structure tags every 16; structural-aging tags every 32.  Total
# utilisation 0.656 — comfortably under channel capacity (Eq. 1).
PERIODS = {
    "tag5": 8, "tag6": 8, "tag8": 8,       # battery pack: fast
    "tag2": 16, "tag4": 16, "tag9": 16,    # crash structure: medium
    "tag1": 32, "tag11": 32, "tag12": 32,  # aging monitors: slow
}

SLOT_S = 1.0
BEACON_RX_S = 0.104


def main() -> None:
    medium = AcousticMedium()
    harvester = EnergyHarvester()
    power = TagPowerModel()
    ul_airtime = fm0_frame_duration_s(UL_FRAME_BITS, 375.0)

    print("=== Duty-cycle sustainability (Sec. 6.2) ===")
    print(f"{'tag':<7}{'period':>7}{'harvest uW':>12}{'draw uW':>9}  verdict")
    for tag, period in sorted(PERIODS.items(), key=lambda kv: kv[1]):
        vp = medium.carrier_amplitude_v(tag)
        budget = harvester.net_charging_power_w(vp)
        draw = power.duty_cycled_power_w(
            rx_fraction=BEACON_RX_S / SLOT_S,
            tx_fraction=ul_airtime / (period * SLOT_S),
        )
        verdict = "OK" if budget >= draw else "INSUFFICIENT"
        print(
            f"{tag:<7}{period:>7}{budget * 1e6:>12.1f}{draw * 1e6:>9.1f}  {verdict}"
        )

    net = SlottedNetwork(PERIODS, medium, NetworkConfig(seed=3))
    t = net.run_until_converged()
    print(f"\nNetwork converged in {t} slots "
          f"(utilisation {sum(1 / p for p in PERIODS.values()):.3f})")

    # --- failure injection: tag8 browns out for 12 slots -------------------
    # Model: its supercapacitor dips below LTH (e.g. a burst of sensor
    # sampling); it misses every beacon while dark, then rejoins.
    print("\n=== Failure injection: tag8 browns out ===")
    victim = net.tags["tag8"]
    for _ in range(12):
        # The victim misses every beacon while dark; everyone else
        # proceeds normally.
        net.activation_slot["tag8"] = net.reader.slot_index + 1
        net.step()
    net.activation_slot["tag8"] = 0  # powered again (resumed from LTH)
    victim.on_beacon_loss()  # its watchdog fired during the outage

    recovery = net.run(200)
    clean_tail = [r for r in recovery[-64:]]
    collided = sum(1 for r in clean_tail if r.truly_collided)
    print(f"  beacons missed by tag8 while dark: 12 slots")
    print(f"  tag8 state after recovery: {victim.state.value}, "
          f"offset {victim.offset}")
    print(f"  collisions in the final 64 slots: {collided}")
    print(f"  all settled again: {net.settled_fraction() == 1.0}")

    # Show the brown-out physics on the device model.
    dev = TagDevice(medium.carrier_amplitude_v("tag8"), initial_capacitor_v=2.3)
    resume = dev.harvester.resume_time_s(dev.pzt_voltage_v)
    print(f"\nDevice model: tag8 resumes from LTH to HTH in {resume:.2f} s "
          f"(vs {dev.harvester.charge_time_s(dev.pzt_voltage_v):.1f} s cold)")


if __name__ == "__main__":
    main()
