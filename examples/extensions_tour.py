#!/usr/bin/env python3
"""Tour of the future-work extensions the paper names (Secs. 2.2, 6.3).

1. Resonance calibration — how the 90 kHz operating point is found.
2. Ambient harvesting — charging speedup while the vehicle drives.
3. 4-ASK modulation — throughput doubling on the strong links.
4. FDMA — slot capacity beyond one packet per slot.
5. Second reader — worst-case harvest and split-domain convergence.
6. Parallel collision decoding — packets harvested from collisions.

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro import AcousticMedium, NetworkConfig, SlottedNetwork
from repro.channel.resonance import ResonanceCalibrator
from repro.experiments.configs import pattern
from repro.ext import (
    DrivingCondition,
    FdmaNetwork,
    HybridHarvester,
    MultiReaderDeployment,
    ParallelCollisionDecoder,
)
from repro.ext.mask import MultiLevelBackscatter, viable_tags_for_mask
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket


def main() -> None:
    medium = AcousticMedium()

    print("=== 1. Resonance calibration ===")
    sweep = ResonanceCalibrator().sweep(n_points=1601)
    print(f"  dominant mode: {sweep.peak_frequency_hz() / 1e3:.1f} kHz "
          f"(the paper's 90 kHz operating point)")
    print(f"  secondary modes: "
          f"{[f'{m/1e3:.1f} kHz' for m in sweep.find_modes()]}")

    print("\n=== 2. Ambient-vibration harvesting ===")
    hybrid = HybridHarvester()
    vp11 = medium.carrier_amplitude_v("tag11")
    for cond in (DrivingCondition.PARKED, DrivingCondition.CITY,
                 DrivingCondition.HIGHWAY):
        t = hybrid.charge_time_s(vp11, cond)
        print(f"  tag11 charge while {cond.value}: {t:5.1f} s "
              f"({hybrid.speedup(vp11, cond):.1f}x)")

    print("\n=== 3. Higher-order modulation (4-ASK) ===")
    mod = MultiLevelBackscatter(levels=4, symbol_rate_baud=187.5)
    viable, _ = viable_tags_for_mask(medium, 4, 187.5)
    print(f"  4-ASK @187.5 baud: {mod.throughput_bps():g} bps "
          f"(2x OOK), viable on {len(viable)}/12 tags")
    viable_hi, dropped = viable_tags_for_mask(medium, 4, 1500.0)
    print(f"  4-ASK @1500 baud: 3000 bps, but only {len(viable_hi)}/12 "
          f"tags clear the SNR bar")

    print("\n=== 4. FDMA multi-channel access ===")
    periods = {f"tag{i}": 4 for i in range(1, 13)}  # demand = 3x capacity
    fdma = FdmaNetwork(periods, medium=medium,
                       config=NetworkConfig(seed=2, ideal_channel=True))
    conv = fdma.run_until_converged()
    fdma.run(400)
    print(f"  12 tags at period 4 over {fdma.n_active_channels} channels: "
          f"converged in {conv} slots, goodput "
          f"{fdma.aggregate_goodput():.2f} packets/slot (single-carrier "
          f"ceiling: 1.0)")

    print("\n=== 5. Second reader in the cargo area ===")
    deployment = MultiReaderDeployment()
    single, multi = deployment.worst_case_improvement()
    assoc = deployment.association()
    print(f"  association: " + ", ".join(
        f"{r}: {len(tags)} tags" for r, tags in assoc.items()))
    print(f"  worst-case charge time: {single:.1f} s -> {multi:.1f} s")

    print("\n=== 6. Parallel collision decoding ===")
    uplink = BackscatterUplink(pzt=medium.pzt)
    decoder = ParallelCollisionDecoder()
    rng = np.random.default_rng(0)
    p1, p2 = UplinkPacket(1, 111), UplinkPacket(2, 2222)
    c1 = uplink.tag_component(p1.to_bits(), 375.0, 0.02, phase_rad=0.8)
    c2 = uplink.tag_component(p2.to_bits(), 375.0, 0.011, phase_rad=2.9,
                              delay_s=0.004)
    capture = uplink.capture([c1, c2], medium.noise.psd_v2_per_hz, rng,
                             extra_samples=3000)
    recovered = decoder.decode(capture, 375.0)
    print(f"  two-tag collision: recovered {len(recovered)} packet(s): "
          f"{recovered}")
    print("  (the baseline reader NACKs this slot and recovers none)")


if __name__ == "__main__":
    main()
