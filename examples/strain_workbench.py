#!/usr/bin/env python3
"""Strain-measurement workbench (Sec. 6.5 case study), end to end.

Bends a metal bar from -10 cm to +10 cm of tip displacement; three
gauge tags sample their Wheatstone bridges, pack the ADC codes into UL
frames, backscatter them over the acoustic channel as real waveforms,
and the reader's DSP chain decodes and reconstructs the voltages.

Run:  python examples/strain_workbench.py
"""

import numpy as np

from repro import AcousticMedium
from repro.hardware import StrainSensorModule
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket
from repro.phy.reader_dsp import ReaderReceiveChain

SENSORS = {
    "tagA": StrainSensorModule(strain_per_cm=16e-6),
    "tagB": StrainSensorModule(strain_per_cm=12e-6),
    "tagC": StrainSensorModule(strain_per_cm=8e-6),
}
MOUNTS = {"tagA": "tag5", "tagB": "tag6", "tagC": "tag9"}
RAW_RATE = 375.0


def main() -> None:
    medium = AcousticMedium()
    uplink = BackscatterUplink(pzt=medium.pzt)
    chain = ReaderReceiveChain()
    rng = np.random.default_rng(0)

    displacements = np.linspace(-10, 10, 9)
    print(f"{'disp (cm)':>10}" + "".join(f"{t:>10}" for t in SENSORS))

    reconstructed = {t: [] for t in SENSORS}
    failures = 0
    for d in displacements:
        row = []
        for tid, (tag, sensor) in enumerate(SENSORS.items()):
            code = sensor.sample(float(d))
            packet = UplinkPacket(tid=tid, payload=code)
            mount = MOUNTS[tag]
            comp = uplink.tag_component(
                packet.to_bits(),
                RAW_RATE,
                2.5 * medium.backscatter_amplitude_v(mount),
                phase_rad=float(rng.uniform(0, 2 * np.pi)),
                delay_s=medium.propagation_delay_s(mount),
                lead_in_s=0.03,
            )
            capture = uplink.capture(
                [comp], medium.noise.psd_v2_per_hz, rng, extra_samples=2000
            )
            decoded = chain.decode(capture, RAW_RATE).packets
            if decoded and decoded[0].tid == tid:
                volts = sensor.reconstruct_voltage_v(decoded[0].payload)
                reconstructed[tag].append(volts)
                row.append(f"{volts:>9.3f}V")
            else:
                failures += 1
                reconstructed[tag].append(np.nan)
                row.append(f"{'lost':>10}")
        print(f"{d:>10.1f}" + "".join(row))

    print(f"\npacket failures: {failures} / {3 * len(displacements)}")
    for tag, series in reconstructed.items():
        arr = np.asarray(series)
        ok = ~np.isnan(arr)
        corr = np.corrcoef(displacements[ok], arr[ok])[0, 1]
        print(f"{tag}: displacement/voltage correlation {corr:.4f}")


if __name__ == "__main__":
    main()
