#!/usr/bin/env python3
"""End-to-end structural health monitoring — the system the paper
builds everything for.

Physics-driven lifecycle: tags charge from the carrier and join as
their supercapacitors reach 2.3 V; the distributed slot allocation
settles them; their strain reports stream to the SHM monitor.  Then two
incidents happen: an impact near the battery pack (slot 300) and slow
corrosion-driven drift on a rocker tag — the monitor catches both, plus
the staleness of a tag that browns out under an excessive sampling
load.

Run:  python examples/shm_monitoring.py
"""

from repro import AcousticMedium, NetworkConfig
from repro.app import ShmMonitor, StrainField, collect_reports
from repro.core.energy_network import EnergyAwareNetwork
from repro.hardware.strain import StrainSensorModule

PERIODS = {"tag5": 4, "tag6": 8, "tag8": 4, "tag9": 8, "tag11": 16}


def main() -> None:
    medium = AcousticMedium()
    sensors = {t: StrainSensorModule() for t in PERIODS}

    # Ground truth: quiet structure, then an impact near tag5 at slot
    # 300, plus steady corrosion drift at tag9.  Magnitudes chosen to
    # stay inside the bridge amplifier's linear range.
    field = StrainField(
        baseline={t: 2e-5 for t in PERIODS},
        drift_per_slot={"tag9": 4.5e-7},
    )
    field.inject_event(300, "tag5", 4.0e-4)

    net = EnergyAwareNetwork(
        PERIODS, medium, NetworkConfig(seed=11, ideal_channel=True)
    )
    monitor = ShmMonitor(PERIODS, sensors)

    print("=== Running 600 slots (tags join as they charge) ===")
    for chunk_start in range(0, 600, 50):
        records = net.run(50)
        for report in collect_reports(records, field, sensors):
            for alarm in monitor.ingest(report):
                print(f"  ALARM {alarm}")
        for alarm in monitor.check_staleness(chunk_start + 50):
            print(f"  ALARM {alarm}")

    print("\n=== Activation (physics-driven late arrival) ===")
    for tag, log in sorted(
        net.energy_log.items(), key=lambda kv: kv[1].slots_dark
    ):
        print(f"  {tag}: dark for first ~{log.slots_dark} slots, "
              f"availability {log.availability:.1%}")

    print("\n=== Monitor dashboard after 600 slots ===")
    summary = monitor.summary()
    print(f"{'tag':<7}{'reports':>8}{'last V':>9}{'trend V/slot':>14}")
    for tag, row in sorted(summary.items()):
        print(
            f"{tag:<7}{row['reports']:>8.0f}{row['last_voltage_v']:>9.3f}"
            f"{row['trend_v_per_slot']:>14.2e}"
        )

    threshold = [a for a in monitor.alarms if a.kind.value == "threshold"]
    trend = [a for a in monitor.alarms if a.kind.value == "trend"]
    print(f"\nimpact alarms (tag5, after slot 300): {len(threshold)}")
    print(f"corrosion-trend alarms (tag9): {len(trend)}")
    print(f"network brownouts: {net.total_brownouts()} "
          f"(the protocol duty cycle is sustainable)")


if __name__ == "__main__":
    main()
