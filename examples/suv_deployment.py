#!/usr/bin/env python3
"""Full 12-tag ONVO L60 deployment (Fig. 10): energy audit, staggered
activation from real charging times, convergence, and long-run health.

Run:  python examples/suv_deployment.py
"""

import numpy as np

from repro import AcousticMedium, NetworkConfig, SlottedNetwork
from repro.analysis.metrics import sliding_ratios
from repro.experiments.configs import pattern
from repro.experiments.fig19_aloha import deployment_charge_times
from repro.hardware import EnergyHarvester


def main() -> None:
    medium = AcousticMedium()
    harvester = EnergyHarvester()

    print("=== Per-tag energy audit (Fig. 11) ===")
    print(f"{'tag':<7}{'path':<32}{'Vp (V)':>8}{'16x (V)':>9}{'charge':>9}")
    for tag in medium.tag_names():
        link = medium.propagation.link("reader", tag)
        vp = link.amplitude_v
        report = harvester.report(vp)
        route = " > ".join(link.path.vertices[1:][:3])
        print(
            f"{tag:<7}{route:<32}{vp:>8.3f}{report.amplified_voltage_v:>9.2f}"
            f"{report.full_charge_time_s:>8.1f}s"
        )

    # Tags join the network as their supercapacitors reach 2.3 V — the
    # late-arrival dynamics of Sec. 5.5, driven by the actual physics.
    charge = deployment_charge_times(medium)
    activation = {t: int(np.ceil(charge[t])) for t in charge}
    periods = pattern("c3").tag_periods()  # the paper's long-run pattern

    net = SlottedNetwork(
        periods,
        medium,
        NetworkConfig(seed=7),
        activation_slot=activation,
    )

    print("\n=== Staggered activation (slot = seconds at 1 s slots) ===")
    for tag in sorted(activation, key=activation.get):
        flag = "late-arrival, EMPTY-gated" if activation[tag] > 0 else "immediate"
        print(f"  {tag} joins at slot {activation[tag]:>3} ({flag})")

    records = net.run(2000)
    stats = sliding_ratios(records)
    settled = net.settled_fraction()
    print("\n=== After 2000 slots ===")
    print(f"  all tags settled: {settled == 1.0} (fraction {settled:.2f})")
    print(f"  mean non-empty ratio: {stats.mean_non_empty:.3f} "
          f"(bound {float(pattern('c3').utilization):.5f})")
    print(f"  mean collision ratio: {stats.mean_collision:.3f}")

    print("\n=== Final schedule ===")
    for tag, mac in sorted(net.tags.items(), key=lambda kv: kv[1].period):
        print(f"  {tag}: every {mac.period} slots, offset {mac.offset}")


if __name__ == "__main__":
    main()
