#!/usr/bin/env python3
"""ALOHA vs ARACHNET (Appendix B vs Sec. 5).

Runs the contention baseline and the distributed slot allocation over
the same 12-tag deployment with the same harvested-energy asymmetry,
and prints the side-by-side the paper's Fig. 19 motivates.

Run:  python examples/aloha_comparison.py
"""

from repro import AcousticMedium, NetworkConfig, SlottedNetwork
from repro.baselines import AlohaSimulation
from repro.experiments.configs import pattern
from repro.experiments.fig19_aloha import deployment_charge_times


def main() -> None:
    medium = AcousticMedium()
    charge = deployment_charge_times(medium)

    print("=== Pure ALOHA (10,000 s, Appendix B) ===")
    aloha = AlohaSimulation(charge, seed=3).run()
    print(f"{'tag':<7}{'charge':>8}{'tx':>8}{'collided':>10}{'success':>9}")
    for tag in sorted(aloha.per_tag, key=lambda t: int(t.lstrip('tag'))):
        s = aloha.per_tag[tag]
        print(
            f"{tag:<7}{s.charge_time_s:>7.1f}s{s.total_tx:>8}"
            f"{s.collided_tx:>10}{s.success_rate:>9.1%}"
        )
    print(f"overall collision-free: {aloha.overall_success_rate:.1%}")

    print("\n=== ARACHNET distributed slot allocation (same tags) ===")
    net = SlottedNetwork(
        pattern("c2").tag_periods(), medium, NetworkConfig(seed=3)
    )
    t = net.run_until_converged()
    records = net.run(1000)
    tx_slots = [r for r in records if r.truly_nonempty]
    clean = sum(1 for r in tx_slots if not r.truly_collided)
    print(f"first convergence: {t} slots")
    print(f"collision-free transmissions after convergence: "
          f"{clean / len(tx_slots):.1%}")
    print(f"decoded packets per slot: "
          f"{sum(1 for r in records if r.decoded) / len(records):.3f} "
          f"(channel capacity share: {float(pattern('c2').utilization):.2f})")

    improvement = (clean / len(tx_slots)) / aloha.overall_success_rate
    print(f"\nclean-delivery improvement over ALOHA: {improvement:.1f}x")


if __name__ == "__main__":
    main()
