#!/usr/bin/env python3
"""Quickstart: deploy three battery-free tags on the stock SUV BiW and
watch the distributed slot allocation converge.

Run:  python examples/quickstart.py
"""

from repro import AcousticMedium, NetworkConfig, SlottedNetwork
from repro.hardware import EnergyHarvester


def main() -> None:
    # The ONVO L60 deployment of Fig. 10: reader in the second row,
    # twelve mount points across the body.
    medium = AcousticMedium()

    # Check the energy story first: can these tags even power up?
    harvester = EnergyHarvester()
    print("Energy audit:")
    for tag in ("tag8", "tag4", "tag11"):
        vp = medium.carrier_amplitude_v(tag)
        report = harvester.report(vp)
        print(
            f"  {tag}: PZT {vp:.2f} V -> {report.amplified_voltage_v:.2f} V "
            f"after the 8-stage pump; charges in "
            f"{report.full_charge_time_s:.1f} s"
        )

    # Give the battery-pack tag a fast reporting period (every 4 slots)
    # and the structural tags slower ones (Sec. 5.1's diverse rates).
    periods = {"tag8": 4, "tag4": 8, "tag11": 8}
    net = SlottedNetwork(periods, medium, NetworkConfig(seed=42))

    slots = net.run_until_converged()
    print(f"\nConverged to a collision-free schedule in {slots} slots:")
    for tag, mac in sorted(net.tags.items()):
        print(
            f"  {tag}: period {mac.period}, offset {mac.offset} "
            f"({mac.state.value})"
        )

    # Keep running: every slot now delivers at most one clean packet.
    records = net.run(64)
    decoded = sum(1 for r in records if r.decoded is not None)
    collided = sum(1 for r in records if r.truly_collided)
    print(
        f"\nNext 64 slots: {decoded} packets decoded, {collided} collisions "
        f"(theoretical slot utilisation: "
        f"{sum(1 / p for p in periods.values()):.3f})"
    )

    # One character per slot: tag digit = decoded, '.' empty, 'X' collision.
    from repro.analysis.render import render_timeline

    print("\nSlot timeline:")
    print(render_timeline(records, width=32))


if __name__ == "__main__":
    main()
