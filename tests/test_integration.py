"""Cross-module integration scenarios.

Each test strings several subsystems together the way the deployed
system would: channel -> hardware -> PHY -> MAC, or full waveform paths
through the reader chain.
"""

import numpy as np
import pytest

from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.state_machine import TagState
from repro.experiments.configs import pattern
from repro.experiments.fig19_aloha import deployment_charge_times
from repro.hardware.harvester import EnergyHarvester
from repro.hardware.strain import StrainSensorModule
from repro.hardware.tag_device import TagDevice
from repro.phy.iq import detect_collision
from repro.phy.modem import BackscatterUplink, FskOokDownlink
from repro.phy.packets import DownlinkBeacon, UplinkPacket
from repro.phy.pie import pie_decode, pie_encode
from repro.phy.reader_dsp import ReaderReceiveChain


class TestChannelToHardware:
    """Energy path: BiW propagation feeds the harvesting chain."""

    def test_every_deployed_tag_activates(self, medium, harvester):
        for tag in medium.tag_names():
            vp = medium.carrier_amplitude_v(tag)
            assert harvester.can_activate(vp), f"{tag} cannot activate"

    def test_activation_order_tracks_path_loss(self, medium, harvester):
        times = deployment_charge_times(medium)
        losses = {
            t: medium.propagation.link("reader", t).loss_db
            for t in medium.tag_names()
        }
        by_time = sorted(times, key=times.get)
        by_loss = sorted(losses, key=losses.get)
        assert by_time[0] == by_loss[0] == "tag8"
        assert set(by_time[-2:]) == set(by_loss[-2:]) == {"tag11", "tag12"}

    def test_tag_device_activation_from_channel(self, medium):
        dev = TagDevice(medium.carrier_amplitude_v("tag4"))
        t = dev.time_to_activation_s()
        dev.advance(t + 1.0)
        assert dev.powered


class TestFullWaveformPath:
    """Sensor reading -> UL packet -> waveform -> reader chain."""

    def test_strain_reading_roundtrips_through_waveform(self, medium, rng):
        sensor = StrainSensorModule()
        code = sensor.sample(displacement_cm=7.5)
        packet = UplinkPacket(tid=4, payload=code)

        uplink = BackscatterUplink(pzt=medium.pzt)
        comp = uplink.tag_component(
            packet.to_bits(),
            375.0,
            2.5 * medium.backscatter_amplitude_v("tag4"),
            phase_rad=1.1,
            delay_s=medium.propagation_delay_s("tag4"),
            lead_in_s=0.03,
        )
        cap = uplink.capture([comp], medium.noise.psd_v2_per_hz, rng, extra_samples=2000)
        out = ReaderReceiveChain().decode(cap, 375.0)
        assert len(out.packets) == 1
        decoded_v = sensor.reconstruct_voltage_v(out.packets[0].payload)
        assert decoded_v == pytest.approx(sensor.analog_voltage_v(7.5), abs=0.01)

    def test_collision_flagged_and_capture_packet_recovered(self, medium, rng):
        uplink = BackscatterUplink(pzt=medium.pzt)
        strong = UplinkPacket(1, 111)
        weak = UplinkPacket(2, 222)
        comps = [
            uplink.tag_component(strong.to_bits(), 375.0, 0.025, phase_rad=0.4),
            uplink.tag_component(weak.to_bits(), 375.0, 0.006, phase_rad=2.2),
        ]
        cap = uplink.capture(comps, medium.noise.psd_v2_per_hz, rng, extra_samples=3000)
        # The capture effect decodes the dominant packet...
        out = ReaderReceiveChain().decode(cap, 375.0)
        assert strong in out.packets
        # ...but the IQ clusters reveal the collision, so the reader
        # must not ACK (Sec. 5.3).
        assert detect_collision(cap).collision

    def test_beacon_waveform_decodes_at_tag(self):
        # Reader FSK-in-OOK-out -> tag envelope detector -> PIE decode.
        from repro.phy.envelope import EnvelopeDetector, HysteresisComparator

        beacon = DownlinkBeacon(ack=True, empty=True)
        dl = FskOokDownlink()
        wave = dl.beacon_waveform(beacon.to_bits(), 250.0, link_gain=1.0)
        env = EnvelopeDetector(rc_s=0.5e-3).detect(wave, dl.sample_rate_hz)
        binary = HysteresisComparator(threshold_v=0.5, hysteresis_v=0.1).slice(env)
        # Sample raw bits at 250 bps centres.
        spb = dl.sample_rate_hz / 250.0
        centers = (np.arange(len(binary) / spb) * spb + spb / 2).astype(int)
        raw = [int(binary[i]) for i in centers if i < len(binary)]
        assert pie_decode(raw) == beacon.to_bits()


class TestNetworkScenarios:
    def test_twelve_tag_deployment_converges(self, medium):
        net = SlottedNetwork(
            pattern("c2").tag_periods(),
            medium=medium,
            config=NetworkConfig(seed=11, ideal_channel=True),
        )
        t = net.run_until_converged(max_slots=50_000)
        assert t is not None
        assert net.settled_fraction() == 1.0

    def test_charging_based_staggered_activation(self, medium):
        # Activation slots derived from the actual charging times: the
        # Sec. 5.5 late-arrival scenario end to end.
        periods = {"tag8": 4, "tag5": 8, "tag11": 8}
        charge = deployment_charge_times(medium)
        activation = {t: int(np.ceil(charge[t])) for t in periods}
        net = SlottedNetwork(
            periods,
            medium=medium,
            config=NetworkConfig(seed=2, ideal_channel=True),
            activation_slot=activation,
        )
        net.run(400)
        assert net.settled_fraction() == 1.0
        # tag11 (slowest charger) is a late arrival and was EMPTY-gated.
        assert net.tags["tag11"].late_arrival
        assert net.tags["tag11"].ever_settled

    def test_realistic_channel_low_collision_steady_state(self, medium):
        net = SlottedNetwork(
            pattern("c2").tag_periods(),
            medium=medium,
            config=NetworkConfig(seed=4),
        )
        net.run(1500)
        tail = net.records[-500:]
        collided = sum(1 for r in tail if r.truly_collided)
        assert collided / len(tail) < 0.1

    def test_goodput_approaches_utilization(self, medium):
        net = SlottedNetwork(
            pattern("c2").tag_periods(),
            medium=medium,
            config=NetworkConfig(seed=6, ideal_channel=True),
        )
        net.run_until_converged(max_slots=50_000)
        records = net.run(640)
        decoded = sum(1 for r in records if r.decoded is not None)
        assert decoded / len(records) == pytest.approx(0.75, abs=0.05)

    def test_aloha_vs_arachnet_headline(self, medium):
        # The paper's bottom line: distributed slot allocation turns
        # ~34% collision-free ALOHA into >95% clean delivery.
        from repro.baselines.aloha import AlohaSimulation

        aloha = AlohaSimulation(
            deployment_charge_times(medium), duration_s=2000.0, seed=1
        ).run()

        net = SlottedNetwork(
            pattern("c2").tag_periods(),
            medium=medium,
            config=NetworkConfig(seed=1, ideal_channel=True),
        )
        net.run_until_converged(max_slots=50_000)
        records = net.run(1000)
        tx_slots = [r for r in records if r.truly_nonempty]
        clean = sum(1 for r in tx_slots if not r.truly_collided)
        arachnet_rate = clean / len(tx_slots)
        assert aloha.overall_success_rate < 0.45
        assert arachnet_rate > 0.95
