"""Tests for the SHM application layer."""

import numpy as np
import pytest

from repro.app.shm import (
    Alarm,
    AlarmKind,
    Report,
    ShmMonitor,
    StrainField,
    collect_reports,
)
from repro.core.reader_protocol import SlotRecord
from repro.hardware.strain import StrainSensorModule


def rec(slot, decoded):
    return SlotRecord(
        slot=slot,
        n_transmitters=1 if decoded else 0,
        decoded=decoded,
        collision_detected=False,
        acked=decoded is not None,
        empty_flag=False,
    )


@pytest.fixture()
def sensors():
    return {"tagA": StrainSensorModule(), "tagB": StrainSensorModule()}


@pytest.fixture()
def monitor(sensors):
    return ShmMonitor({"tagA": 4, "tagB": 8}, sensors)


class TestStrainField:
    def test_baseline_and_drift(self):
        f = StrainField(
            baseline={"tagA": 1e-4}, drift_per_slot={"tagA": 1e-6}
        )
        assert f.strain_at("tagA", 0) == pytest.approx(1e-4)
        assert f.strain_at("tagA", 100) == pytest.approx(2e-4)

    def test_event_steps_strain(self):
        f = StrainField()
        f.inject_event(50, "tagA", 5e-4)
        assert f.strain_at("tagA", 49) == 0.0
        assert f.strain_at("tagA", 50) == pytest.approx(5e-4)
        assert f.strain_at("tagA", 200) == pytest.approx(5e-4)

    def test_events_are_per_tag(self):
        f = StrainField()
        f.inject_event(10, "tagA", 1e-3)
        assert f.strain_at("tagB", 100) == 0.0


class TestCollectReports:
    def test_only_decoded_slots_produce_reports(self, sensors):
        field = StrainField(baseline={"tagA": 1e-4})
        records = [rec(0, "tagA"), rec(1, None), rec(2, "tagA")]
        reports = collect_reports(records, field, sensors)
        assert [r.slot for r in reports] == [0, 2]

    def test_reconstructed_voltage_tracks_strain(self, sensors):
        small = StrainField(baseline={"tagA": 1e-5})
        large = StrainField(baseline={"tagA": 5e-4})
        r_small = collect_reports([rec(0, "tagA")], small, sensors)[0]
        r_large = collect_reports([rec(0, "tagA")], large, sensors)[0]
        assert r_large.voltage_v > r_small.voltage_v

    def test_unknown_tags_skipped(self, sensors):
        reports = collect_reports([rec(0, "tagZ")], StrainField(), sensors)
        assert reports == []


class TestMonitorAlarms:
    def test_no_alarm_at_rest(self, monitor):
        raised = monitor.ingest(Report(0, "tagA", 512, 0.901))
        assert raised == []

    def test_threshold_alarm_on_large_strain(self, monitor):
        raised = monitor.ingest(Report(4, "tagA", 900, 1.58))
        assert any(a.kind is AlarmKind.THRESHOLD for a in raised)

    def test_threshold_alarm_symmetric_for_compression(self, monitor):
        # Bending the other way drives the voltage toward 0 V; the
        # deviation from mid-rail is what matters.
        raised = monitor.ingest(Report(4, "tagA", 100, 0.30))
        assert any(a.kind is AlarmKind.THRESHOLD for a in raised)

    def test_trend_alarm_on_fast_drift(self, monitor):
        for k in range(8):
            monitor.ingest(Report(4 * k, "tagA", 500, 0.9 + 0.01 * k))
        assert any(a.kind is AlarmKind.TREND for a in monitor.alarms)

    def test_no_trend_alarm_for_slow_drift(self, monitor):
        for k in range(8):
            monitor.ingest(Report(4 * k, "tagA", 500, 0.9 + 1e-6 * k))
        assert not any(a.kind is AlarmKind.TREND for a in monitor.alarms)

    def test_stale_alarm_when_reports_stop(self, monitor):
        monitor.ingest(Report(0, "tagA", 500, 0.9))
        assert monitor.check_staleness(5) == []  # 5 slots < 3 periods
        raised = monitor.check_staleness(20)  # > 3 x period 4
        assert len(raised) == 1
        assert raised[0].kind is AlarmKind.STALE
        assert raised[0].tag == "tagA"

    def test_stale_alarm_raised_once_per_dark_stretch(self, monitor):
        monitor.ingest(Report(0, "tagA", 500, 0.9))
        monitor.check_staleness(20)
        assert monitor.check_staleness(30) == []  # already alarmed
        monitor.ingest(Report(32, "tagA", 500, 0.9))  # back alive
        raised = monitor.check_staleness(60)  # dark again
        assert len(raised) == 1

    def test_never_reported_tag_not_stale(self, monitor):
        # A tag that has not charged yet is expected-late, not stale.
        assert monitor.check_staleness(1000) == []

    def test_unknown_tag_reports_ignored(self, monitor):
        assert monitor.ingest(Report(0, "tagZ", 1, 0.9)) == []


class TestAnalytics:
    def test_trend_requires_history(self, monitor):
        assert monitor.trend_v_per_slot("tagA") is None
        for k in range(4):
            monitor.ingest(Report(k, "tagA", 500, 0.9))
        assert monitor.trend_v_per_slot("tagA") is not None

    def test_trend_slope_sign(self, monitor):
        for k in range(10):
            monitor.ingest(Report(k, "tagA", 500, 0.9 + 0.002 * k))
        assert monitor.trend_v_per_slot("tagA") == pytest.approx(0.002, rel=0.05)

    def test_summary_shape(self, monitor):
        monitor.ingest(Report(0, "tagA", 500, 0.9))
        s = monitor.summary()
        assert s["tagA"]["reports"] == 1.0
        assert s["tagA"]["last_voltage_v"] == pytest.approx(0.9)

    def test_validation(self, sensors):
        with pytest.raises(ValueError):
            ShmMonitor({"tagA": 4}, sensors, voltage_limit_v=0.0)
        with pytest.raises(ValueError):
            ShmMonitor({"tagA": 4}, sensors, staleness_periods=0.5)


class TestEndToEnd:
    def test_damage_event_detected_through_real_network(self, medium):
        """Network + strain field + monitor: inject damage, see alarm."""
        from repro.core.network import NetworkConfig, SlottedNetwork

        periods = {"tag5": 4, "tag6": 8, "tag9": 8}
        sensors = {t: StrainSensorModule() for t in periods}
        field = StrainField(baseline={t: 2e-5 for t in periods})
        field.inject_event(250, "tag5", 2.5e-3)  # impact near tag5

        net = SlottedNetwork(
            periods, medium, NetworkConfig(seed=4, ideal_channel=True)
        )
        monitor = ShmMonitor(periods, sensors)
        records = net.run(400)
        for report in collect_reports(records, field, sensors):
            monitor.ingest(report)
        threshold_alarms = [
            a for a in monitor.alarms if a.kind is AlarmKind.THRESHOLD
        ]
        assert threshold_alarms
        assert all(a.tag == "tag5" for a in threshold_alarms)
        assert min(a.slot for a in threshold_alarms) >= 250


class TestEnergyCoupledStaleness:
    def test_brownout_surfaces_as_staleness_alarm(self, medium):
        """Full loop: an over-budget sensing load browns the weak tag
        out; its reports stop; the monitor raises STALE — the way a
        fleet operator would actually notice the energy problem."""
        from repro.core.energy_network import EnergyAwareNetwork
        from repro.core.network import NetworkConfig

        periods = {"tag11": 4, "tag8": 4}
        sensors = {t: StrainSensorModule() for t in periods}
        field = StrainField(baseline={t: 2e-5 for t in periods})
        net = EnergyAwareNetwork(
            periods,
            medium,
            NetworkConfig(seed=1, ideal_channel=True),
            sensor_samples_per_slot=60,  # ~60 uW: exceeds tag11's budget
        )
        monitor = ShmMonitor(periods, sensors, staleness_periods=3.0)
        stale_tags = set()
        for chunk in range(20):
            records = net.run(100)
            for report in collect_reports(records, field, sensors):
                monitor.ingest(report)
            for alarm in monitor.check_staleness((chunk + 1) * 100):
                stale_tags.add(alarm.tag)
        assert net.energy_log["tag11"].brownouts > 0
        assert "tag11" in stale_tags
        assert "tag8" not in stale_tags


class TestFleetResultBuffer:
    """Attach/detach lifecycle of the shared-memory result seam."""

    def _buffer(self, n=8):
        from repro.app.shm import FleetResultBuffer

        return FleetResultBuffer(n)

    def test_write_then_attach_reads_same_rows(self):
        from repro.app.shm import FleetResultBuffer

        owner = self._buffer()
        try:
            block = np.arange(14, dtype=float).reshape(2, 7)
            owner.write_rows(3, block)
            reader = FleetResultBuffer.attach(owner.name, 8)
            try:
                assert (reader.read_rows(3, 2) == block).all()
                # Zero-copy: a write through one mapping is visible
                # through the other without any publish step.
                owner.rows[3, 0] = 99.0
                assert reader.rows[3, 0] == 99.0
            finally:
                reader.close()
        finally:
            owner.close()
            owner.unlink()

    def test_double_close_and_double_unlink_are_idempotent(self):
        buf = self._buffer()
        buf.close()
        buf.close()  # second close must be a no-op
        buf.unlink()
        buf.unlink()  # second unlink must be a no-op

    def test_attacher_never_unlinks(self):
        from multiprocessing import shared_memory

        from repro.app.shm import FleetResultBuffer

        owner = self._buffer(4)
        try:
            reader = FleetResultBuffer.attach(owner.name, 4)
            reader.close()
            reader.unlink()  # non-owner: must be a no-op
            # The segment must still be attachable afterwards.
            probe = shared_memory.SharedMemory(name=owner.name, create=False)
            probe.close()
        finally:
            owner.close()
            owner.unlink()

    def test_rows_view_refused_after_close(self):
        buf = self._buffer()
        buf.close()
        with pytest.raises(ValueError, match="closed"):
            buf.rows
        buf.unlink()

    def test_write_bounds_and_shape_validated(self):
        buf = self._buffer(4)
        try:
            with pytest.raises(ValueError, match="outside"):
                buf.write_rows(3, np.zeros((2, 7)))
            with pytest.raises(ValueError, match="rows"):
                buf.write_rows(0, np.zeros((2, 3)))
        finally:
            buf.close()
            buf.unlink()

    def test_attach_rejects_undersized_segment(self):
        from repro.app.shm import FleetResultBuffer

        owner = self._buffer(2)
        try:
            with pytest.raises(ValueError, match="rows need"):
                FleetResultBuffer.attach(owner.name, 64)
        finally:
            owner.close()
            owner.unlink()

    def test_context_manager_owner_unlinks(self):
        from multiprocessing import shared_memory

        from repro.app.shm import FleetResultBuffer

        with FleetResultBuffer(2) as buf:
            name = buf.name
            buf.write_rows(0, np.zeros((2, 7)))
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_fresh_buffer_is_all_nan(self):
        buf = self._buffer(3)
        try:
            assert np.isnan(buf.rows).all()
        finally:
            buf.close()
            buf.unlink()
