"""Shared fixtures: the stock deployment is expensive enough to build
once per session (propagation caches warm up as tests touch links)."""

import numpy as np
import pytest

from repro.channel.medium import AcousticMedium
from repro.hardware.harvester import EnergyHarvester


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current code instead of "
        "comparing against it (review the diff before committing!)",
    )


@pytest.fixture(scope="session")
def regen_golden(request) -> bool:
    """True when the run should regenerate golden-trace files."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture(scope="session")
def medium() -> AcousticMedium:
    """The ONVO L60 deployment with default channel models."""
    return AcousticMedium()


@pytest.fixture(scope="session")
def harvester() -> EnergyHarvester:
    return EnergyHarvester()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
