"""Shared fixtures: the stock deployment is expensive enough to build
once per session (propagation caches warm up as tests touch links)."""

import numpy as np
import pytest

from repro.channel.medium import AcousticMedium
from repro.hardware.harvester import EnergyHarvester


@pytest.fixture(scope="session")
def medium() -> AcousticMedium:
    """The ONVO L60 deployment with default channel models."""
    return AcousticMedium()


@pytest.fixture(scope="session")
def harvester() -> EnergyHarvester:
    return EnergyHarvester()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
