"""Tests for the perf instrumentation registry and wall-clock guards.

Ratio-based speed checks (vectorised vs reference implementation) run
unconditionally: they compare the machine against itself, so they hold
on slow CI runners.  Absolute wall-clock budgets are only meaningful on
calibrated hardware and are gated behind ``REPRO_PERF_STRICT=1``.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.perf import PerfRegistry, StageStats, merge_reports

PERF_STRICT = os.environ.get("REPRO_PERF_STRICT") == "1"

strict_only = pytest.mark.skipif(
    not PERF_STRICT,
    reason="absolute wall-clock budget; set REPRO_PERF_STRICT=1 to enforce",
)


class TestStageStats:
    def test_record_accumulates(self):
        stats = StageStats()
        stats.record(0.5)
        stats.record(1.5)
        assert stats.calls == 2
        assert stats.total_s == pytest.approx(2.0)
        assert stats.mean_s == pytest.approx(1.0)
        assert stats.min_s == pytest.approx(0.5)
        assert stats.max_s == pytest.approx(1.5)

    def test_empty_as_dict_has_finite_min(self):
        d = StageStats().as_dict()
        assert d["calls"] == 0
        assert d["min_s"] == 0.0
        json.dumps(d)


class TestPerfRegistry:
    def test_timed_records_span(self):
        reg = PerfRegistry()
        with reg.timed("stage.a"):
            pass
        report = reg.report()
        assert report["stages"]["stage.a"]["calls"] == 1
        assert report["stages"]["stage.a"]["total_s"] >= 0.0

    def test_timed_records_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.timed("stage.boom"):
                raise RuntimeError("x")
        assert reg.report()["stages"]["stage.boom"]["calls"] == 1

    def test_counters(self):
        reg = PerfRegistry()
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.report()["counters"]["hits"] == 5

    def test_reset(self):
        reg = PerfRegistry()
        reg.count("hits")
        with reg.timed("s"):
            pass
        reg.reset()
        assert reg.report() == {"stages": {}, "counters": {}}

    def test_report_is_json_serialisable(self):
        reg = PerfRegistry()
        with reg.timed("s"):
            reg.count("c", 3)
        json.dumps(reg.report())

    def test_thread_safety_of_counters(self):
        reg = PerfRegistry()

        def bump():
            for _ in range(1000):
                reg.count("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.report()["counters"]["n"] == 4000

    def test_module_level_registry_instrumented_by_waveform_loop(self, medium):
        from repro import perf
        from repro.core.network import NetworkConfig
        from repro.core.waveform_network import WaveformNetwork

        perf.reset()
        net = WaveformNetwork(
            {"tag8": 2}, medium=medium, config=NetworkConfig(seed=0)
        )
        net.run(4)
        report = perf.report()
        assert report["stages"]["waveform.synthesize"]["calls"] >= 1
        assert report["stages"]["waveform.demodulate"]["calls"] >= 1
        assert report["counters"]["waveform.slots"] >= 1


class TestCrossProcessMerge:
    """merge_report/merge_reports: the parallel runner's aggregation
    path, including the never-called-stage min_s regression."""

    def test_merge_report_adds_stages_and_counters(self):
        a, b = PerfRegistry(), PerfRegistry()
        with a.timed("s"):
            pass
        a.count("c", 2)
        with b.timed("s"):
            pass
        b.count("c", 3)
        a.merge_report(b.report())
        report = a.report()
        assert report["stages"]["s"]["calls"] == 2
        assert report["counters"]["c"] == 5

    def test_never_called_stage_reports_zero_min_not_inf(self):
        reg = PerfRegistry()
        reg.stage("quiet")  # pre-registered, never fired
        d = reg.report()["stages"]["quiet"]
        assert d["calls"] == 0
        assert d["min_s"] == 0.0
        json.dumps(d, allow_nan=False)

    def test_merging_empty_stage_does_not_poison_min(self):
        # Regression: a never-called stage snapshots min_s as 0.0; on
        # merge that 0.0 must not masquerade as a real fastest span.
        active = PerfRegistry()
        with active.timed("s"):
            time.sleep(0.001)
        real_min = active.report()["stages"]["s"]["min_s"]
        assert real_min > 0.0

        idle = PerfRegistry()
        idle.stage("s")  # calls == 0, snapshot min_s == 0.0
        active.merge_report(idle.report())
        assert active.report()["stages"]["s"]["min_s"] == real_min

    def test_merging_into_empty_stage_takes_other_min(self):
        idle = PerfRegistry()
        idle.stage("s")
        active = PerfRegistry()
        with active.timed("s"):
            time.sleep(0.001)
        real_min = active.report()["stages"]["s"]["min_s"]
        idle.merge_report(active.report())
        assert idle.report()["stages"]["s"]["min_s"] == real_min

    def test_from_dict_restores_empty_sentinel(self):
        import math

        stats = StageStats.from_dict({"calls": 0, "total_s": 0.0,
                                      "min_s": 0.0, "max_s": 0.0})
        assert stats.min_s == math.inf  # internal sentinel, not 0.0
        stats.record(0.5)
        assert stats.min_s == 0.5

    def test_counter_only_registry_round_trips(self):
        # Regression for the count()-only path: a report with counters
        # but no spans must merge and re-serialise with finite values.
        reg = PerfRegistry()
        reg.count("cache.hit", 7)
        merged = merge_reports([reg.report(), reg.report()])
        assert merged["counters"]["cache.hit"] == 14
        assert merged["stages"] == {}
        json.dumps(merged, allow_nan=False)

    def test_merge_reports_associative(self):
        regs = []
        for calls in (1, 2, 3):
            reg = PerfRegistry()
            for _ in range(calls):
                with reg.timed("s"):
                    pass
            reg.count("c", calls)
            regs.append(reg.report())
        left = merge_reports([merge_reports(regs[:2]), regs[2]])
        right = merge_reports([regs[0], merge_reports(regs[1:])])
        assert left["stages"]["s"]["calls"] == right["stages"]["s"]["calls"] == 6
        assert left["counters"] == right["counters"]


def best_of(n, fn, *args):
    """Best-of-n wall time: the minimum is the least noisy estimator."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


class TestWallClockRatios:
    """Self-relative checks: the vectorised hot paths must beat their
    scalar executable specs on the same machine, whatever its speed."""

    def test_level_expansion_beats_scalar_reference(self):
        from repro.phy import cache as phy_cache
        from repro.phy.modem import (
            raw_bits_to_levels,
            raw_bits_to_levels_reference,
        )

        rng = np.random.default_rng(0)
        raw = phy_cache.fm0_raw([int(b) for b in rng.integers(0, 2, 256)])
        raw_list = list(raw)
        # Warm any caches before timing.
        raw_bits_to_levels(raw, 375.0, 500_000.0)
        vec = best_of(3, raw_bits_to_levels, raw, 375.0, 500_000.0)
        ref = best_of(3, raw_bits_to_levels_reference, raw_list, 375.0,
                      500_000.0)
        assert vec < ref, (
            f"vectorised path ({vec:.4f}s) not faster than scalar "
            f"reference ({ref:.4f}s)"
        )

    def test_ook_waveform_beats_scalar_reference(self):
        from repro.phy.modem import FskOokDownlink

        downlink = FskOokDownlink()
        bits = [1, 0, 1, 1, 0, 1, 0, 0] * 8
        downlink.naive_ook_waveform(bits, 250.0)
        vec = best_of(3, downlink.naive_ook_waveform, bits, 250.0)
        ref = best_of(3, downlink.naive_ook_waveform_reference, bits, 250.0)
        assert vec < ref


class TestWallClockBudgets:
    """Absolute budgets, calibrated for the development machine; gated
    behind REPRO_PERF_STRICT so a loaded CI runner cannot flake them."""

    @strict_only
    def test_slot_network_throughput_budget(self):
        from repro.core.network import NetworkConfig, SlottedNetwork

        net = SlottedNetwork(
            {"tag1": 4, "tag2": 8, "tag3": 8, "tag4": 16},
            config=NetworkConfig(seed=0, ideal_channel=True),
        )
        elapsed = best_of(1, net.run, 5000)
        assert elapsed < 2.0, f"5000 slots took {elapsed:.2f}s (budget 2s)"

    @strict_only
    def test_fault_controller_overhead_budget(self):
        from repro.core.network import NetworkConfig, SlottedNetwork
        from repro.faults import FaultSchedule

        def run(schedule):
            SlottedNetwork(
                {"tag1": 4, "tag2": 8, "tag3": 8, "tag4": 16},
                config=NetworkConfig(seed=0, ideal_channel=True),
                faults=schedule,
            ).run(3000)

        base = best_of(3, run, None)
        hooked = best_of(3, run, FaultSchedule([]))
        assert hooked < base * 2.0, (
            f"idle fault controller more than doubled the slot loop: "
            f"{base:.3f}s -> {hooked:.3f}s"
        )
