"""Tests for the perf instrumentation registry."""

import json
import threading

import pytest

from repro.perf import PerfRegistry, StageStats


class TestStageStats:
    def test_record_accumulates(self):
        stats = StageStats()
        stats.record(0.5)
        stats.record(1.5)
        assert stats.calls == 2
        assert stats.total_s == pytest.approx(2.0)
        assert stats.mean_s == pytest.approx(1.0)
        assert stats.min_s == pytest.approx(0.5)
        assert stats.max_s == pytest.approx(1.5)

    def test_empty_as_dict_has_finite_min(self):
        d = StageStats().as_dict()
        assert d["calls"] == 0
        assert d["min_s"] == 0.0
        json.dumps(d)


class TestPerfRegistry:
    def test_timed_records_span(self):
        reg = PerfRegistry()
        with reg.timed("stage.a"):
            pass
        report = reg.report()
        assert report["stages"]["stage.a"]["calls"] == 1
        assert report["stages"]["stage.a"]["total_s"] >= 0.0

    def test_timed_records_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.timed("stage.boom"):
                raise RuntimeError("x")
        assert reg.report()["stages"]["stage.boom"]["calls"] == 1

    def test_counters(self):
        reg = PerfRegistry()
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.report()["counters"]["hits"] == 5

    def test_reset(self):
        reg = PerfRegistry()
        reg.count("hits")
        with reg.timed("s"):
            pass
        reg.reset()
        assert reg.report() == {"stages": {}, "counters": {}}

    def test_report_is_json_serialisable(self):
        reg = PerfRegistry()
        with reg.timed("s"):
            reg.count("c", 3)
        json.dumps(reg.report())

    def test_thread_safety_of_counters(self):
        reg = PerfRegistry()

        def bump():
            for _ in range(1000):
                reg.count("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.report()["counters"]["n"] == 4000

    def test_module_level_registry_instrumented_by_waveform_loop(self, medium):
        from repro import perf
        from repro.core.network import NetworkConfig
        from repro.core.waveform_network import WaveformNetwork

        perf.reset()
        net = WaveformNetwork(
            {"tag8": 2}, medium=medium, config=NetworkConfig(seed=0)
        )
        net.run(4)
        report = perf.report()
        assert report["stages"]["waveform.synthesize"]["calls"] >= 1
        assert report["stages"]["waveform.demodulate"]["calls"] >= 1
        assert report["counters"]["waveform.slots"] >= 1
