"""Tests for the text schedule/timeline renderers."""

import pytest

from repro.analysis.render import (
    render_occupancy_by_tag,
    render_schedule,
    render_timeline,
)
from repro.core.reader_protocol import SlotRecord
from repro.core.slot_schedule import Assignment


def rec(slot, n_tx=0, decoded=None, collision=False):
    return SlotRecord(
        slot=slot,
        n_transmitters=n_tx,
        decoded=decoded,
        collision_detected=collision,
        acked=decoded is not None and not collision,
        empty_flag=n_tx == 0,
    )


class TestScheduleRendering:
    def test_table1_grid(self):
        from repro.experiments.configs import TABLE1_OFFSETS, TABLE1_PERIODS

        assignments = {
            t: Assignment(t, TABLE1_PERIODS[t], TABLE1_OFFSETS[t])
            for t in TABLE1_PERIODS
        }
        out = render_schedule(assignments, 8, labels={t: t[-1] for t in assignments})
        assert "A B A D A B A C" in out

    def test_free_slots_are_dots(self):
        out = render_schedule({"t": Assignment("t", 4, 1)})
        assert out.splitlines()[1] == "tx:   . T . ."

    def test_conflicts_marked_x(self):
        out = render_schedule(
            {"a": Assignment("a", 2, 0), "b": Assignment("b", 2, 0)}
        )
        assert "X" in out

    def test_empty(self):
        assert "empty" in render_schedule({})


class TestTimelineRendering:
    def test_symbols(self):
        records = [
            rec(0),
            rec(1, n_tx=1, decoded="tag3"),
            rec(2, n_tx=2, collision=True),
            rec(3, n_tx=1, decoded=None),
        ]
        out = render_timeline(records)
        assert ".3X?" in out

    def test_wrapping(self):
        records = [rec(i, n_tx=1, decoded="tag1") for i in range(20)]
        out = render_timeline(records, width=8)
        assert out.count("|") == 3
        assert out.splitlines()[1].startswith("     8 |")

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_timeline([], width=2)

    def test_empty(self):
        assert render_timeline([]) == "(no slots)"


class TestOccupancySummary:
    def test_ratios(self):
        records = [
            rec(i, n_tx=1, decoded="a" if i % 4 == 0 else None) for i in range(40)
        ]
        out = render_occupancy_by_tag(records, ["a"], {"a": 4})
        assert "100.0%" in out

    def test_empty(self):
        assert render_occupancy_by_tag([], ["a"], {"a": 4}) == "(no slots)"

    def test_integrates_with_simulation(self, medium):
        from repro.core.network import NetworkConfig, SlottedNetwork

        periods = {"tag5": 4, "tag8": 8}
        net = SlottedNetwork(
            periods, medium, NetworkConfig(seed=0, ideal_channel=True)
        )
        net.run_until_converged()
        records = net.run(64)
        out = render_occupancy_by_tag(records, list(periods), periods)
        assert "tag5" in out and "tag8" in out
        timeline = render_timeline(records)
        assert "X" not in timeline  # converged: no collisions
