"""Tests for PSD-based SNR measurement."""

import numpy as np
import pytest

from repro.analysis.psd import backscatter_snr_db, band_power, waveform_psd
from repro.channel.noise import VehicleVibration
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket


def make_capture(amplitude, rate, rng, noise_psd=2.673e-10):
    up = BackscatterUplink()
    comp = up.tag_component(
        UplinkPacket(1, 77).to_bits(), rate, amplitude, phase_rad=0.9,
        lead_in_s=max(0.012, 8.0 / rate),
    )
    return up.capture([comp], noise_psd, rng, extra_samples=2000)


class TestWaveformPsd:
    def test_peak_at_carrier(self, rng):
        cap = make_capture(0.01, 375.0, rng)
        freqs, psd = waveform_psd(cap)
        assert freqs[np.argmax(psd)] == pytest.approx(90_000.0, abs=200)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            waveform_psd(np.zeros(4))


class TestSnrMeasurement:
    def test_stronger_backscatter_higher_snr(self, rng):
        weak = backscatter_snr_db(make_capture(0.005, 375.0, rng), 375.0)
        strong = backscatter_snr_db(make_capture(0.02, 375.0, rng), 375.0)
        assert strong > weak + 6.0

    def test_snr_decreases_with_bit_rate(self, rng):
        snrs = [
            backscatter_snr_db(make_capture(0.01, r, rng), r)
            for r in (93.75, 375.0, 1500.0)
        ]
        assert snrs[0] > snrs[1] > snrs[2]

    def test_amplitude_doubling_gains_about_6db(self, rng):
        s1 = backscatter_snr_db(make_capture(0.01, 375.0, rng), 375.0)
        s2 = backscatter_snr_db(make_capture(0.02, 375.0, rng), 375.0)
        assert s2 - s1 == pytest.approx(6.0, abs=2.0)

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            backscatter_snr_db(make_capture(0.01, 375.0, rng), 0.0)


class TestBandPower:
    def test_vehicle_vibration_misses_the_carrier_band(self, rng):
        # The Sec. 2.2 robustness claim: <0.1 kHz self-vibration cannot
        # reach the 90 kHz communication band.
        v = VehicleVibration(rms_amplitude_v=1.0)
        x = v.samples(2**18, 500_000.0, rng)
        low = band_power(x, 1.0, 150.0)
        near_carrier = band_power(x, 89_000.0, 91_000.0)
        assert near_carrier < 1e-6 * low

    def test_band_power_of_tone(self, rng):
        fs = 500_000.0
        t = np.arange(2**16) / fs
        x = np.sqrt(2.0) * np.cos(2 * np.pi * 50_000.0 * t)  # 1 V^2 power
        assert band_power(x, 49_000.0, 51_000.0, fs) == pytest.approx(1.0, rel=0.1)

    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            band_power(np.zeros(100), 10.0, 5.0)
