"""Tests for long-run slot metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    first_convergence_slot,
    reader_visible_ratios,
    settled_throughput,
    sliding_ratios,
)
from repro.core.reader_protocol import SlotRecord


def rec(slot, n_tx=0, decoded=None, collision=False):
    return SlotRecord(
        slot=slot,
        n_transmitters=n_tx,
        decoded=decoded,
        collision_detected=collision,
        acked=decoded is not None and not collision,
        empty_flag=n_tx == 0,
    )


class TestSlidingRatios:
    def test_all_empty(self):
        records = [rec(i) for i in range(64)]
        stats = sliding_ratios(records, window=32)
        assert stats.mean_non_empty == 0.0
        assert stats.mean_collision == 0.0

    def test_all_occupied_no_collisions(self):
        records = [rec(i, n_tx=1, decoded="t") for i in range(64)]
        stats = sliding_ratios(records, window=32)
        assert stats.mean_non_empty == 1.0
        assert stats.mean_collision == 0.0

    def test_half_occupied(self):
        records = [rec(i, n_tx=i % 2, decoded="t" if i % 2 else None) for i in range(96)]
        stats = sliding_ratios(records, window=32)
        assert stats.mean_non_empty == pytest.approx(0.5, abs=0.02)

    def test_collision_ratio_counts_multi_tx(self):
        records = [rec(i, n_tx=2, collision=True) for i in range(40)]
        stats = sliding_ratios(records, window=32)
        assert stats.mean_collision == 1.0

    def test_window_shorter_than_records_empty_series(self):
        stats = sliding_ratios([rec(0)], window=32)
        assert stats.non_empty_ratio.size == 0
        assert stats.mean_non_empty == 0.0

    def test_series_length(self):
        records = [rec(i, n_tx=1) for i in range(100)]
        stats = sliding_ratios(records, window=32)
        assert len(stats.non_empty_ratio) == 100 - 32 + 1

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            sliding_ratios([], window=0)


class TestReaderVisible:
    def test_decode_failure_depresses_visible_nonempty_only(self):
        # A transmission that fails to decode (no collision) is invisible
        # to the reader but real to the simulator — Sec. 6.4's remark.
        records = [rec(i, n_tx=1, decoded=None) for i in range(64)]
        truth = sliding_ratios(records, window=32)
        visible = reader_visible_ratios(records, window=32)
        assert truth.mean_non_empty == 1.0
        assert visible.mean_non_empty == 0.0


class TestConvergenceDetection:
    def test_detects_streak_completion(self):
        records = [rec(i, n_tx=2, collision=True) for i in range(10)]
        records += [rec(10 + i, n_tx=1, decoded="t") for i in range(32)]
        assert first_convergence_slot(records, streak=32) == 42

    def test_streak_reset_by_collision(self):
        records = [rec(i, n_tx=1) for i in range(31)]
        records += [rec(31, n_tx=2, collision=True)]
        records += [rec(32 + i, n_tx=1) for i in range(31)]
        assert first_convergence_slot(records, streak=32) is None

    def test_empty_records(self):
        assert first_convergence_slot([], streak=32) is None


class TestThroughput:
    def test_settled_throughput(self):
        records = [rec(i, n_tx=1, decoded="t" if i % 4 < 3 else None) for i in range(100)]
        assert settled_throughput(records) == pytest.approx(0.75)

    def test_empty(self):
        assert settled_throughput([]) == 0.0
