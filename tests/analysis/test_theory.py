"""Tests for the analytical approximations."""

import math

import numpy as np
import pytest

from repro.analysis.theory import (
    convergence_trend,
    disruption_collision_ratio,
    estimate_convergence_slots,
    expected_goodput,
    settle_probability,
)
from repro.experiments.configs import TABLE3_PATTERNS


class TestSettleProbability:
    def test_empty_channel_always_clean(self):
        assert settle_probability(8, 0.0) == 1.0

    def test_full_channel_never_clean(self):
        assert settle_probability(8, 1.0) == 0.0

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            settle_probability(8, 1.5)


class TestConvergenceEstimate:
    def test_monotone_in_utilization(self):
        estimates = [
            estimate_convergence_slots(TABLE3_PATTERNS[n].periods())
            for n in ("c1", "c3", "c4", "c5")
        ]
        assert estimates == sorted(estimates)

    def test_rank_correlates_with_measured_medians(self):
        # Measured medians from EXPERIMENTS.md (ideal channel, 10 trials).
        measured = {
            "c1": 46, "c2": 83, "c3": 129, "c4": 391, "c5": 3163,
            "c6": 75, "c7": 121, "c8": 69, "c9": 68,
        }
        est = convergence_trend(
            {n: TABLE3_PATTERNS[n].periods() for n in measured}
        )
        names = sorted(measured)
        m = np.array([measured[n] for n in names], dtype=float)
        e = np.array([est[n] for n in names])
        rank_m = np.argsort(np.argsort(m))
        rank_e = np.argsort(np.argsort(e))
        rho = np.corrcoef(rank_m, rank_e)[0, 1]
        assert rho > 0.85  # Spearman: the fluid model orders the patterns

    def test_u1_much_slower_than_low_u(self):
        lo = estimate_convergence_slots(TABLE3_PATTERNS["c1"].periods())
        hi = estimate_convergence_slots(TABLE3_PATTERNS["c5"].periods())
        assert hi > 10 * lo

    def test_overcapacity_is_infinite(self):
        assert estimate_convergence_slots([2, 2, 2]) == math.inf

    def test_single_tag_roughly_its_period(self):
        est = estimate_convergence_slots([8], streak=0, residual=0.4)
        assert 4 <= est <= 40

    def test_invalid_residual_raises(self):
        with pytest.raises(ValueError):
            estimate_convergence_slots([4], residual=0.0)

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            estimate_convergence_slots([3])


class TestGoodputAndDisruption:
    def test_goodput_is_utilization_on_clean_link(self):
        assert expected_goodput([4, 4, 8]) == pytest.approx(0.625)

    def test_goodput_scales_with_link_success(self):
        assert expected_goodput([4], 0.9) == pytest.approx(0.225)

    def test_goodput_validation(self):
        with pytest.raises(ValueError):
            expected_goodput([4], 1.5)

    def test_disruption_estimate_matches_fig16_scale(self):
        # c3 with 5e-4 beacon loss: the 3-15-probes-per-disruption band
        # (0.015-0.076) brackets the paper's 0.056 and overlaps this
        # repo's measured 0.03-0.09 span.
        periods = TABLE3_PATTERNS["c3"].periods()
        low = disruption_collision_ratio(periods, 5e-4, mean_probes_to_resettle=3)
        high = disruption_collision_ratio(periods, 5e-4, mean_probes_to_resettle=15)
        assert low < 0.056 < high

    def test_disruption_zero_without_loss(self):
        assert disruption_collision_ratio([4, 8], 0.0) == 0.0


class TestSlotDuration:
    def test_one_second_slot_is_comfortable(self):
        from repro.analysis.theory import minimum_slot_duration_s

        floor = minimum_slot_duration_s()
        # The paper's 1 s slot is ~2-3x the timing floor.
        assert 0.3 < floor < 0.6
        assert 1.0 > 1.8 * floor

    def test_floor_shrinks_with_faster_uplink(self):
        from repro.analysis.theory import minimum_slot_duration_s

        assert minimum_slot_duration_s(ul_raw_rate_bps=3000.0) < (
            minimum_slot_duration_s(ul_raw_rate_bps=375.0)
        )

    def test_guard_validation(self):
        from repro.analysis.theory import minimum_slot_duration_s

        with pytest.raises(ValueError):
            minimum_slot_duration_s(guard_fraction=-0.1)
