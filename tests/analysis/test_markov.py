"""Tests for the Appendix C convergence machinery.

These mechanically verify the paper's proof obligations on small,
exhaustively-enumerable configurations.
"""

import pytest

from repro.analysis.markov import SlotAllocationChain, completion_feasible


class TestCompletionFeasibility:
    def test_empty_always_feasible(self):
        assert completion_feasible([], [])
        assert completion_feasible([(4, 0)], [])

    def test_simple_fit(self):
        assert completion_feasible([(4, 0)], [4, 4, 4])

    def test_capacity_exceeded_infeasible(self):
        assert not completion_feasible([], [2, 2, 2])

    def test_fragmentation_detected(self):
        # (4,0) and (4,1) occupy both period-2 congruence classes, so a
        # period-2 tag cannot fit despite total utilisation 1.
        assert not completion_feasible([(4, 0), (4, 1)], [2])

    def test_compatible_halves_fit(self):
        # (4,0) and (4,2) share class 0 mod 2; a period-2 tag fits at 1.
        assert completion_feasible([(4, 0), (4, 2)], [2])

    def test_sec56_example(self):
        # A and B (period 4) at offsets 2 and 3 block a period-2 tag.
        assert not completion_feasible([(4, 2), (4, 3)], [2])
        # Removing either victim reopens the competition.
        assert completion_feasible([(4, 3)], [2])


class TestChainVerification:
    @pytest.mark.parametrize(
        "periods",
        [(2, 2), (2, 4), (4, 4), (4, 4, 4), (2, 4, 4)],
    )
    def test_lemma1_all_settled_states_collision_free(self, periods):
        assert SlotAllocationChain(periods).verify_lemma1()

    @pytest.mark.parametrize(
        "periods",
        [(2, 2), (2, 4), (4, 4), (4, 4, 4), (2, 4, 4)],
    )
    def test_chain_is_absorbing(self, periods):
        # Lemmas 2-3 / Theorem 4: absorbing set closed & reachable from
        # every reachable state.
        assert SlotAllocationChain(periods).verify_absorbing()

    def test_sec56_configuration_absorbs_via_eviction(self):
        # (4, 4, 2): without Sec. 5.6's avoidance the period-2 tag could
        # starve forever; the chain must still absorb.
        assert SlotAllocationChain((4, 4, 2)).verify_absorbing()

    def test_transitions_are_probability_distributions(self):
        chain = SlotAllocationChain((2, 4))
        states, trans = chain.explore()
        for s in states:
            total = sum(trans[s].values())
            assert total == pytest.approx(1.0, abs=1e-12)

    def test_over_capacity_rejected(self):
        with pytest.raises(ValueError):
            SlotAllocationChain((2, 2, 2))

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SlotAllocationChain((3,))

    def test_state_space_guard(self):
        with pytest.raises(MemoryError):
            SlotAllocationChain((4, 4, 4, 4)).explore(max_states=100)


class TestAbsorptionTime:
    def test_single_tag_settles_within_its_period(self):
        # One tag alone is ACKed at its first transmission.
        t = SlotAllocationChain((4,)).expected_absorption_time()
        # Uniform random offset: expected first transmission at slot
        # (0+1+2+3)/4 = 1.5, absorbed the slot after it transmits.
        assert t == pytest.approx(2.5, abs=1e-9)

    def test_two_tags_slower_than_one(self):
        one = SlotAllocationChain((4,)).expected_absorption_time()
        two = SlotAllocationChain((4, 4)).expected_absorption_time()
        assert two > one

    def test_contention_grows_with_utilization(self):
        # At a fixed period, each extra tag raises utilisation and the
        # expected time to a collision-free allocation — the Fig. 15(a)
        # effect in miniature.
        light = SlotAllocationChain((4, 4)).expected_absorption_time()
        heavy = SlotAllocationChain((4, 4, 4)).expected_absorption_time()
        assert heavy > light

    def test_simulation_matches_chain_prediction(self):
        # The slot-level simulator (ideal channel, no EMPTY gating at
        # start, same feedback rules) should land near the chain's
        # expected absorption time for a tiny config.
        import numpy as np

        from repro.core.network import NetworkConfig, SlottedNetwork

        chain_time = SlotAllocationChain((4, 4)).expected_absorption_time()
        times = []
        for seed in range(40):
            net = SlottedNetwork(
                {"tag5": 4, "tag8": 4},
                config=NetworkConfig(seed=seed, ideal_channel=True),
            )
            # Absorption = both settled; detect via settled_fraction.
            for slot in range(200):
                net.step()
                if net.settled_fraction() == 1.0:
                    times.append(slot + 1)
                    break
        assert np.mean(times) == pytest.approx(chain_time, rel=0.5)
