"""End-to-end checks of every experiment runner against the paper's
reported numbers (shape and, where the paper is explicit, values)."""

import numpy as np
import pytest

from repro.experiments.fig11_energy import format_fig11, run_fig11
from repro.experiments.fig12_uplink import format_fig12, run_fig12
from repro.experiments.fig13_downlink import format_fig13, run_fig13
from repro.experiments.fig14_pingpong import format_fig14, run_fig14
from repro.experiments.fig16_longrun import format_fig16, run_fig16
from repro.experiments.fig17_strain import format_fig17, run_fig17
from repro.experiments.fig19_aloha import deployment_charge_times
from repro.experiments.table2_power import format_table2, run_table2
from repro.experiments.table3_convergence import measure_convergence
from repro.experiments.configs import pattern


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self, medium):
        return run_fig11(medium)

    def test_all_tags_activate_at_8_stages(self, result):
        assert result.all_activate_at_8_stages()

    def test_tag4_anchor(self, result):
        row = next(r for r in result.rows if r.tag == "tag4")
        assert row.amplified_16x_v == pytest.approx(4.74, abs=0.1)

    def test_tag11_anchor(self, result):
        row = next(r for r in result.rows if r.tag == "tag11")
        assert row.amplified_16x_v == pytest.approx(2.70, abs=0.05)

    def test_charging_time_range(self, result):
        lo, hi = result.charging_time_range_s()
        assert lo == pytest.approx(4.5, abs=0.1)
        assert hi == pytest.approx(56.2, rel=0.03)

    def test_net_power_range(self, result):
        lo, hi = result.net_power_range_w()
        assert lo == pytest.approx(47.1e-6, rel=0.03)
        assert hi == pytest.approx(587.8e-6, rel=0.01)

    def test_voltage_monotone_in_stage_count(self, result):
        for row in result.rows:
            vals = [row.amplified_v_by_stage[n] for n in result.stage_counts]
            assert vals == sorted(vals)

    def test_formatting_mentions_all_tags(self, result):
        text = format_fig11(result)
        assert "tag4" in text and "tag11" in text


class TestTable2:
    def test_power_rows(self):
        r = run_table2()
        assert r.table["RX"]["total_power_uw"] == pytest.approx(24.8)
        assert r.table["TX"]["total_power_uw"] == pytest.approx(51.0)
        assert r.table["IDLE"]["total_power_uw"] == pytest.approx(7.6)

    def test_savings_over_80_percent(self):
        r = run_table2()
        assert r.rx_savings_vs_active > 0.8
        assert r.tx_savings_vs_active > 0.8

    def test_protocol_duty_cycle_sustainable(self):
        assert run_table2().sustainable

    def test_formatting(self):
        assert "sustainable" in format_table2(run_table2())


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self, medium):
        return run_fig12(medium)

    def test_snr_ordering(self, result):
        for rate in (93.75, 375.0, 3000.0):
            assert result.snr("tag8", rate) > result.snr("tag4", rate)
            assert result.snr("tag4", rate) > result.snr("tag11", rate)

    def test_snr_monotone_decreasing_in_rate(self, result):
        for tag in ("tag8", "tag4", "tag11"):
            snrs = [result.snr(tag, r) for r in (93.75, 187.5, 375.0, 750.0, 1500.0, 3000.0)]
            assert snrs == sorted(snrs, reverse=True)

    def test_paper_anchors(self, result):
        assert result.snr("tag8", 3000.0) > 11.7
        assert result.snr("tag11", 750.0) == pytest.approx(18.1, abs=1.0)

    def test_loss_below_5_per_1000(self, result):
        for tag in ("tag8", "tag4", "tag11"):
            for rate in (93.75, 375.0, 3000.0):
                assert result.loss(tag, rate) <= 5.0

    def test_loss_increases_with_rate(self, result):
        for tag in ("tag8", "tag4", "tag11"):
            assert result.loss(tag, 3000.0) > result.loss(tag, 93.75)

    def test_formatting(self, result):
        assert "SNR" in format_fig12(result)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self, medium):
        return run_fig13(medium)

    def test_loss_cliff_at_1000_and_2000(self, result):
        for tag in ("tag8", "tag4", "tag11"):
            assert result.loss(tag, 250.0) < 5.0
            assert result.loss(tag, 500.0) < 30.0
            assert result.loss(tag, 1000.0) > 200.0
            assert result.loss(tag, 2000.0) > 800.0

    def test_all_sync_offsets_under_5ms(self, result):
        # Paper: "time offsets less than 5.0 ms".
        for s in result.sync_offsets:
            assert s.max_abs_ms < 5.0

    def test_reference_tag_near_zero(self, result):
        ref = next(s for s in result.sync_offsets if s.tag == "tag6")
        assert abs(ref.mean_ms) < 0.5

    def test_formatting(self, result):
        assert "sync offsets" in format_fig13(result)


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig14(seed=1)

    def test_stage2_99th_percentile_near_paper(self, result):
        # Paper: 99% of stage-2 delays under 281.9 ms.
        assert result.percentile_stage2_s(99) * 1e3 == pytest.approx(281.9, abs=15.0)

    def test_mean_software_delay(self, result):
        assert result.mean_software_delay_s() * 1e3 == pytest.approx(58.9, abs=3.0)

    def test_software_under_30_percent_of_packet(self, result):
        assert result.software_delay_fraction_of_ul() < 0.30

    def test_stage1_is_beacon_airtime(self, result):
        for s in result.samples[:10]:
            assert 0.08 <= s.stage1_s <= 0.12

    def test_formatting(self, result):
        assert "99th" in format_fig14(result)


class TestFig15:
    def test_convergence_grows_with_utilization(self, medium):
        lo = measure_convergence(pattern("c1"), n_trials=5, medium=medium, seed=0)
        hi = measure_convergence(pattern("c4"), n_trials=5, medium=medium, seed=0)
        assert hi.median > lo.median

    def test_fixed_utilization_patterns_comparable(self, medium):
        # Fig. 15(b): at fixed U=0.75 the spread across tag counts is
        # small compared to the utilisation effect.
        meds = [
            measure_convergence(pattern(n), n_trials=5, medium=medium, seed=1).median
            for n in ("c2", "c9")
        ]
        assert max(meds) < 10 * max(min(meds), 1)


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self, medium):
        return run_fig16(n_slots=4000, seed=2, medium=medium)

    def test_non_empty_near_bound(self, result):
        # Paper: 81.2% average against the 0.84375 bound.
        assert 0.74 <= result.mean_non_empty <= result.utilization_bound + 0.01

    def test_collision_ratio_small(self, result):
        # Paper: 0.056 average.
        assert result.mean_collision < 0.12

    def test_ratio_fluctuates_but_recovers(self, result):
        series = result.stats.non_empty_ratio
        # Not a flat line (disruptions) yet mostly near the bound.
        assert series.std() > 0.0
        frac_near = np.mean(series > result.utilization_bound - 0.25)
        assert frac_near > 0.8

    def test_formatting(self, result):
        assert "non-empty" in format_fig16(result)


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig17()

    def test_three_tags(self, result):
        assert len(result.curves) == 3

    def test_clear_correlation(self, result):
        # Paper: "a clear correlation between voltage and displacement".
        for c in result.curves:
            assert c.correlation() > 0.99

    def test_distinct_sensitivities(self, result):
        slopes = [
            (c.voltage_v[-1] - c.voltage_v[0]) / 20.0 for c in result.curves
        ]
        assert len({round(s, 4) for s in slopes}) == 3

    def test_voltages_within_rail(self, result):
        for c in result.curves:
            assert np.all(c.voltage_v >= 0.0)
            assert np.all(c.voltage_v <= 1.8)

    def test_formatting(self, result):
        assert "corr" in format_fig17(result)


class TestFig19Inputs:
    def test_charge_times_span_paper_range(self, medium):
        times = deployment_charge_times(medium)
        assert min(times.values()) == pytest.approx(4.5, abs=0.1)
        assert max(times.values()) == pytest.approx(56.2, rel=0.03)
        assert min(times, key=times.get) == "tag8"


class TestFig14Waveform:
    """Fig. 14(a): the raw ping-pong capture."""

    @pytest.fixture(scope="class")
    def capture(self):
        from repro.experiments.fig14_pingpong import synthesize_pingpong_waveform

        return synthesize_pingpong_waveform(seed=1)

    def test_dl_burst_dominates_the_opening(self, capture):
        t, w = capture

        def rms(a, b):
            m = (t >= a) & (t < b)
            return float(np.sqrt(np.mean(w[m] ** 2)))

        assert rms(0.0, 0.09) > 2 * rms(0.115, 0.13)

    def test_total_duration_matches_figure_window(self, capture):
        t, _ = capture
        # Paper's Fig. 14(a) spans ~0-400 ms: beacon + 20 ms + UL frame.
        assert 0.25 < t[-1] < 0.45

    def test_ul_packet_decodable_from_the_rx_window(self, capture):
        # The reader software gates its receive processing to the slot's
        # UL window (it knows when its own beacon ended): decode from
        # just after beacon + turnaround.
        from repro.phy.packets import UplinkPacket
        from repro.phy.reader_dsp import ReaderReceiveChain

        t, w = capture
        window = w[t >= 0.118]
        packets = ReaderReceiveChain().decode(window, 375.0).packets
        assert UplinkPacket(tid=3, payload=1234) in packets
