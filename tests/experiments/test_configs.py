"""Tests for the Table 3 / Table 1 experiment configurations."""

from fractions import Fraction

import pytest

from repro.core.slot_schedule import assign_offsets, slot_utilization
from repro.experiments.configs import (
    FIXED_TAGS_SWEEP,
    FIXED_UTILIZATION_SWEEP,
    TABLE1_OFFSETS,
    TABLE1_PERIODS,
    TABLE3_PATTERNS,
    pattern,
)


class TestTable3:
    def test_nine_patterns(self):
        assert len(TABLE3_PATTERNS) == 9

    @pytest.mark.parametrize(
        "name,util",
        [
            ("c1", Fraction(3, 8)),
            ("c2", Fraction(3, 4)),
            ("c3", Fraction(27, 32)),
            ("c4", Fraction(15, 16)),
            ("c5", Fraction(1)),
            ("c6", Fraction(3, 4)),
            ("c7", Fraction(3, 4)),
            ("c8", Fraction(3, 4)),
            ("c9", Fraction(3, 4)),
        ],
    )
    def test_utilizations_match_paper(self, name, util):
        assert pattern(name).utilization == util

    @pytest.mark.parametrize(
        "name,n",
        [("c1", 12), ("c2", 12), ("c3", 12), ("c4", 12), ("c5", 12),
         ("c6", 11), ("c7", 10), ("c8", 8), ("c9", 6)],
    )
    def test_tag_counts_match_paper(self, name, n):
        p = pattern(name)
        assert p.n_tags == n
        assert len(p.tag_names()) == n
        assert len(p.tag_periods()) == n

    def test_fixed_tag_sweep_utilization_monotone(self):
        utils = [float(pattern(n).utilization) for n in FIXED_TAGS_SWEEP]
        assert utils == sorted(utils)

    def test_fixed_utilization_sweep_constant(self):
        assert {pattern(n).utilization for n in FIXED_UTILIZATION_SWEEP} == {
            Fraction(3, 4)
        }

    def test_exclusions_match_footnotes(self):
        assert pattern("c6").excluded_tags == (7,)
        assert pattern("c7").excluded_tags == (4, 7)
        assert pattern("c8").excluded_tags == (1, 4, 7, 9)
        assert pattern("c9").excluded_tags == (1, 3, 4, 7, 9, 11)

    def test_every_pattern_schedulable(self):
        # All nine have utilisation <= 1 and must admit a conflict-free
        # static assignment.
        for name in TABLE3_PATTERNS:
            assign_offsets(pattern(name).tag_periods())

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError):
            pattern("c99")


class TestTable1:
    def test_saturating_utilization(self):
        assert slot_utilization(TABLE1_PERIODS.values()) == 1

    def test_paper_offsets_are_a_perfect_schedule(self):
        result = assign_offsets(TABLE1_PERIODS, preassigned=TABLE1_OFFSETS)
        assert len(result) == 4
