"""Tests for the Fig. 8 beacon-shift reconstruction."""

import pytest

from repro.core.slot_schedule import Assignment, schedule_table
from repro.experiments.fig8_beacon_shift import (
    FIG8_ASSIGNMENTS,
    FIG8_VICTIM,
    format_fig8,
    shift_outcomes,
    shift_risk,
)


class TestPaperPanels:
    def test_slots_2_and_6_free(self):
        table = schedule_table(FIG8_ASSIGNMENTS, 8)
        free = [i for i, slot in enumerate(table) if not slot]
        assert free == [2, 6]

    def test_c_originally_in_slot_1(self):
        assert FIG8_ASSIGNMENTS["C"].transmits_in(1)

    def test_first_miss_is_harmless(self):
        outcomes = shift_outcomes(FIG8_ASSIGNMENTS, FIG8_VICTIM)
        assert outcomes[1].effective_offset == 2
        assert outcomes[1].harmless

    def test_second_miss_collides_with_b(self):
        outcomes = shift_outcomes(FIG8_ASSIGNMENTS, FIG8_VICTIM)
        assert outcomes[2].effective_offset == 3
        assert outcomes[2].collides_with == ("B",)

    def test_zero_misses_is_the_original(self):
        outcomes = shift_outcomes(FIG8_ASSIGNMENTS, FIG8_VICTIM)
        assert outcomes[0].effective_offset == 1
        assert outcomes[0].harmless

    def test_rendered_panels(self):
        text = format_fig8()
        assert "Fig. 8(b)" in text and "Fig. 8(c)" in text
        assert "collision with B" in text


class TestShiftAnalysis:
    def test_risk_binary_on_first_shift(self):
        harmless, collides = shift_risk(FIG8_ASSIGNMENTS, FIG8_VICTIM)
        assert (harmless, collides) == (1.0, 0.0)

    def test_risk_collision_case(self):
        tight = {
            "A": Assignment("A", 4, 0),
            "B": Assignment("B", 4, 1),  # directly after A: any shift hits
            "C": Assignment("C", 4, 2),
        }
        harmless, collides = shift_risk(tight, "A")
        assert collides == 1.0

    def test_unknown_victim_raises(self):
        with pytest.raises(KeyError):
            shift_outcomes(FIG8_ASSIGNMENTS, "Z")

    def test_shift_wraps_modulo_period(self):
        outcomes = shift_outcomes(FIG8_ASSIGNMENTS, "A", max_missed=4)
        assert outcomes[4].effective_offset == 0  # period 4 wraps
