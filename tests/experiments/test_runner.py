"""Tests for the machine-readable results runner."""

import json
import os

import pytest

from repro.experiments.runner import collect_results, main


class TestCollectResults:
    @pytest.fixture(scope="class")
    def results(self, medium):
        return collect_results(medium, quick=True)

    def test_json_serialisable(self, results):
        text = json.dumps(results)
        assert json.loads(text) == json.loads(text)

    def test_contains_every_experiment(self, results):
        for key in (
            "table2_power_uw",
            "fig11",
            "fig12_snr_db",
            "fig13_loss_per_1k",
            "fig14",
            "fig15_median_slots",
            "fig16",
            "fig17_correlations",
            "fig19",
            "figS",
        ):
            assert key in results, key

    def test_paper_anchor_values_present(self, results):
        assert results["table2_power_uw"]["TX"] == pytest.approx(51.0)
        assert results["fig11"]["all_activate"] is True
        assert results["fig11"]["amplified_16x_v"]["tag11"] == pytest.approx(
            2.70, abs=0.05
        )
        assert results["fig16"]["bound"] == pytest.approx(0.84375)

    def test_fig15_sweep_monotone(self, results):
        meds = results["fig15_median_slots"]
        assert meds["c5"] > meds["c1"]

    def test_main_writes_file(self, tmp_path, medium, monkeypatch):
        # main() builds its own medium; patch collect_results to reuse
        # the session fixture and keep the test fast.
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "collect_results",
            lambda **kwargs: collect_results(medium, quick=True),
        )
        target = tmp_path / "out.json"
        assert main([str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["table2_sustainable"] is True


class TestParallelExecution:
    def test_parallel_matches_serial_byte_for_byte(self, medium):
        serial = collect_results(medium, seed=7, quick=True, jobs=1)
        parallel = collect_results(medium, seed=7, quick=True, jobs=3)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_key_order_is_canonical(self, medium):
        serial = collect_results(medium, seed=1, quick=True, jobs=1)
        parallel = collect_results(medium, seed=1, quick=True, jobs=2)
        assert list(serial.keys()) == list(parallel.keys())

    def test_perf_section_opt_in(self, medium):
        plain = collect_results(medium, quick=True)
        assert "perf" not in plain
        with_perf = collect_results(medium, quick=True, perf=True)
        perf = with_perf["perf"]
        assert set(perf["experiment_wall_s"]) == {
            "table2",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig19",
            "figS",
        }
        assert all(t >= 0 for t in perf["experiment_wall_s"].values())
        json.dumps(with_perf)  # still serialisable with the perf section

    def test_unpicklable_medium_falls_back_to_serial(self, medium):
        class Unpicklable(type(medium)):
            def __reduce__(self):
                raise TypeError("not today")

        results = collect_results(Unpicklable(), seed=0, quick=True, jobs=2)
        assert results["table2_sustainable"] is True


# -- telemetry differential --------------------------------------------------
#
# The merged telemetry section must be byte-identical however the jobs
# were executed (serial, pool, resumed) — the cross-process half of the
# telemetry determinism contract (tests/telemetry covers the algebra).


def _net_job(tag, periods, n_slots, seed_offset):
    def job(medium, seed, quick):
        from repro.core.network import NetworkConfig, SlottedNetwork

        net = SlottedNetwork(
            periods,
            config=NetworkConfig(ideal_channel=True, seed=seed + seed_offset),
        )
        net.run(n_slots)
        return {tag: {"slots": n_slots}}

    job.__name__ = f"_job_{tag}"
    return job


@pytest.fixture()
def telemetry_jobs(monkeypatch):
    import repro.experiments.runner as runner_mod

    jobs = [
        ("t1", _net_job("t1", {"tag1": 4, "tag2": 8}, 120, 1)),
        ("t2", _net_job("t2", {"tag1": 4, "tag3": 8}, 150, 2)),
        ("t3", _net_job("t3", {"tag2": 8, "tag4": 16}, 90, 3)),
        ("t4", _net_job("t4", {"tag1": 4}, 60, 4)),
    ]
    monkeypatch.setattr(runner_mod, "EXPERIMENT_JOBS", jobs)
    monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", dict(jobs))
    return dict(jobs)


class TestTelemetryDifferential:
    def test_jobs4_matches_serial_byte_for_byte(self, telemetry_jobs, medium):
        serial = collect_results(
            medium, seed=7, quick=True, jobs=1, telemetry=True
        )
        parallel = collect_results(
            medium, seed=7, quick=True, jobs=4, telemetry=True
        )
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )
        assert (
            serial["telemetry"]["signature"]
            == parallel["telemetry"]["signature"]
        )

    def test_telemetry_section_opt_in(self, telemetry_jobs, medium):
        assert "telemetry" not in collect_results(medium, quick=True)

    def test_merged_totals_cover_every_job(self, telemetry_jobs, medium):
        from repro.telemetry import MetricsSnapshot

        doc = collect_results(medium, seed=0, quick=True, telemetry=True)
        snap = MetricsSnapshot.from_jsonable(doc["telemetry"]["snapshot"])
        assert snap.total("mac.slots") == 120 + 150 + 90 + 60
        assert doc["telemetry"]["signature"] == snap.signature()

    def test_report_identical_serial_vs_parallel(self, telemetry_jobs, medium):
        from repro.telemetry import render_results_report

        serial = collect_results(
            medium, seed=7, quick=True, jobs=1, telemetry=True
        )
        parallel = collect_results(
            medium, seed=7, quick=True, jobs=4, telemetry=True
        )
        assert render_results_report(serial) == render_results_report(parallel)

    def test_interrupted_telemetry_run_resumes_byte_identical(
        self, telemetry_jobs, tmp_path, monkeypatch, medium
    ):
        import repro.experiments.runner as runner_mod

        ckpt = str(tmp_path / "run.ckpt")
        uninterrupted = collect_results(
            medium, seed=7, quick=True, telemetry=True
        )

        patched = dict(telemetry_jobs)

        def dying_t3(m, seed, quick):
            raise KeyboardInterrupt

        patched["t3"] = dying_t3
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        with pytest.raises(KeyboardInterrupt):
            collect_results(
                medium, seed=7, quick=True, checkpoint=ckpt, telemetry=True
            )
        assert os.path.exists(ckpt)

        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", dict(telemetry_jobs))
        resumed = collect_results(
            medium,
            seed=7,
            quick=True,
            checkpoint=ckpt,
            resume=True,
            telemetry=True,
        )
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            uninterrupted, sort_keys=True
        )

    def test_resume_ignores_checkpoint_without_telemetry(
        self, telemetry_jobs, tmp_path, medium
    ):
        import repro.experiments.runner as runner_mod

        ckpt = str(tmp_path / "run.ckpt")
        # A telemetry-off checkpoint has fragments but no snapshots; a
        # telemetry-on resume must re-run those jobs, not emit a
        # partial telemetry section.
        runner_mod._write_checkpoint(
            ckpt, 7, True, {"t1": {"t1": {"slots": 120}}}, {"t1": 0.0}
        )
        resumed = collect_results(
            medium,
            seed=7,
            quick=True,
            checkpoint=ckpt,
            resume=True,
            telemetry=True,
        )
        fresh = collect_results(medium, seed=7, quick=True, telemetry=True)
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            fresh, sort_keys=True
        )


# -- robustness harness ------------------------------------------------------
#
# The crash/retry/resume machinery is independent of which experiments
# run, so these tests swap in a tiny synthetic job table (fast, and —
# via the fork start method — visible inside pool workers too).


def _tiny_job(tag):
    def job(medium, seed, quick):
        return {tag: {"seed": seed, "quick": quick}}

    job.__name__ = f"_job_{tag}"
    return job


@pytest.fixture()
def tiny_jobs(monkeypatch):
    import repro.experiments.runner as runner_mod

    jobs = [(name, _tiny_job(name)) for name in ("j1", "j2", "j3", "j4")]
    monkeypatch.setattr(runner_mod, "EXPERIMENT_JOBS", jobs)
    monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", dict(jobs))
    return dict(jobs)


class TestRobustRunner:
    def test_interrupted_run_resumes_byte_identical(
        self, tiny_jobs, tmp_path, monkeypatch, medium
    ):
        import repro.experiments.runner as runner_mod

        ckpt = str(tmp_path / "run.ckpt")
        uninterrupted = collect_results(medium, seed=7, quick=True)

        calls = {"n": 0}
        patched = dict(tiny_jobs)

        def dying_j3(m, seed, quick):
            raise KeyboardInterrupt

        patched["j3"] = dying_j3
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        with pytest.raises(KeyboardInterrupt):
            collect_results(medium, seed=7, quick=True, checkpoint=ckpt)
        assert os.path.exists(ckpt)  # the two finished fragments survive

        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", dict(tiny_jobs))
        resumed = collect_results(
            medium, seed=7, quick=True, checkpoint=ckpt, resume=True
        )
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            uninterrupted, sort_keys=True
        )
        assert not os.path.exists(ckpt)  # consumed on success

    def test_resume_runs_only_missing_jobs(
        self, tiny_jobs, tmp_path, monkeypatch, medium
    ):
        import repro.experiments.runner as runner_mod

        ckpt = str(tmp_path / "run.ckpt")
        ran = []
        patched = {}
        for name, job in tiny_jobs.items():
            def tracking(m, seed, quick, _name=name, _job=job):
                ran.append(_name)
                return _job(m, seed, quick)

            patched[name] = tracking
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        runner_mod._write_checkpoint(
            ckpt, 7, True,
            {"j1": {"j1": {"seed": 7, "quick": True}},
             "j2": {"j2": {"seed": 7, "quick": True}}},
            {"j1": 0.0, "j2": 0.0},
        )
        collect_results(medium, seed=7, quick=True, checkpoint=ckpt, resume=True)
        assert sorted(ran) == ["j3", "j4"]

    def test_checkpoint_seed_mismatch_refused(self, tiny_jobs, tmp_path, medium):
        from repro.experiments.runner import ResultsError, _write_checkpoint

        ckpt = str(tmp_path / "run.ckpt")
        _write_checkpoint(ckpt, 99, True, {}, {})
        with pytest.raises(ResultsError, match="seed"):
            collect_results(medium, seed=7, quick=True, checkpoint=ckpt, resume=True)

    def test_resume_without_checkpoint_path_refused(self, tiny_jobs, medium):
        from repro.experiments.runner import ResultsError

        with pytest.raises(ResultsError, match="checkpoint"):
            collect_results(medium, seed=7, quick=True, resume=True)

    def test_broken_pool_falls_back_to_serial(
        self, tiny_jobs, monkeypatch, medium
    ):
        import repro.experiments.runner as runner_mod

        parent = os.getpid()
        patched = dict(tiny_jobs)
        real_j2 = tiny_jobs["j2"]

        def crashing_j2(m, seed, quick):
            if os.getpid() != parent:
                os._exit(1)  # hard worker death -> BrokenProcessPool
            return real_j2(m, seed, quick)

        patched["j2"] = crashing_j2
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        results = collect_results(medium, seed=7, quick=True, jobs=2)
        serial = collect_results(medium, seed=7, quick=True, jobs=1)
        assert json.dumps(results, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_flaky_job_retried_within_budget(self, tiny_jobs, monkeypatch, medium):
        import repro.experiments.runner as runner_mod

        attempts = {"n": 0}
        patched = dict(tiny_jobs)
        real_j1 = tiny_jobs["j1"]

        def flaky_j1(m, seed, quick):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise RuntimeError("transient")
            return real_j1(m, seed, quick)

        patched["j1"] = flaky_j1
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        results = collect_results(medium, seed=7, quick=True, max_retries=2)
        assert attempts["n"] == 3
        assert results["j1"] == {"seed": 7, "quick": True}

    def test_retry_budget_exhaustion_raises(self, tiny_jobs, monkeypatch, medium):
        import repro.experiments.runner as runner_mod

        from repro.experiments.runner import ResultsError

        patched = dict(tiny_jobs)

        def broken_j4(m, seed, quick):
            raise RuntimeError("permanent")

        patched["j4"] = broken_j4
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        with pytest.raises(ResultsError, match="j4.*2 attempts"):
            collect_results(medium, seed=7, quick=True, max_retries=1)

    def test_serial_timeout_bounds_a_hung_job(self, tiny_jobs, monkeypatch, medium):
        import time as time_mod

        import repro.experiments.runner as runner_mod
        from repro.experiments.runner import ResultsError

        patched = dict(tiny_jobs)

        def hung_j2(m, seed, quick):
            time_mod.sleep(30)
            return {}

        patched["j2"] = hung_j2
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        start = time_mod.monotonic()
        with pytest.raises(ResultsError, match="timed out"):
            collect_results(medium, seed=7, quick=True, timeout=0.3, max_retries=0)
        assert time_mod.monotonic() - start < 10

    def test_pool_timeout_bounds_a_hung_job(self, tiny_jobs, monkeypatch, medium):
        import time as time_mod

        import repro.experiments.runner as runner_mod
        from repro.experiments.runner import ResultsError

        patched = dict(tiny_jobs)

        def hung_j3(m, seed, quick):
            time_mod.sleep(3)
            return {}

        patched["j3"] = hung_j3
        monkeypatch.setattr(runner_mod, "_JOBS_BY_NAME", patched)
        with pytest.raises(ResultsError, match="timed out"):
            collect_results(
                medium, seed=7, quick=True, jobs=2, timeout=0.5, max_retries=0
            )

    def test_atomic_checkpoint_never_leaves_torn_files(self, tiny_jobs, tmp_path):
        from repro.experiments.runner import _load_checkpoint, _write_checkpoint

        ckpt = str(tmp_path / "run.ckpt")
        for i in range(5):
            _write_checkpoint(ckpt, 7, True, {"j1": {"v": i}}, {"j1": 0.0})
            fragments, _, _ = _load_checkpoint(ckpt, 7, True)
            assert fragments == {"j1": {"v": i}}
        assert not os.path.exists(ckpt + ".tmp")


class TestProfiledExecution:
    def test_profiled_execute_dumps_pstats(self, tmp_path):
        import pstats

        from repro.experiments.runner import _execute_job, _profiled_execute

        plain = _execute_job("table2", None, 0, True, False)
        profiled = _profiled_execute(
            "table2", None, 0, True, False, str(tmp_path)
        )
        assert profiled == plain  # profiling must not perturb the result
        dump = tmp_path / "table2.pstats"
        assert dump.exists()
        assert len(pstats.Stats(str(dump)).stats) > 0

    def test_no_profile_dir_writes_nothing(self, tmp_path):
        from repro.experiments.runner import _profiled_execute

        _profiled_execute("table2", None, 0, True, False, None)
        assert list(tmp_path.iterdir()) == []

    def test_collect_results_threads_profile_dir(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        seen = []
        real = runner_mod._profiled_execute

        def spy(name, medium, seed, quick, with_telemetry, profile_dir):
            seen.append(profile_dir)
            return real(name, medium, seed, quick, with_telemetry, profile_dir)

        monkeypatch.setattr(runner_mod, "_profiled_execute", spy)
        collect_results(seed=0, quick=True, jobs=1,
                        profile_dir=str(tmp_path))
        assert seen and all(p == str(tmp_path) for p in seen)
        assert any(f.suffix == ".pstats" for f in tmp_path.iterdir())
