"""Tests for the machine-readable results runner."""

import json

import pytest

from repro.experiments.runner import collect_results, main


class TestCollectResults:
    @pytest.fixture(scope="class")
    def results(self, medium):
        return collect_results(medium, quick=True)

    def test_json_serialisable(self, results):
        text = json.dumps(results)
        assert json.loads(text) == json.loads(text)

    def test_contains_every_experiment(self, results):
        for key in (
            "table2_power_uw",
            "fig11",
            "fig12_snr_db",
            "fig13_loss_per_1k",
            "fig14",
            "fig15_median_slots",
            "fig16",
            "fig17_correlations",
            "fig19",
        ):
            assert key in results, key

    def test_paper_anchor_values_present(self, results):
        assert results["table2_power_uw"]["TX"] == pytest.approx(51.0)
        assert results["fig11"]["all_activate"] is True
        assert results["fig11"]["amplified_16x_v"]["tag11"] == pytest.approx(
            2.70, abs=0.05
        )
        assert results["fig16"]["bound"] == pytest.approx(0.84375)

    def test_fig15_sweep_monotone(self, results):
        meds = results["fig15_median_slots"]
        assert meds["c5"] > meds["c1"]

    def test_main_writes_file(self, tmp_path, medium, monkeypatch):
        # main() builds its own medium; patch collect_results to reuse
        # the session fixture and keep the test fast.
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "collect_results",
            lambda: collect_results(medium, quick=True),
        )
        target = tmp_path / "out.json"
        assert main([str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["table2_sustainable"] is True
