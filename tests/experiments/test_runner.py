"""Tests for the machine-readable results runner."""

import json

import pytest

from repro.experiments.runner import collect_results, main


class TestCollectResults:
    @pytest.fixture(scope="class")
    def results(self, medium):
        return collect_results(medium, quick=True)

    def test_json_serialisable(self, results):
        text = json.dumps(results)
        assert json.loads(text) == json.loads(text)

    def test_contains_every_experiment(self, results):
        for key in (
            "table2_power_uw",
            "fig11",
            "fig12_snr_db",
            "fig13_loss_per_1k",
            "fig14",
            "fig15_median_slots",
            "fig16",
            "fig17_correlations",
            "fig19",
        ):
            assert key in results, key

    def test_paper_anchor_values_present(self, results):
        assert results["table2_power_uw"]["TX"] == pytest.approx(51.0)
        assert results["fig11"]["all_activate"] is True
        assert results["fig11"]["amplified_16x_v"]["tag11"] == pytest.approx(
            2.70, abs=0.05
        )
        assert results["fig16"]["bound"] == pytest.approx(0.84375)

    def test_fig15_sweep_monotone(self, results):
        meds = results["fig15_median_slots"]
        assert meds["c5"] > meds["c1"]

    def test_main_writes_file(self, tmp_path, medium, monkeypatch):
        # main() builds its own medium; patch collect_results to reuse
        # the session fixture and keep the test fast.
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "collect_results",
            lambda **kwargs: collect_results(medium, quick=True),
        )
        target = tmp_path / "out.json"
        assert main([str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["table2_sustainable"] is True


class TestParallelExecution:
    def test_parallel_matches_serial_byte_for_byte(self, medium):
        serial = collect_results(medium, seed=7, quick=True, jobs=1)
        parallel = collect_results(medium, seed=7, quick=True, jobs=3)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_key_order_is_canonical(self, medium):
        serial = collect_results(medium, seed=1, quick=True, jobs=1)
        parallel = collect_results(medium, seed=1, quick=True, jobs=2)
        assert list(serial.keys()) == list(parallel.keys())

    def test_perf_section_opt_in(self, medium):
        plain = collect_results(medium, quick=True)
        assert "perf" not in plain
        with_perf = collect_results(medium, quick=True, perf=True)
        perf = with_perf["perf"]
        assert set(perf["experiment_wall_s"]) == {
            "table2",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig19",
        }
        assert all(t >= 0 for t in perf["experiment_wall_s"].values())
        json.dumps(with_perf)  # still serialisable with the perf section

    def test_unpicklable_medium_falls_back_to_serial(self, medium):
        class Unpicklable(type(medium)):
            def __reduce__(self):
                raise TypeError("not today")

        results = collect_results(Unpicklable(), seed=0, quick=True, jobs=2)
        assert results["table2_sustainable"] is True
