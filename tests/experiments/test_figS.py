"""Tests for the Fig. S graceful-degradation experiment — including the
PR-3 acceptance criteria: with the default policies attached, recovery
after the 8-slot beacon-loss burst AND after the supercap-brownout
power cycle is strictly better than the no-policy baseline."""

import json

import pytest

from repro.experiments.figS_degradation import (
    DEFAULT_SEED,
    degradation_levels,
    format_figS,
    run_figS,
    summarize_figS,
)


@pytest.fixture(scope="module")
def trials():
    return run_figS()


@pytest.fixture(scope="module")
def by_level(trials):
    return {t.level: t for t in trials}


class TestLadderStructure:
    def test_levels_in_declared_order(self, trials):
        assert [t.level for t in trials] == [
            "none",
            "burst2",
            "burst8",
            "brownout",
            "burst8+brownout",
        ]
        assert [name for name, _ in degradation_levels()] == [t.level for t in trials]

    def test_fault_counts_grow_with_intensity(self, by_level):
        assert by_level["none"].n_faults == 0
        assert by_level["burst8"].n_faults == 1
        assert by_level["brownout"].n_faults == 6  # one per tag
        assert by_level["burst8+brownout"].n_faults == 7

    def test_brownout_level_power_cycles_every_tag(self):
        levels = dict(degradation_levels())
        targets = {e.target for e in levels["brownout"]}
        assert targets == {"tag1", "tag2", "tag3", "tag4", "tag5", "tag6"}
        assert all(e.kind == "brownout" for e in levels["brownout"])

    def test_no_fault_level_is_policy_transparent(self, by_level):
        # With nothing to recover from, supervision must not change the
        # converged outcome.
        t = by_level["none"]
        assert t.baseline_reconverge == t.policy_reconverge
        assert t.baseline_collisions == t.policy_collisions


class TestAcceptance:
    def test_burst8_strictly_better_with_policies(self, by_level):
        t = by_level["burst8"]
        assert t.baseline_reconverge is not None
        assert t.policy_reconverge is not None
        assert t.policy_reconverge < t.baseline_reconverge
        assert t.improved is True

    def test_brownout_strictly_better_with_policies(self, by_level):
        t = by_level["brownout"]
        assert t.baseline_reconverge is not None
        assert t.policy_reconverge is not None
        assert t.policy_reconverge < t.baseline_reconverge
        assert t.improved is True

    def test_every_level_reconverges_under_policies(self, trials):
        assert all(t.policy_reconverge is not None for t in trials)

    def test_no_invariant_violations_anywhere(self, trials):
        assert all(t.invariant_violations == 0 for t in trials)

    def test_policies_act_only_when_there_are_faults(self, by_level):
        assert by_level["none"].policy_actions == 0
        assert by_level["burst8"].policy_actions > 0
        assert by_level["brownout"].policy_actions > 0


class TestReporting:
    def test_format_mentions_verdicts(self, trials):
        text = format_figS(trials)
        assert "improved" in text
        assert "level" in text.splitlines()[0]
        assert len(text.splitlines()) == len(trials) + 1

    def test_summary_is_json_stable(self, trials):
        doc = summarize_figS(trials)
        assert json.loads(json.dumps(doc)) == doc
        assert doc["burst8"]["improved"] is True

    def test_deterministic_across_runs(self, trials):
        again = run_figS(seed=DEFAULT_SEED)
        assert summarize_figS(again) == summarize_figS(trials)
