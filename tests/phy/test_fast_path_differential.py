"""Differential suite: the template fast path against the reference
synthesis pipeline.

The fast path assembles each slot's decimated baseband from cached
filtered templates (linearity of mix/filter/decimate); the reference
path synthesises every tag at full rate and runs the actual receive
chain.  Both share the same RNG draws, so the certification here is
two-level:

* decode outcomes (slot logs and MAC records) are **byte-identical**
  across seeds, scenarios, supervision, and fault schedules;
* the raw basebands agree to ulp scale (float reassociation across the
  linear decomposition is the only difference).
"""

import math

import numpy as np
import pytest

from repro.core.network import NetworkConfig
from repro.core.waveform_network import (
    SLOT_EXTRA_SAMPLES,
    SLOT_LEAD_IN_S,
    SLOT_TAIL_S,
    WaveformNetwork,
)
from repro.faults import FaultEvent, FaultSchedule
from repro.phy import cache as phy_cache
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket
from repro.phy.reader_dsp import ReaderReceiveChain
from repro.resilience import NetworkSupervisor


@pytest.fixture(autouse=True)
def isolated_caches():
    phy_cache.clear_caches()
    yield
    phy_cache.clear_caches()


def _fault_schedule():
    """SNR penalties plus frame bit flips, all within a 40-slot run."""
    return FaultSchedule(
        [
            FaultEvent(slot=4, duration=6, kind="attenuation", target="tag5",
                       magnitude=12.0),
            FaultEvent(slot=10, duration=8, kind="bit_flip", target="tag8",
                       magnitude=3.0),
            FaultEvent(slot=18, duration=5, kind="noise_burst", target="*",
                       magnitude=6.0),
            FaultEvent(slot=26, duration=6, kind="bit_flip", target="tag9",
                       magnitude=1.0),
        ]
    )


def _run(scenario: str, seed: int, fast: bool):
    """Drive one golden scenario with the fast path forced on or off."""
    config = NetworkConfig(seed=seed)
    with phy_cache.fast_path(fast):
        if scenario == "dense":
            net = WaveformNetwork({"tag5": 4, "tag8": 4, "tag9": 8},
                                  config=config)
            net.run(40)
        elif scenario == "sparse":
            net = WaveformNetwork({"tag3": 8, "tag12": 16}, config=config)
            net.run(40)
        elif scenario == "supervised":
            net = WaveformNetwork({"tag5": 4, "tag8": 4, "tag9": 8},
                                  config=config)
            NetworkSupervisor(net, policies=()).run(40)
        elif scenario == "faulted":
            net = WaveformNetwork({"tag5": 4, "tag8": 4, "tag9": 8},
                                  config=config, faults=_fault_schedule())
            net.run(40)
        else:  # pragma: no cover - scenario typo guard
            raise AssertionError(scenario)
    return net


def _signature(net: WaveformNetwork):
    return (
        list(net.records),
        [
            (log.slot, tuple(log.transmitters), tuple(log.decoded_tids),
             log.n_clusters)
            for log in net.slot_logs
        ],
    )


class TestDecodeOutcomesByteIdentical:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    @pytest.mark.parametrize(
        "scenario", ["dense", "sparse", "supervised", "faulted"]
    )
    def test_fast_matches_reference(self, scenario, seed):
        fast = _run(scenario, seed, fast=True)
        ref = _run(scenario, seed, fast=False)
        assert _signature(fast) == _signature(ref)

    def test_fast_path_actually_exercised(self):
        from repro import perf

        perf.reset()
        _run("dense", 1, fast=True)
        counters = perf.report()["counters"]
        assert (
            counters.get("cache.template.hit", 0)
            + counters.get("cache.template.miss", 0)
            > 0
        )
        perf.reset()
        _run("dense", 1, fast=False)
        counters = perf.report()["counters"]
        assert "cache.template.hit" not in counters
        assert "cache.template.miss" not in counters


class TestRawBasebandUlpScale:
    def _plans(self):
        rate = 375.0
        p5 = UplinkPacket(tid=5, payload=1234).to_bits()
        p8 = UplinkPacket(tid=8, payload=77).to_bits()
        return rate, [
            (p5, 0.012, 0.0004, 1.25),
            (p8, 0.008, 0.0007, 4.9),
        ]

    def test_fast_baseband_matches_reference_to_ulp_scale(self):
        rate, plans = self._plans()
        uplink = BackscatterUplink()
        chain = ReaderReceiveChain()
        components = [
            uplink.tag_component(
                bits, rate, amplitude_v, phase_rad=phase, delay_s=delay_s,
                lead_in_s=SLOT_LEAD_IN_S, tail_s=SLOT_TAIL_S,
            )
            for bits, amplitude_v, delay_s, phase in plans
        ]
        capture = uplink.capture_clean(
            components, extra_samples=SLOT_EXTRA_SAMPLES
        )
        iq_ref, _ = chain.raw_baseband(capture, rate)

        net = WaveformNetwork({"tag5": 4})
        decimation = chain._decimation_for(rate)
        iq_fast = net._assemble_baseband_fast(
            plans, rate, 2.0 * rate, decimation
        )

        assert len(iq_fast) == len(iq_ref)
        scale = np.max(np.abs(iq_ref))
        worst = np.max(np.abs(iq_fast - iq_ref))
        # Reassociating sum-then-filter into filter-then-sum perturbs
        # each sample by an ulp, and the IIR recursion carries those
        # perturbations forward; measured worst case is ~1e4 eps of the
        # signal scale (2.3e-13 absolute), bounded here with headroom.
        assert worst <= 2**16 * np.finfo(float).eps * scale

    def test_template_passband_bit_identical_to_tag_component(self):
        rate = 375.0
        uplink = BackscatterUplink()
        fs = uplink.sample_rate_hz
        bits = UplinkPacket(tid=9, payload=321).to_bits()
        low = uplink.pzt.absorptive_coefficient / uplink.pzt.reflective_coefficient
        n_lead = int(round(SLOT_LEAD_IN_S * fs))
        n_tail = int(round(SLOT_TAIL_S * fs))
        template = phy_cache.tag_template(
            phy_cache.fm0_raw(bits), rate, fs, uplink.carrier_hz,
            low, n_lead, n_tail,
        )
        for amplitude_v, phase, delay_s in [
            (0.01, 0.0, 0.0),
            (0.007, 2.1, 0.0003),
            (0.02, -1.0, 0.0011),
        ]:
            direct = uplink.tag_component(
                bits, rate, amplitude_v, phase_rad=phase, delay_s=delay_s,
                lead_in_s=SLOT_LEAD_IN_S, tail_s=SLOT_TAIL_S,
            )
            replayed = template.passband(
                amplitude_v, phase, int(round(delay_s * fs))
            )
            np.testing.assert_array_equal(replayed, direct)

    def test_template_baseband_prefix_property(self):
        rate = 375.0
        uplink = BackscatterUplink()
        fs = uplink.sample_rate_hz
        bits = UplinkPacket(tid=3, payload=9).to_bits()
        low = uplink.pzt.absorptive_coefficient / uplink.pzt.reflective_coefficient
        template = phy_cache.tag_template(
            phy_cache.fm0_raw(bits), rate, fs, uplink.carrier_hz,
            low, int(round(SLOT_LEAD_IN_S * fs)), int(round(SLOT_TAIL_S * fs)),
        )
        decimation = ReaderReceiveChain()._decimation_for(rate)
        n_short = template.n_body + 500
        n_long = template.n_body + 40_000
        short_bc, short_bs = template.baseband(100, n_short, 750.0, decimation)
        short_bc = short_bc[: -(-n_short // decimation)].copy()
        long_bc, _ = template.baseband(100, n_long, 750.0, decimation)
        np.testing.assert_array_equal(short_bc, long_bc[: len(short_bc)])


class TestFastPathSwitch:
    def test_context_manager_and_override(self):
        assert phy_cache.fast_path_enabled()
        with phy_cache.fast_path(False):
            assert not phy_cache.fast_path_enabled()
            with phy_cache.fast_path(True):
                assert phy_cache.fast_path_enabled()
            assert not phy_cache.fast_path_enabled()
        assert phy_cache.fast_path_enabled()
        phy_cache.set_fast_path(False)
        try:
            assert not phy_cache.fast_path_enabled()
        finally:
            phy_cache.set_fast_path(None)

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(phy_cache.FAST_PATH_ENV, "0")
        assert not phy_cache.fast_path_enabled()
        monkeypatch.setenv(phy_cache.FAST_PATH_ENV, "off")
        assert not phy_cache.fast_path_enabled()
        monkeypatch.setenv(phy_cache.FAST_PATH_ENV, "1")
        assert phy_cache.fast_path_enabled()
        # An explicit override wins over the environment.
        monkeypatch.setenv(phy_cache.FAST_PATH_ENV, "0")
        with phy_cache.fast_path(True):
            assert phy_cache.fast_path_enabled()
