"""Parity suite: compiled kernels vs the numpy fallback, end to end.

The per-kernel exactness battery (``test_kernels.py``) pins each
compiled kernel byte-identical to its numpy reference; this suite pins
the *composition*: whole waveform-tier runs — slot logs and MAC
records — must be byte-identical with kernels on and off
(``REPRO_PHY_KERNELS=0``), across seeds, slot densities, fault
schedules, and all three modulations (FM0-OOK plus the chirp-OOK and
FSK matched-correlator chains of the adaptive PHY).  Any ulp of drift
anywhere in the receive chain eventually flips a marginal decode and
shows up here.
"""

import pytest

from repro.core.network import NetworkConfig
from repro.core.waveform_network import WaveformNetwork
from repro.faults import FaultEvent, FaultSchedule
from repro.phy import cache as phy_cache
from repro.phy import kernels
from repro.phy.modulation import LinkConfig

SEEDS = [1, 7, 23]
SCENARIOS = ["dense", "sparse", "faulted"]
MODULATIONS = ["fm0_ook", "cook", "fsk"]

RUN_SLOTS = 40


@pytest.fixture(autouse=True)
def isolated_caches():
    phy_cache.clear_caches()
    yield
    phy_cache.clear_caches()


def _fault_schedule():
    return FaultSchedule(
        [
            FaultEvent(slot=4, duration=6, kind="attenuation", target="tag5",
                       magnitude=12.0),
            FaultEvent(slot=10, duration=8, kind="bit_flip", target="tag8",
                       magnitude=3.0),
            FaultEvent(slot=18, duration=5, kind="noise_burst", target="*",
                       magnitude=6.0),
        ]
    )


def _uplink_plan(scenario: str, modulation: str):
    """Pin every tag of the scenario to the modulation under test
    (FM0 is the stock chain — no standing plan needed)."""
    if modulation == "fm0_ook":
        return None
    bitrate = 3000.0 if modulation == "cook" else 125.0
    tags = ("tag3", "tag12") if scenario == "sparse" else (
        "tag5", "tag8", "tag9"
    )
    return {tag: LinkConfig(modulation, bitrate) for tag in tags}


def _run(scenario: str, seed: int, modulation: str) -> WaveformNetwork:
    config = NetworkConfig(seed=seed)
    kwargs = {}
    plan = _uplink_plan(scenario, modulation)
    if plan is not None:
        kwargs["uplink_plan"] = plan
    if scenario == "dense":
        net = WaveformNetwork({"tag5": 4, "tag8": 4, "tag9": 8},
                              config=config, **kwargs)
    elif scenario == "sparse":
        net = WaveformNetwork({"tag3": 8, "tag12": 16}, config=config,
                              **kwargs)
    elif scenario == "faulted":
        net = WaveformNetwork({"tag5": 4, "tag8": 4, "tag9": 8},
                              config=config, faults=_fault_schedule(),
                              **kwargs)
    else:  # pragma: no cover - scenario typo guard
        raise AssertionError(scenario)
    net.run(RUN_SLOTS)
    return net


def _signature(net: WaveformNetwork):
    return (
        list(net.records),
        [
            (log.slot, tuple(log.transmitters), tuple(log.decoded_tids),
             log.n_clusters)
            for log in net.slot_logs
        ],
    )


class TestSlotLogsByteIdentical:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("modulation", MODULATIONS)
    def test_kernels_on_matches_off(self, modulation, scenario, seed):
        if kernels.backend() == "numpy":  # pragma: no cover
            pytest.skip("no compiled backend: both legs would be numpy")
        with kernels.use_kernels(True):
            on = _signature(_run(scenario, seed, modulation))
        phy_cache.clear_caches()
        with kernels.use_kernels(False):
            off = _signature(_run(scenario, seed, modulation))
        assert on == off

    def test_decodes_happen_at_all(self):
        """Parity on empty logs would be vacuous — pin that the dense
        FM0 scenario actually decodes packets under kernels."""
        net = _run("dense", 1, "fm0_ook")
        assert any(log.decoded_tids for log in net.slot_logs)

    def test_modulated_plans_actually_apply(self):
        for modulation in ("cook", "fsk"):
            net = _run("dense", 1, modulation)
            plan = net.uplink_plan
            assert all(
                cfg.modulation == modulation for cfg in plan.values()
            ), plan
            assert any(log.decoded_tids for log in net.slot_logs)


class TestReferencePathParity:
    """Kernels must also hold parity on the reference (template-less)
    synthesis path — the one REPRO_PHY_FAST=0 users run."""

    @pytest.mark.parametrize("seed", [1, 23])
    def test_reference_path_kernels_on_matches_off(self, seed):
        if kernels.backend() == "numpy":  # pragma: no cover
            pytest.skip("no compiled backend: both legs would be numpy")
        with phy_cache.fast_path(False):
            with kernels.use_kernels(True):
                on = _signature(_run("dense", seed, "fm0_ook"))
            phy_cache.clear_caches()
            with kernels.use_kernels(False):
                off = _signature(_run("dense", seed, "fm0_ook"))
        assert on == off
