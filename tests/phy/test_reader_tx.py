"""Tests for the reader transmit chain."""

import numpy as np
import pytest

from repro.hardware.firmware import PieEdgeDemodulator
from repro.phy.packets import DownlinkBeacon
from repro.phy.reader_tx import (
    JitteredPieTransmitter,
    PwmCarrierSynth,
    UsbCommandScheduler,
)


class TestPwmSynth:
    def test_resonator_suppresses_harmonics(self):
        synth = PwmCarrierSynth()
        # PWM alone has THD ~48% (odd harmonics 1/k); the resonance
        # must crush it to a few percent of the fundamental.
        assert synth.total_harmonic_distortion() < 0.05

    def test_fundamental_dominates_waveform_spectrum(self):
        synth = PwmCarrierSynth()
        wave = synth.waveform(0.02)
        spectrum = np.abs(np.fft.rfft(wave))
        freqs = np.fft.rfftfreq(len(wave), 1 / 500_000.0)
        peak = freqs[np.argmax(spectrum)]
        assert peak == pytest.approx(90_000.0, abs=200)

    def test_harmonics_at_odd_multiples(self):
        harmonics = PwmCarrierSynth().harmonic_amplitudes()
        freqs = [f for f, _ in harmonics]
        assert freqs[0] == 90_000.0
        assert freqs[1] == 270_000.0  # 3rd

    def test_invalid_duration_raises(self):
        with pytest.raises(ValueError):
            PwmCarrierSynth().waveform(0.0)


class TestUsbScheduler:
    def test_delays_within_paper_band(self, rng):
        # Sec. 6.3: "about 0.1-0.3 ms time offset to each PIE symbol".
        sched = UsbCommandScheduler()
        intended = list(np.arange(0.0, 0.1, 0.004))
        actual = sched.realize(intended, rng)
        delays = np.array(actual) - np.array(intended)
        lo, hi = sched.delay_bounds_s()
        assert np.all(delays >= lo - 1e-12)
        assert np.all(delays <= hi + 1e-12)

    def test_ordering_preserved(self, rng):
        sched = UsbCommandScheduler()
        intended = [0.0, 0.0001, 0.001, 0.0015]
        actual = sched.realize(intended, rng)
        assert actual == sorted(actual)

    def test_jitter_std_formula(self):
        sched = UsbCommandScheduler(service_interval_s=0.6e-3)
        assert sched.symbol_jitter_std_s() == pytest.approx(0.6e-3 / 6**0.5)

    def test_empirical_delay_distribution_uniform(self, rng):
        sched = UsbCommandScheduler()
        delays = []
        for _ in range(200):
            intended = [float(rng.uniform(0, 1))]
            actual = sched.realize(intended, rng)
            delays.append(actual[0] - intended[0])
        delays = np.array(delays)
        lo, hi = sched.delay_bounds_s()
        assert delays.mean() == pytest.approx((lo + hi) / 2, rel=0.15)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            UsbCommandScheduler(service_interval_s=0.0)


class TestEndToEndJitteredDownlink:
    def test_beacon_survives_usb_jitter_at_default_rate(self, rng):
        # At 250 bps the margin (2 ms) dwarfs the USB jitter: every
        # beacon must decode through the firmware demodulator.
        tx = JitteredPieTransmitter(raw_rate_bps=250.0)
        beacon = DownlinkBeacon(ack=True, empty=True)
        decoded = 0
        for _ in range(20):
            demod = PieEdgeDemodulator(raw_rate_bps=250.0, rng=rng)
            for t, level in tx.transmit(beacon.to_bits(), rng):
                demod.on_edge(t, level)
            decoded += demod.beacons == [beacon]
        assert decoded == 20

    def test_loss_grows_with_rate_under_same_jitter(self, rng):
        # The reader's contribution alone already separates slow from
        # fast rates (the tag-side terms make the full Fig. 13a cliff).
        beacon = DownlinkBeacon(ack=True)
        losses = {}
        for rate in (250.0, 4000.0):
            tx = JitteredPieTransmitter(raw_rate_bps=rate)
            lost = 0
            for _ in range(30):
                demod = PieEdgeDemodulator(raw_rate_bps=rate, rng=rng)
                for t, level in tx.transmit(beacon.to_bits(), rng):
                    demod.on_edge(t, level)
                lost += demod.beacons != [beacon]
            losses[rate] = lost
        assert losses[4000.0] > losses[250.0]

    def test_intended_edges_match_pie_structure(self):
        tx = JitteredPieTransmitter(raw_rate_bps=250.0)
        edges = tx.intended_edges([1, 0])
        # PIE "110" + "10": rises at 0 and 3 raw bits, falls at 2 and 4.
        times = [round(t * 250.0) for t, _ in edges]
        levels = [lvl for _, lvl in edges]
        assert times == [0, 2, 3, 4]
        assert levels == [1, 0, 1, 0]
