"""Tests for FM0 line coding."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.fm0 import (
    fm0_decode,
    fm0_encode,
    fm0_frame_duration_s,
    fm0_symbol_duration_s,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64)


class TestEncoding:
    def test_two_raw_bits_per_symbol(self):
        assert len(fm0_encode([1, 0, 1])) == 6

    def test_bit0_has_mid_symbol_transition(self):
        raw = fm0_encode([0])
        assert raw[0] != raw[1]

    def test_bit1_holds_level_mid_symbol(self):
        raw = fm0_encode([1])
        assert raw[0] == raw[1]

    def test_boundary_always_transitions(self):
        raw = fm0_encode([1, 1, 0, 0, 1, 0])
        for i in range(2, len(raw), 2):
            assert raw[i] != raw[i - 1], f"no transition at symbol boundary {i}"

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            fm0_encode([0, 2])

    def test_invalid_initial_level_raises(self):
        with pytest.raises(ValueError):
            fm0_encode([0], initial_level=5)


class TestDecoding:
    @given(bit_lists)
    def test_roundtrip(self, bits):
        result = fm0_decode(fm0_encode(bits))
        assert result.bits == list(bits)
        assert result.clean

    @given(bit_lists)
    def test_roundtrip_is_polarity_invariant(self, bits):
        # The reader's slicer has an unknown polarity; FM0 data decisions
        # depend only on half-pair equality, so inversion is harmless.
        raw = [1 - b for b in fm0_encode(bits)]
        result = fm0_decode(raw, initial_level=0)
        assert result.bits == list(bits)
        assert result.clean

    def test_violation_detected_on_missing_boundary_transition(self):
        raw = fm0_encode([1, 1])
        raw[2] = raw[1]  # break the boundary rule
        result = fm0_decode(raw)
        assert not result.clean

    def test_odd_length_raises(self):
        with pytest.raises(ValueError):
            fm0_decode([1, 0, 1])

    def test_invalid_raw_bit_raises(self):
        with pytest.raises(ValueError):
            fm0_decode([1, 2])


class TestTiming:
    def test_symbol_duration(self):
        assert fm0_symbol_duration_s(375.0) == pytest.approx(2 / 375)

    def test_ul_frame_duration_near_200ms(self):
        # 32-bit UL frame at 375 bps raw: ~171 ms, the paper's "~200 ms
        # UL packet" once the turnaround margin is included.
        assert fm0_frame_duration_s(32, 375.0) == pytest.approx(0.1707, abs=0.001)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            fm0_symbol_duration_s(0.0)
        with pytest.raises(ValueError):
            fm0_frame_duration_s(-1, 375.0)
