"""Tests for PIE coding and the downlink timing-error model."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.pie import (
    PieTimingModel,
    pie_decode,
    pie_duration_s,
    pie_encode,
    pie_packet_loss_probability,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40)


class TestCoding:
    def test_bit0_is_10(self):
        assert pie_encode([0]) == [1, 0]

    def test_bit1_is_110(self):
        assert pie_encode([1]) == [1, 1, 0]

    @given(bit_lists)
    def test_roundtrip(self, bits):
        assert pie_decode(pie_encode(bits)) == list(bits)

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            pie_encode([2])

    def test_truncated_symbol_raises(self):
        with pytest.raises(ValueError):
            pie_decode([1, 1])  # missing low terminator

    def test_overlong_pulse_raises(self):
        with pytest.raises(ValueError):
            pie_decode([1, 1, 1, 0])

    @given(bit_lists)
    def test_duration_formula(self, bits):
        raw = pie_encode(bits)
        assert pie_duration_s(bits, 250.0) == pytest.approx(len(raw) / 250.0)

    def test_dl_beacon_airtime_around_100ms(self):
        # 10-bit beacon at 250 bps raw: 20-30 raw bits = 80-120 ms.
        dur = pie_duration_s([1, 1, 1, 0, 1, 0, 1, 0, 1, 0], 250.0)
        assert 0.08 <= dur <= 0.12


class TestTimingModel:
    def test_error_grows_with_rate(self):
        m = PieTimingModel()
        probs = [m.symbol_error_probability(r) for r in (125, 250, 500, 1000, 2000)]
        assert probs == sorted(probs)

    def test_negligible_at_250bps(self):
        # The default DL rate must be nearly error-free (Sec. 6.3).
        assert PieTimingModel().symbol_error_probability(250.0) < 1e-4

    def test_severe_at_2000bps(self):
        assert PieTimingModel().symbol_error_probability(2000.0) > 0.2

    def test_quantization_is_tick_over_sqrt12(self):
        m = PieTimingModel()
        assert m.quantization_std_s() == pytest.approx((1 / 12000) / (12**0.5))

    def test_comparator_jitter_shrinks_with_snr(self):
        m = PieTimingModel()
        assert m.comparator_jitter_std_s(40.0) < m.comparator_jitter_std_s(10.0)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            PieTimingModel().symbol_error_std_s(0.0, 40.0)


class TestPacketLoss:
    def test_fig13a_cliff_shape(self):
        # Near-zero through 500 bps, then the cliff: ~45% at 1000 and
        # ~98% at 2000 (paper Fig. 13a).
        loss = {r: pie_packet_loss_probability(r) for r in (125, 250, 500, 1000, 2000)}
        assert loss[125] < 0.001
        assert loss[250] < 0.001
        assert loss[500] < 0.02
        assert 0.2 < loss[1000] < 0.7
        assert loss[2000] > 0.9

    def test_beacon_loss_matches_appendix_c_assumption(self):
        # Appendix C leans on "beacon loss rate ... less than 0.1%".
        assert pie_packet_loss_probability(250.0) < 1e-3

    def test_loss_monotone_in_symbols(self):
        short = pie_packet_loss_probability(1000.0, n_symbols=5)
        long = pie_packet_loss_probability(1000.0, n_symbols=20)
        assert long > short

    def test_invalid_symbols_raise(self):
        with pytest.raises(ValueError):
            pie_packet_loss_probability(250.0, n_symbols=0)

    def test_custom_timing_model(self):
        perfect = PieTimingModel(
            reader_jitter_std_s=1e-9, clock_hz=1e9, clock_skew_fraction=0.0
        )
        loss = pie_packet_loss_probability(2000.0, timing=perfect)
        assert loss < 1e-3  # only the detection floor remains
