"""Modulation conformance contract.

Every modulation registered in :mod:`repro.phy.modulation` — stock
FM0-over-OOK, chirp-OOK, binary FSK — must honour the same PHY
contract at every rate it offers:

* **round trip** — a frame synthesised through the real passband
  pipeline (tag component + leak + receiver noise at the decimated
  baseband) decodes back to the same (tid, payload) through
  :meth:`~repro.phy.reader_dsp.ReaderReceiveChain.decode_config`;
* **CRC integrity** — corrupting frame bits before line coding must
  not yield the original packet (the CRC gate rejects it);
* **template-cache parity** — the filtered-baseband template the fast
  path serves for a frame matches the reference synthesis to float
  reassociation error, and repeat lookups hit the cache;
* **decimation invariance** — decoding at a finer decimation than the
  modulation's declared geometry recovers the same packets (the
  declared decimation is an efficiency choice, not a correctness
  requirement).

New modulations plug in by registering — and are then held to this
suite automatically via the ``all_link_configs`` parametrisation.
"""

import math

import numpy as np
import pytest

from repro.phy import cache as phy_cache
from repro.phy.iq import downconvert
from repro.phy.modem import BackscatterUplink, receiver_noise_baseband
from repro.phy.modulation import (
    LinkConfig,
    all_link_configs,
    get_modulation,
    modulation_names,
)
from repro.phy.packets import UplinkPacket
from repro.phy.reader_dsp import ReaderReceiveChain
from repro.sim.random import RandomStreams

#: Operating point for the conformance captures: comfortably inside
#: every registered config's envelope (the weakest — legacy FM0 at
#: 3000 bps raw — still clears it across the pinned seeds).
AMPLITUDE_V = 0.008
NOISE_PSD_V2_PER_HZ = 4e-13
DELAY_S = 0.0015
LEAD_IN_S = 0.03
TAIL_S = 0.012
EXTRA_SAMPLES = 2000

CONFIGS = all_link_configs()
CONFIG_IDS = [config.label for config in CONFIGS]

TID = 5
PAYLOAD = 1234


@pytest.fixture(autouse=True)
def isolated_caches():
    phy_cache.clear_caches()
    yield
    phy_cache.clear_caches()


def _decode(config: LinkConfig, seed: int, bit_flips=(), decimation=None):
    """Synthesise one frame under ``config`` and run the real receive
    path; returns the decoded (tid, payload) pairs."""
    uplink = BackscatterUplink()
    chain = ReaderReceiveChain()
    mod = get_modulation(config.modulation)
    rate = config.bitrate_bps
    fs = uplink.sample_rate_hz
    if decimation is None:
        decimation = mod.decimation(fs, rate)
    rng = RandomStreams(seed).stream("conformance")
    packet = UplinkPacket(tid=TID, payload=PAYLOAD)
    component = uplink.tag_component(
        packet.to_bits(),
        rate,
        AMPLITUDE_V,
        phase_rad=float(rng.uniform(0, 2 * np.pi)),
        delay_s=DELAY_S,
        lead_in_s=LEAD_IN_S,
        tail_s=TAIL_S,
        bit_flips=bit_flips,
        modulation=config.modulation,
    )
    capture = uplink.capture_clean([component], extra_samples=EXTRA_SAMPLES)
    iq = downconvert(
        capture,
        fs,
        uplink.carrier_hz,
        cutoff_hz=mod.cutoff_hz(rate),
        decimation=decimation,
    )
    iq = iq + receiver_noise_baseband(
        len(iq),
        NOISE_PSD_V2_PER_HZ,
        fs,
        mod.cutoff_hz(rate),
        decimation,
        rng,
    )
    outcome = chain.decode_config(iq, fs / decimation, config)
    return sorted((p.tid, p.payload) for p in outcome.packets)


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
def test_round_trip(config):
    assert (TID, PAYLOAD) in _decode(config, seed=7)


@pytest.mark.parametrize(
    "config",
    [LinkConfig("fm0_ook", 375.0), LinkConfig("cook", 3000.0),
     LinkConfig("fsk", 125.0)],
    ids=["fm0_ook@375", "cook@3000", "fsk@125"],
)
@pytest.mark.parametrize("seed", [1, 23])
def test_round_trip_across_seeds(config, seed):
    """Noise/phase realisations must not matter inside the envelope
    (one representative rate per modulation family)."""
    assert (TID, PAYLOAD) in _decode(config, seed=seed)


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
def test_crc_rejects_corrupted_frame(config):
    """Flipped payload bits must never surface as the original packet
    — the CRC gate is modulation-independent."""
    assert (TID, PAYLOAD) not in _decode(config, seed=7, bit_flips=(14, 20))


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
def test_decimation_invariance(config):
    """Halving the declared decimation (finer baseband) is outcome-
    neutral: the declared geometry is a cost knob, not a decode
    precondition."""
    mod = get_modulation(config.modulation)
    declared = mod.decimation(BackscatterUplink().sample_rate_hz,
                              config.bitrate_bps)
    finer = max(1, declared // 2)
    decoded = _decode(config, seed=7, decimation=finer)
    assert (TID, PAYLOAD) in decoded
    assert decoded == _decode(config, seed=7, decimation=declared)


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
def test_template_cache_parity(config):
    """The cached filtered-baseband template reproduces the reference
    passband synthesis for every modulation, and repeat lookups are
    served from cache (same object)."""
    uplink = BackscatterUplink()
    mod = get_modulation(config.modulation)
    rate = config.bitrate_bps
    fs = uplink.sample_rate_hz
    decimation = mod.decimation(fs, rate)
    cutoff_hz = mod.cutoff_hz(rate)
    low_ratio = (
        uplink.pzt.absorptive_coefficient / uplink.pzt.reflective_coefficient
    )
    n_lead = int(round(LEAD_IN_S * fs))
    n_tail = int(round(TAIL_S * fs))
    phase = 0.7
    bits = UplinkPacket(tid=TID, payload=PAYLOAD).to_bits()
    raw = mod.line_encode(bits)

    template = phy_cache.tag_template(
        raw, rate, fs, uplink.carrier_hz, low_ratio, n_lead, n_tail,
        config.modulation,
    )
    again = phy_cache.tag_template(
        raw, rate, fs, uplink.carrier_hz, low_ratio, n_lead, n_tail,
        config.modulation,
    )
    assert again is template

    n_delay = int(round(DELAY_S * fs))
    n_capture = n_delay + template.n_body + EXTRA_SAMPLES
    m = -(-n_capture // decimation)
    fast = phy_cache.leak_baseband(
        n_capture, uplink.leak_amplitude_v, fs, uplink.carrier_hz,
        cutoff_hz, decimation,
    )[:m].copy()
    bc, bs = template.baseband(n_delay, n_capture, cutoff_hz, decimation)
    fast += (AMPLITUDE_V * math.cos(phase)) * bc[:m]
    fast -= (AMPLITUDE_V * math.sin(phase)) * bs[:m]

    component = uplink.tag_component(
        bits,
        rate,
        AMPLITUDE_V,
        phase_rad=phase,
        delay_s=DELAY_S,
        lead_in_s=LEAD_IN_S,
        tail_s=TAIL_S,
        modulation=config.modulation,
    )
    capture = uplink.capture_clean([component], extra_samples=EXTRA_SAMPLES)
    reference = downconvert(
        capture, fs, uplink.carrier_hz, cutoff_hz=cutoff_hz,
        decimation=decimation,
    )
    scale = float(np.max(np.abs(reference))) or 1.0
    np.testing.assert_allclose(fast, reference[:m], rtol=0,
                               atol=1e-9 * scale)


def test_registry_surface():
    """Registry invariants the adaptive stack leans on."""
    names = modulation_names()
    assert list(names) == sorted(names)
    assert {"fm0_ook", "cook", "fsk"} <= set(names)
    for config in CONFIGS:
        mod = get_modulation(config.modulation)
        assert config.bitrate_bps in mod.rates_bps
        assert config.label == (
            f"{config.modulation}@{config.bitrate_bps:g}"
        )
        assert mod.data_rate_bps(config.bitrate_bps) > 0
        assert mod.frame_raw_bits(32) >= 32
    with pytest.raises(KeyError):
        get_modulation("qam4096")
