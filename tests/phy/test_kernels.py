"""Exactness battery for :mod:`repro.phy.kernels`.

Every compiled kernel must be **byte-identical** to its numpy/scipy
fallback — not "close": the kernels-on-vs-off parity suite
(``test_kernel_parity.py``) holds whole slot logs byte-stable, which
only works if every intermediate array matches to the last bit.  The
compiled implementations therefore replay numpy's exact floating
semantics (pairwise-free sequential folds, ``lerp`` quantiles,
half-to-even rounding, and the FMA-contracted complex multiply of the
projection stage), and this battery drives both backends over random
and adversarial inputs and compares raw bytes.

Also covered: the ``REPRO_PHY_KERNELS`` gate / backend-override API,
``kernel_info`` diagnostics, the warn-once contract for
requested-but-unavailable backends, and clean numpy fallback when
numba is absent.
"""

import warnings

import numpy as np
import pytest

from repro.phy import kernels
from repro.phy.kernels import _NUMPY_IMPL

RNG = np.random.default_rng(0xC0FFEE)


def _compiled_table():
    kernels.kernel_info()  # forces selection
    table = kernels._compiled
    if table is None:
        pytest.skip(
            "no compiled kernel backend available "
            f"(load errors: {kernels._load_errors})"
        )
    return table


def _same_bytes(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a)
        b = np.asarray(b)
        return a.dtype == b.dtype and a.shape == b.shape and (
            a.tobytes() == b.tobytes()
        )
    if isinstance(a, tuple):
        return len(a) == len(b) and all(
            _same_bytes(x, y) for x, y in zip(a, b)
        )
    return np.float64(a).tobytes() == np.float64(b).tobytes()


def _random_iq(n: int, kind: int) -> np.ndarray:
    if kind == 0:
        return RNG.normal(size=n) + 1j * RNG.normal(size=n)
    if kind == 1:  # OOK-ish two-level constellation plus noise
        levels = np.where(RNG.random(n) < 0.5, 0.2, 1.0)
        z = levels * np.exp(1j * 1.3) + 0.01 * (
            RNG.normal(size=n) + 1j * RNG.normal(size=n)
        )
        return z + complex(0.4, -0.2)
    return np.full(n, complex(RNG.normal(), RNG.normal()))  # degenerate


class TestCompiledMatchesNumpyBytes:
    """Each compiled kernel vs the fallback, raw-byte equality."""

    def test_median_and_mad(self):
        table = _compiled_table()
        for trial in range(60):
            n = int(RNG.integers(1, 2000))
            x = RNG.normal(size=n) * 10.0 ** RNG.integers(-6, 7)
            if trial % 5 == 0:
                # Exact ties, kept non-negative: partition order among
                # equal-comparing elements is implementation-defined,
                # so mixed ±0.0 ties may legitimately differ in the
                # sign of a zero result (the pipeline feeds these
                # kernels abs-derived or continuous data).
                x = np.round(np.abs(x) * 10.0)
            assert _same_bytes(table["median"](x), _NUMPY_IMPL["median"](x))
            assert _same_bytes(
                table["mad_spread"](x), _NUMPY_IMPL["mad_spread"](x)
            )

    def test_two_quantiles(self):
        table = _compiled_table()
        for _ in range(60):
            n = int(RNG.integers(1, 1500))
            x = RNG.normal(size=n)
            q0 = float(RNG.random() * 0.5)
            q1 = q0 + float(RNG.random() * (1.0 - q0))
            assert _same_bytes(
                table["two_quantiles"](x, q0, q1),
                _NUMPY_IMPL["two_quantiles"](x, q0, q1),
            )

    def test_projection_pair_including_fma_contraction(self):
        # iq**2 and iq*rot go through numpy's FMA-contracted complex
        # multiply loop; a plain-ops expansion diverges by 1 ulp on
        # roughly every third input, so random data is adversarial
        # enough here.
        table = _compiled_table()
        for trial in range(80):
            iq = _random_iq(int(RNG.integers(8, 1200)), trial % 3)
            c = table["project_center"](iq)
            c_np = _NUMPY_IMPL["project_center"](iq)
            assert _same_bytes(c, c_np)
            rot = np.exp(-1j * float(RNG.normal()))
            args = (iq, c[0], c[1], rot.real, rot.imag, 0.1, 0.9)
            assert _same_bytes(
                table["project_finish"](*args),
                _NUMPY_IMPL["project_finish"](*args),
            )

    def test_fused_project_entry(self):
        table = _compiled_table()
        fused = table.get("project")
        if fused is None:
            pytest.skip("backend has no fused project composition")
        for trial in range(40):
            iq = _random_iq(int(RNG.integers(8, 1200)), trial % 3)
            composed = kernels._NUMPY_IMPL  # reference composition
            c = composed["project_center"](iq)
            m = c[2] + 1j * c[3]
            theta = 0.5 * np.angle(m) if m != 0 else 0.0
            rot = np.exp(-1j * theta)
            want = composed["project_finish"](
                iq, c[0], c[1], rot.real, rot.imag, 10.0 / 100.0, 90.0 / 100.0
            )
            assert _same_bytes(fused(iq), want)

    def test_schmitt_and_hysteresis(self):
        table = _compiled_table()
        for trial in range(60):
            n = int(RNG.integers(1, 2000))
            p = RNG.normal(size=n)
            if trial % 4 == 0:
                p = np.zeros(n)  # flat input: zero spread path
            hyst = float(RNG.random() * 0.9)
            drift = float(RNG.normal() * 0.2)
            assert _same_bytes(
                table["schmitt_full"](p, hyst, drift),
                _NUMPY_IMPL["schmitt_full"](p, hyst, drift),
            )
            hi, lo = 0.5, -0.5
            assert _same_bytes(
                table["schmitt_states"](p, hi, lo, trial % 2),
                _NUMPY_IMPL["schmitt_states"](p, hi, lo, trial % 2),
            )
            env = np.abs(p)
            assert _same_bytes(
                table["hysteresis_slice"](env, 0.6, 0.3),
                _NUMPY_IMPL["hysteresis_slice"](env, 0.6, 0.3),
            )

    def test_fm0_pairs_and_bit_grid(self):
        table = _compiled_table()
        for trial in range(60):
            n = 2 * int(RNG.integers(1, 500))
            raw = RNG.integers(0, 2, size=n).astype(np.uint8)
            assert _same_bytes(
                table["fm0_pairs"](raw, trial % 2),
                _NUMPY_IMPL["fm0_pairs"](raw, trial % 2),
            )
            n_samples = int(RNG.integers(10, 5000))
            spb = float(RNG.uniform(2.0, 40.0))
            offset = float(RNG.uniform(0.0, spb))
            margin = 0.1 * spb
            assert _same_bytes(
                table["bit_grid"](n_samples, spb, offset, margin),
                _NUMPY_IMPL["bit_grid"](n_samples, spb, offset, margin),
            )

    def test_hist2d_counts(self):
        table = _compiled_table()
        for trial in range(40):
            n = int(RNG.integers(1, 2000))
            bins = int(RNG.integers(2, kernels.MAX_HIST_BINS + 1))
            x = RNG.normal(size=n)
            y = RNG.normal(size=n)
            if trial % 4 == 0:
                # values exactly on edges (the last-edge fixup path)
                x = np.round(x)
                y = np.round(y)
            xr = (float(x.min()), float(x.max()) + 1e-9)
            yr = (float(y.min()) - 0.5, float(y.max()))
            assert _same_bytes(
                table["hist2d_counts"](x, y, bins, xr, yr),
                _NUMPY_IMPL["hist2d_counts"](x, y, bins, xr, yr),
            )

    def test_cluster_histogram_and_peaks(self):
        table = _compiled_table()
        for trial in range(60):
            n = int(RNG.integers(8, 2500))
            bins = int(RNG.integers(2, kernels.MAX_HIST_BINS + 1))
            iq = _random_iq(n, trial % 3)
            got = table["cluster_histogram"](iq, bins)
            want = _NUMPY_IMPL["cluster_histogram"](iq, bins)
            assert _same_bytes(got, want)
            thr = float(RNG.choice([0.0, 0.15, 0.5, 1.0]))
            hist = want[0]
            if trial % 5 == 0:
                hist = np.zeros((bins, bins))  # smax <= 0 path
            assert _same_bytes(
                table["cluster_peaks"](hist, thr),
                _NUMPY_IMPL["cluster_peaks"](hist, thr),
            )

    def test_envelope_and_filters(self):
        table = _compiled_table()
        from scipy.signal import butter

        for trial in range(30):
            n = int(RNG.integers(4, 4000))
            w = RNG.normal(size=n)
            alpha = float(RNG.uniform(0.01, 0.99))
            assert _same_bytes(
                table["envelope_rc"](w, alpha),
                _NUMPY_IMPL["envelope_rc"](w, alpha),
            )
            sos = butter(int(RNG.integers(2, 7)), float(RNG.uniform(0.01, 0.8)),
                         output="sos")
            x = RNG.normal(size=n) + 1j * RNG.normal(size=n)
            assert _same_bytes(
                table["sosfilt_complex"](sos, x),
                _NUMPY_IMPL["sosfilt_complex"](sos, x),
            )
            real = RNG.normal(size=n)
            lo = np.exp(-1j * np.linspace(0.0, 20.0, n))
            dec = int(RNG.integers(1, 30))
            assert _same_bytes(
                table["mix_sosfilt_decimate"](real, lo, sos, dec),
                _NUMPY_IMPL["mix_sosfilt_decimate"](real, lo, sos, dec),
            )


class TestDispatchedWrappers:
    """The public wrappers agree with the fallback regardless of the
    active backend (exercises the dispatch + lane-buffer plumbing)."""

    def test_wrappers_match_numpy(self):
        iq = _random_iq(700, 1)
        p = np.real(iq)
        assert _same_bytes(kernels.median(p), _NUMPY_IMPL["median"](p))
        assert _same_bytes(
            kernels.two_percentiles(p, 1.0, 99.0),
            _NUMPY_IMPL["two_quantiles"](p, 0.01, 0.99),
        )
        with kernels.use_kernels(False):
            want = kernels.project(iq)
        assert _same_bytes(kernels.project(iq), want)
        with kernels.use_kernels(False):
            want_s = kernels.schmitt_full(want, 0.3, 0.0)
        assert _same_bytes(kernels.schmitt_full(want, 0.3, 0.0), want_s)

    def test_oversize_bins_route_to_numpy(self):
        iq = _random_iq(300, 0)
        big = kernels.MAX_HIST_BINS + 8
        hist, xe, ye = kernels.cluster_histogram(iq, big)
        assert hist.shape == (big, big)
        smoothed, labels, n_peaks, smax = kernels.cluster_peaks(hist, 0.15)
        assert labels.shape == (big, big)
        assert labels.dtype == np.int32
        assert n_peaks >= 1
        assert smax > 0

    def test_empty_and_degenerate_inputs(self):
        assert kernels.project(np.empty(0, dtype=complex)).size == 0
        lo, hi = kernels.bit_grid(100, 0.0, 0.0, 0.0)
        assert lo.size == 0 and hi.size == 0
        bits, viol = kernels.fm0_pairs(np.empty(0, dtype=np.uint8))
        assert bits.size == 0 and viol.size == 0


class TestSelectionApi:
    def test_backend_name_is_known(self):
        assert kernels.backend() in ("numba", "cext", "numpy")

    def test_gate_forces_numpy(self):
        # The ambient default may itself be off (e.g. the CI
        # REPRO_PHY_KERNELS=0 leg) — the scope must restore it either way.
        ambient = kernels.kernels_enabled()
        with kernels.use_kernels(False):
            assert kernels.backend() == "numpy"
            assert not kernels.kernels_enabled()
        assert kernels.kernels_enabled() == ambient

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "0")
        assert not kernels.kernels_enabled()
        assert kernels.backend() == "numpy"
        monkeypatch.setenv(kernels.KERNELS_ENV, "1")
        assert kernels.kernels_enabled()
        monkeypatch.setenv(kernels.KERNELS_ENV, "0")
        with kernels.use_kernels(True):  # override beats env
            assert kernels.kernels_enabled()

    def test_kernel_info_shape(self):
        info = kernels.kernel_info()
        assert info["backend"] in ("numba", "cext", "numpy")
        assert set(info["kernels"]) == set(_NUMPY_IMPL)
        assert isinstance(info["load_errors"], dict)
        assert info["compiled_kernels"] >= 0
        if info["compiled_backend"] is None:
            assert info["compiled_kernels"] == 0

    def test_forcing_numpy_backend(self):
        with kernels.use_backend("numpy"):
            assert kernels.backend() == "numpy"

    def test_forcing_unavailable_backend_raises(self):
        info = kernels.kernel_info()
        unavailable = [
            b for b in ("numba", "cext") if b != info["compiled_backend"]
        ]
        if not unavailable:  # pragma: no cover - both compiled present
            pytest.skip("every compiled backend loaded")
        with pytest.raises(RuntimeError):
            kernels.set_backend(unavailable[0])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fortran")


class TestGracefulDegradation:
    @pytest.fixture
    def fresh_selection(self):
        """Drop the pinned backend, restore it after the test."""
        kernels.reset_selection()
        yield
        kernels.reset_selection()

    def test_numba_absent_falls_back_cleanly(self, monkeypatch,
                                             fresh_selection):
        # Make `import numba` fail even when the package is installed;
        # selection must move on without raising or warning (numba was
        # not *requested*, it just lost the probe).
        monkeypatch.delenv(kernels.KERNELS_ENV, raising=False)
        monkeypatch.setitem(__import__("sys").modules, "numba", None)
        monkeypatch.delitem(
            __import__("sys").modules, "repro.phy._kernels_numba",
            raising=False,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            name = kernels.backend()
        assert name in ("cext", "numpy")
        info = kernels.kernel_info()
        if name == "numpy":
            assert info["compiled_backend"] is None
        # The probe failure is recorded for diagnostics.
        assert "numba" in info["load_errors"]

    def test_requested_unavailable_warns_once(self, monkeypatch,
                                              fresh_selection):
        monkeypatch.setenv(kernels.KERNELS_ENV, "numba")
        monkeypatch.setitem(__import__("sys").modules, "numba", None)
        monkeypatch.delitem(
            __import__("sys").modules, "repro.phy._kernels_numba",
            raising=False,
        )
        with pytest.warns(RuntimeWarning, match="numba"):
            kernels.backend()
        # Once per process: the second use stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernels.backend()
            kernels.median(np.arange(5.0))
