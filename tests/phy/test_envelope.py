"""Tests for the envelope detector and comparator."""

import numpy as np
import pytest

from repro.phy.envelope import EnvelopeDetector, HysteresisComparator, edges


class TestEnvelopeDetector:
    def test_tracks_carrier_amplitude(self, rng):
        fs = 500_000.0
        t = np.arange(int(0.05 * fs)) / fs
        wave = 0.8 * np.cos(2 * np.pi * 90_000 * t)
        env = EnvelopeDetector().detect(wave, fs)
        # After settling, the envelope sits near the peak amplitude.
        assert np.mean(env[-1000:]) == pytest.approx(0.8, rel=0.1)

    def test_follows_amplitude_steps(self):
        fs = 500_000.0
        t = np.arange(int(0.04 * fs)) / fs
        amp = np.where(t < 0.02, 1.0, 0.2)
        wave = amp * np.cos(2 * np.pi * 90_000 * t)
        env = EnvelopeDetector().detect(wave, fs)
        assert np.mean(env[9_000:10_000]) > 3 * np.mean(env[-1000:])

    def test_crossing_delay_closed_form(self):
        d = EnvelopeDetector(rc_s=2e-3)
        delay = d.threshold_crossing_delay_s(1.0, threshold_v=0.15)
        assert delay == pytest.approx(2e-3 * np.log(1 / 0.85), rel=1e-9)

    def test_weaker_carrier_crosses_later(self):
        d = EnvelopeDetector()
        assert d.threshold_crossing_delay_s(0.3) > d.threshold_crossing_delay_s(1.4)

    def test_subthreshold_carrier_never_crosses(self):
        assert EnvelopeDetector().threshold_crossing_delay_s(0.1) == float("inf")

    def test_sync_offsets_within_5ms_for_deployment(self, medium):
        # Fig. 13(b): all tags' beacon-arrival offsets under 5 ms.
        d = EnvelopeDetector()
        delays = [
            d.threshold_crossing_delay_s(medium.carrier_amplitude_v(t))
            for t in medium.tag_names()
        ]
        spread = max(delays) - min(delays)
        assert spread < 5e-3

    def test_invalid_rc_raises(self):
        with pytest.raises(ValueError):
            EnvelopeDetector(rc_s=0.0)


class TestComparator:
    def test_slices_with_hysteresis(self):
        c = HysteresisComparator(threshold_v=0.5, hysteresis_v=0.2)
        env = np.array([0.0, 0.55, 0.65, 0.45, 0.35, 0.65])
        out = c.slice(env)
        # 0.55 < rising threshold 0.6: stays low; 0.65 flips high;
        # 0.45 > falling threshold 0.4: stays high; 0.35 flips low.
        assert list(out) == [0, 0, 1, 1, 0, 1]

    def test_ripple_inside_band_does_not_chatter(self):
        c = HysteresisComparator(threshold_v=0.5, hysteresis_v=0.2)
        env = 0.5 + 0.05 * np.sin(np.linspace(0, 50, 500))
        out = c.slice(env)
        assert len(set(out)) == 1  # never toggles

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            HysteresisComparator(threshold_v=0.0)
        with pytest.raises(ValueError):
            HysteresisComparator(threshold_v=0.1, hysteresis_v=0.5)


class TestEdges:
    def test_extracts_transitions(self):
        binary = np.array([0, 0, 1, 1, 0, 1])
        result = edges(binary, sample_rate_hz=10.0)
        assert result == [(0.2, 1), (0.4, 0), (0.5, 1)]

    def test_constant_signal_no_edges(self):
        assert edges(np.ones(100), 10.0) == []

    def test_empty_signal(self):
        assert edges(np.array([]), 10.0) == []

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            edges(np.array([0, 1]), 0.0)
