"""Golden-trace regression for the adaptive PHY: the pinned ``figA``
run — boot ramp, clean cruise, 13 dB degradation, recovery — must
replay byte-for-byte against a checked-in JSON document.

Regenerate (after an intentional behaviour change) with::

    PYTHONPATH=src python -m pytest tests/phy/test_adaptive_golden.py --regen-golden

and review the golden diff like any other code change.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.figA_adaptive import (
    DEFAULT_SEED,
    run_figA,
    summarize_figA,
)

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "golden" / "adaptive_uplink.json"
)

_RUN_CACHE = {}


def pinned_summary() -> dict:
    """The default-seed figA summary, computed once per session."""
    if "summary" not in _RUN_CACHE:
        _RUN_CACHE["summary"] = summarize_figA(run_figA(seed=DEFAULT_SEED))
    return _RUN_CACHE["summary"]


def summary_signature(summary: dict) -> str:
    blob = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def full_doc() -> dict:
    summary = pinned_summary()
    return {
        "scenario": "adaptive_uplink",
        "seed": DEFAULT_SEED,
        "summary": summary,
        "signature": summary_signature(summary),
    }


def load_or_regen(regen: bool) -> dict:
    if regen:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        doc = full_doc()
        GOLDEN_PATH.write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        return doc
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} missing — run pytest with --regen-golden"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestGoldenAdaptive:
    def test_signature_matches_golden(self, regen_golden):
        doc = load_or_regen(regen_golden)
        assert summary_signature(pinned_summary()) == doc["signature"], (
            "figA drifted from its golden trace; if the change is "
            "intentional, regenerate with --regen-golden"
        )

    def test_full_summary_matches_golden(self, regen_golden):
        doc = load_or_regen(regen_golden)
        assert pinned_summary() == doc["summary"]

    def test_golden_run_passes_acceptance(self, regen_golden):
        # The pinned trace must itself satisfy the figA acceptance:
        # adaptive strictly above every fixed (modulation, rate) arm.
        doc = load_or_regen(regen_golden)
        summary = doc["summary"]
        assert summary["verdict"] is True
        adaptive = summary["adaptive_goodput_bps"]
        for label, goodput in summary["fixed_goodput_bps"].items():
            assert adaptive > goodput, f"adaptive does not beat {label}"

    def test_golden_story_is_adaptive(self, regen_golden):
        # Every tag must actually have moved (boot rung -> cruise ->
        # degraded fallback -> recovery), otherwise the golden pins a
        # static plan and certifies nothing about rate control.
        doc = load_or_regen(regen_golden)
        for tag, info in doc["summary"]["per_tag"].items():
            assert info["switches"] >= 3, f"{tag} never adapted"
            labels = [entry[1] for entry in info["history"]]
            assert any(label.startswith("fsk@") for label in labels), (
                f"{tag} never fell back during the degraded phase"
            )

    def test_repeat_runs_are_byte_identical(self):
        assert summarize_figA(run_figA(seed=DEFAULT_SEED)) == pinned_summary()
