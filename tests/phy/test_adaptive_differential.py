"""Adaptive-off differential suite.

The escape hatch contract: with ``REPRO_PHY_ADAPTIVE=0`` (or the
:func:`repro.phy.rate.adaptive` context), a network carrying a full
rate-control stack — installed controller, seeded uplink plan — must
be **byte-identical** to the stock network: same records, same slot
logs, same RNG consumption.  This is what lets every pre-adaptive
baseline, golden trace, and calibration constant in the repo stay
valid while the adaptive machinery ships alongside.

Scenarios and seeds mirror ``test_fast_path_differential``; both the
slot-level and the waveform-fidelity networks are pinned.
"""

import os

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.waveform_network import WaveformNetwork
from repro.faults import FaultEvent, FaultSchedule
from repro.phy import cache as phy_cache
from repro.phy import rate
from repro.phy.modulation import LinkConfig
from repro.phy.rate import DEFAULT_LADDER, RateController

SEEDS = [1, 7, 23]
SCENARIOS = ["dense", "sparse", "faulted"]


@pytest.fixture(autouse=True)
def isolated_caches():
    phy_cache.clear_caches()
    yield
    phy_cache.clear_caches()


def _fault_schedule():
    return FaultSchedule(
        [
            FaultEvent(slot=4, duration=6, kind="attenuation", target="tag5",
                       magnitude=12.0),
            FaultEvent(slot=10, duration=8, kind="bit_flip", target="tag8",
                       magnitude=3.0),
            FaultEvent(slot=18, duration=5, kind="noise_burst", target="*",
                       magnitude=6.0),
        ]
    )


def _build(cls, scenario: str, seed: int, adaptive_stack: bool):
    kwargs = {}
    if adaptive_stack:
        # A live controller AND a non-trivial standing plan: adaptive
        # off must neutralise both, not just an empty default.
        kwargs = dict(
            rate_controller=RateController(DEFAULT_LADDER),
            uplink_plan={"tag5": LinkConfig("cook", 3000.0),
                         "tag8": LinkConfig("fsk", 125.0)},
        )
    config = NetworkConfig(seed=seed)
    if scenario == "dense":
        return cls({"tag5": 4, "tag8": 4, "tag9": 8}, config=config, **kwargs)
    if scenario == "sparse":
        return cls({"tag3": 8, "tag12": 16}, config=config, **kwargs)
    if scenario == "faulted":
        return cls({"tag5": 4, "tag8": 4, "tag9": 8}, config=config,
                   faults=_fault_schedule(), **kwargs)
    raise AssertionError(scenario)  # pragma: no cover


def _signature(net):
    sig = [
        (r.slot, r.n_transmitters, r.decoded, r.collision_detected,
         r.acked, r.empty_flag)
        for r in net.records
    ]
    for log in getattr(net, "slot_logs", ()):
        sig.append((log.slot, tuple(log.transmitters),
                    tuple(log.decoded_tids), log.n_clusters))
    return sig


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_slotted_adaptive_off_is_byte_identical(scenario, seed):
    baseline = _build(SlottedNetwork, scenario, seed, adaptive_stack=False)
    baseline.run(200)
    with rate.adaptive(False):
        stacked = _build(SlottedNetwork, scenario, seed, adaptive_stack=True)
        stacked.run(200)
    assert _signature(stacked) == _signature(baseline)
    # The plan must be untouched: adaptive-off froze the controller out.
    assert stacked.uplink_plan == {"tag5": LinkConfig("cook", 3000.0),
                                   "tag8": LinkConfig("fsk", 125.0)}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_waveform_adaptive_off_is_byte_identical(scenario, seed):
    baseline = _build(WaveformNetwork, scenario, seed, adaptive_stack=False)
    baseline.run(24)
    with rate.adaptive(False):
        stacked = _build(WaveformNetwork, scenario, seed, adaptive_stack=True)
        stacked.run(24)
    assert _signature(stacked) == _signature(baseline)


@pytest.mark.parametrize("seed", SEEDS)
def test_slotted_adaptive_on_differs_and_converges(seed):
    """Sanity inverse: with adaptive ON the plan actually moves (the
    escape-hatch tests above are not vacuously comparing two legacy
    runs)."""
    net = _build(SlottedNetwork, "dense", seed, adaptive_stack=True)
    net.run(200)
    plan = net.uplink_plan
    assert plan["tag8"] == LinkConfig("cook", 3000.0)
    assert plan["tag5"] == LinkConfig("fm0_ook", 3000.0)
    assert plan["tag9"] == LinkConfig("fm0_ook", 3000.0)


def test_gate_default_on():
    assert rate.adaptive_enabled()


def test_gate_context_manager_nests():
    with rate.adaptive(False):
        assert not rate.adaptive_enabled()
        with rate.adaptive(True):
            assert rate.adaptive_enabled()
        assert not rate.adaptive_enabled()
    assert rate.adaptive_enabled()


def test_gate_env_escape_hatch(monkeypatch):
    for value in ("0", "false", "OFF", "No"):
        monkeypatch.setenv(rate.ADAPTIVE_ENV, value)
        assert not rate.adaptive_enabled()
    monkeypatch.setenv(rate.ADAPTIVE_ENV, "1")
    assert rate.adaptive_enabled()
    monkeypatch.delenv(rate.ADAPTIVE_ENV)
    assert rate.adaptive_enabled()
    # The in-process override outranks the environment.
    monkeypatch.setenv(rate.ADAPTIVE_ENV, "0")
    with rate.adaptive(True):
        assert rate.adaptive_enabled()


def test_networks_without_stack_never_consult_gate():
    """A plain network must not even look at the adaptive gate (the
    plan short-circuit), so pre-adaptive deployments cannot be
    perturbed by the environment variable."""
    net = SlottedNetwork({"tag5": 4}, config=NetworkConfig(seed=1))
    assert net.uplink_plan is None
    assert not net._adaptive_active()
    os.environ.get(rate.ADAPTIVE_ENV)  # document: env is irrelevant here
