"""Tests for waveform synthesis."""

import numpy as np
import pytest

from repro.channel import acoustics
from repro.phy.modem import (
    BackscatterUplink,
    FskOokDownlink,
    carrier,
    raw_bits_to_levels,
    raw_bits_to_levels_reference,
    receiver_noise_baseband,
)


class TestLevels:
    def test_sample_counts(self):
        levels = raw_bits_to_levels([1, 0, 1], 1000.0, 10_000.0)
        assert len(levels) == 30
        assert list(levels[:10]) == [1.0] * 10
        assert list(levels[10:20]) == [0.0] * 10

    def test_no_cumulative_drift(self):
        # 1000 bits at an awkward ratio must still land on the exact
        # total length.
        levels = raw_bits_to_levels([1] * 1000, 375.0, 500_000.0)
        assert len(levels) == round(1000 * 500_000 / 375)

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            raw_bits_to_levels([2], 1000.0, 10_000.0)

    def test_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            raw_bits_to_levels([1], 0.0, 10.0)


class TestCarrier:
    def test_amplitude_and_frequency(self):
        fs = 500_000.0
        wave = carrier(5000, 0.5, fs, 90_000.0)
        assert np.max(np.abs(wave)) == pytest.approx(0.5, rel=1e-3)
        spectrum = np.abs(np.fft.rfft(wave))
        peak = np.fft.rfftfreq(5000, 1 / fs)[np.argmax(spectrum)]
        assert peak == pytest.approx(90_000.0, abs=200)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            carrier(-1, 1.0)


class TestBackscatterUplink:
    def test_component_has_two_amplitude_levels(self):
        up = BackscatterUplink()
        comp = up.tag_component([1, 0, 1, 1], 1000.0, 0.01, lead_in_s=0.0)
        env = np.abs(comp)
        hi = np.percentile(env, 98)
        ratio = up.pzt.absorptive_coefficient / up.pzt.reflective_coefficient
        assert hi == pytest.approx(0.01, rel=0.05)
        # The OFF level is the absorptive reflection, not silence.
        assert np.min(np.abs(comp[np.abs(comp) > 1e-6])) < 0.01 * ratio * 1.2

    def test_delay_prepends_silence(self):
        up = BackscatterUplink()
        comp = up.tag_component([1], 1000.0, 0.01, delay_s=1e-3, lead_in_s=0.0)
        n_delay = int(1e-3 * up.sample_rate_hz)
        assert np.all(comp[:n_delay] == 0.0)

    def test_lead_in_is_absorptive_level(self):
        up = BackscatterUplink()
        comp = up.tag_component([1], 1000.0, 0.01, lead_in_s=0.005)
        lead = comp[: int(0.004 * up.sample_rate_hz)]
        ratio = up.pzt.absorptive_coefficient / up.pzt.reflective_coefficient
        assert np.max(np.abs(lead)) == pytest.approx(0.01 * ratio, rel=0.05)

    def test_capture_sums_components_and_leak(self, rng):
        up = BackscatterUplink(leak_amplitude_v=0.2)
        c1 = up.tag_component([1, 0], 1000.0, 0.01, lead_in_s=0.0)
        cap = up.capture([c1], 1e-14, rng)
        assert np.max(np.abs(cap)) > 0.19  # leak dominates

    def test_capture_empty_raises_without_extra(self, rng):
        with pytest.raises(ValueError):
            BackscatterUplink().capture([], 1e-10, rng)

    def test_capture_noise_floor(self, rng):
        up = BackscatterUplink(leak_amplitude_v=0.0)
        cap = up.capture([], 1e-8, rng, extra_samples=100_000)
        expected_var = 1e-8 * up.sample_rate_hz / 2
        assert np.var(cap) == pytest.approx(expected_var, rel=0.05)


class TestFskOokDownlink:
    def test_on_off_contrast_at_envelope(self):
        dl = FskOokDownlink()
        wave = dl.beacon_waveform([1, 0, 1], 250.0)
        # ON segments reach the full amplitude; OFF segments sit at the
        # attenuated off-frequency drive.
        assert np.max(np.abs(wave)) == pytest.approx(1.0, rel=0.01)
        raw_bit = int(dl.sample_rate_hz / 250.0)
        off_segment = wave[2 * raw_bit + raw_bit // 4 : 3 * raw_bit - raw_bit // 4]
        assert np.max(np.abs(off_segment)) < 0.15

    def test_naive_ook_rings_longer_than_fsk(self):
        dl = FskOokDownlink()
        bits = [1, 0]
        fsk = dl.beacon_waveform(bits, 250.0)
        naive = dl.naive_ook_waveform(bits, 250.0)
        raw_bit = int(dl.sample_rate_hz / 250.0)
        # Look just after the first ON->OFF transition (~0.4 ms in).
        start = 2 * raw_bit + int(0.0002 * dl.sample_rate_hz)
        window = slice(start, start + 200)
        assert np.max(np.abs(naive[window])) > np.max(np.abs(fsk[window]))

    def test_link_gain_scales(self):
        dl = FskOokDownlink()
        full = dl.beacon_waveform([1], 250.0, link_gain=1.0)
        half = dl.beacon_waveform([1], 250.0, link_gain=0.5)
        assert np.max(np.abs(half)) == pytest.approx(np.max(np.abs(full)) / 2)


class TestVectorizedEquivalence:
    """The vectorized kernels must match the kept-as-reference scalar
    implementations: bit-exact where the arithmetic is identical, and
    within a few ULPs where associativity differs."""

    def test_levels_bit_exact_awkward_ratios(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            n_bits = int(rng.integers(1, 200))
            bits = rng.integers(0, 2, size=n_bits).tolist()
            rate = float(rng.uniform(100.0, 5000.0))
            fs = float(rng.uniform(50_000.0, 500_000.0))
            fast = raw_bits_to_levels(bits, rate, fs)
            slow = raw_bits_to_levels_reference(bits, rate, fs)
            np.testing.assert_array_equal(fast, slow)

    def test_levels_bit_exact_paper_rates(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        for rate in (250.0, 375.0, 500.0, 1000.0, 2000.0):
            fast = raw_bits_to_levels(bits, rate, 500_000.0)
            slow = raw_bits_to_levels_reference(bits, rate, 500_000.0)
            np.testing.assert_array_equal(fast, slow)

    def test_naive_ook_matches_reference(self):
        dl = FskOokDownlink()
        rng = np.random.default_rng(7)
        for n_bits in (2, 5, 12):
            bits = rng.integers(0, 2, size=n_bits).tolist()
            fast = dl.naive_ook_waveform(bits, 250.0)
            slow = dl.naive_ook_waveform_reference(bits, 250.0)
            assert fast.shape == slow.shape
            scale = np.max(np.abs(slow)) or 1.0
            np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-12 * scale)

    def test_tag_component_nonzero_phase_matches_direct_synthesis(self):
        # The angle-sum carrier path must agree with synthesising
        # cos(w t + phi) directly.
        from repro.phy.fm0 import fm0_encode

        up = BackscatterUplink()
        phase = 0.7
        comp = up.tag_component(
            [1, 0, 1], 1000.0, 0.01, phase_rad=phase, lead_in_s=0.0, tail_s=0.0
        )
        levels = raw_bits_to_levels(
            fm0_encode([1, 0, 1]), 1000.0, up.sample_rate_hz
        )
        lo = up.pzt.absorptive_coefficient / up.pzt.reflective_coefficient
        scale = (lo + levels * (1.0 - lo)) * 0.01
        t = np.arange(len(levels)) / up.sample_rate_hz
        expected = scale * np.cos(2 * np.pi * up.carrier_hz * t + phase)
        np.testing.assert_allclose(comp, expected, rtol=0, atol=1e-12)


class TestCaptureClean:
    def _components(self):
        uplink = BackscatterUplink()
        return uplink, [
            uplink.tag_component([1, 0, 1, 0], 3000.0, 0.01),
            uplink.tag_component([1, 1, 0, 0], 3000.0, 0.02, delay_s=0.001),
        ]

    def test_is_capture_without_noise(self, rng):
        uplink, components = self._components()
        clean = uplink.capture_clean(components, extra_samples=100)
        noisy = uplink.capture(
            components, 0.0, np.random.default_rng(0), extra_samples=100
        )
        np.testing.assert_array_equal(clean, noisy)

    def test_scratch_buffer_is_aliased(self):
        uplink, components = self._components()
        n = max(len(c) for c in components) + 100
        scratch = np.empty(2 * n)
        out = uplink.capture_clean(components, extra_samples=100, out=scratch)
        assert out.base is scratch
        assert len(out) == n
        np.testing.assert_array_equal(
            out, uplink.capture_clean(components, extra_samples=100)
        )

    def test_undersized_scratch_falls_back_to_fresh(self):
        uplink, components = self._components()
        scratch = np.empty(4)
        out = uplink.capture_clean(components, extra_samples=100, out=scratch)
        assert out.base is not scratch
        np.testing.assert_array_equal(
            out, uplink.capture_clean(components, extra_samples=100)
        )


class TestReceiverNoiseBaseband:
    PSD, FS, CUTOFF, D = 1e-10, 500_000.0, 750.0, 111

    def test_deterministic_per_rng_state(self):
        a = receiver_noise_baseband(
            1500, self.PSD, self.FS, self.CUTOFF, self.D,
            np.random.default_rng(5),
        )
        b = receiver_noise_baseband(
            1500, self.PSD, self.FS, self.CUTOFF, self.D,
            np.random.default_rng(5),
        )
        assert a.dtype == np.complex128
        np.testing.assert_array_equal(a, b)

    def test_power_tracks_reference_pipeline(self, rng):
        """The baseband draw must carry the same in-band power as
        mixing/filtering/decimating true passband noise (within the
        filter-shape difference)."""
        from repro.phy.iq import downconvert

        sigma = np.sqrt(self.PSD * self.FS / 2.0)
        n = 400_000
        passband = rng.normal(0.0, sigma, size=n)
        ref = downconvert(
            passband, self.FS, 90_000.0, cutoff_hz=self.CUTOFF,
            decimation=self.D,
        )[8:]
        fast = receiver_noise_baseband(
            len(ref) + 8, self.PSD, self.FS, self.CUTOFF, self.D, rng
        )[8:]
        ratio = np.mean(np.abs(fast) ** 2) / np.mean(np.abs(ref) ** 2)
        assert 0.7 < ratio < 1.4

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ValueError):
            receiver_noise_baseband(-1, self.PSD, self.FS, self.CUTOFF,
                                    self.D, rng)
        with pytest.raises(ValueError):
            receiver_noise_baseband(10, self.PSD, self.FS, self.CUTOFF,
                                    0, rng)
