"""RateController unit + property suite.

Derandomized (CI-stable) hypothesis sweeps over link-quality
trajectories pin the controller's contract: rung selection is monotone
in SNR, hysteresis bounds the switch count, downgrades are immediate,
and telemetry-driven updates are independent of label enumeration
order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import telemetry
from repro.phy.modulation import LinkConfig, get_modulation
from repro.phy.rate import (
    DEFAULT_LADDER,
    QUALITY_HISTOGRAM_BOUNDS_DB,
    QUALITY_METRIC,
    RateController,
    RateStep,
)

PROP = settings(max_examples=30, deadline=None, derandomize=True)

LADDER_CONFIGS = [step.config for step in DEFAULT_LADDER]


def _index(controller: RateController, tag: str) -> int:
    return LADDER_CONFIGS.index(controller.config_for(tag))


quality = st.floats(min_value=-10.0, max_value=40.0,
                    allow_nan=False, allow_infinity=False)


# -- construction contract ----------------------------------------------------


def test_default_ladder_is_valid():
    controller = RateController(DEFAULT_LADDER)
    floors = [step.min_quality_db for step in controller.ladder]
    assert floors == sorted(floors)
    assert floors[0] == float("-inf")
    # Data rate strictly increases up the ladder — "best qualifying
    # rung" must also be "fastest".
    rates = [
        get_modulation(s.config.modulation).data_rate_bps(s.config.bitrate_bps)
        for s in controller.ladder
    ]
    assert rates == sorted(rates)
    assert len(set(rates)) == len(rates)


def test_rejects_bad_ladders():
    with pytest.raises(ValueError):
        RateController(())
    with pytest.raises(ValueError):
        RateController(
            (RateStep(LinkConfig("fm0_ook", 375.0), 10.0),
             RateStep(LinkConfig("fm0_ook", 750.0), 5.0))
        )
    with pytest.raises(ValueError):
        RateController((RateStep(LinkConfig("fm0_ook", 400.0), 0.0),))
    with pytest.raises(ValueError):
        RateController(DEFAULT_LADDER, dwell=0)
    with pytest.raises(ValueError):
        RateController(DEFAULT_LADDER, up_margin_db=-1.0)
    with pytest.raises(ValueError):
        RateController(DEFAULT_LADDER,
                       initial=LinkConfig("fm0_ook", 187.5))


# -- convergence properties ---------------------------------------------------


@PROP
@given(q_lo=quality, q_hi=quality)
def test_steady_state_rung_is_monotone_in_quality(q_lo, q_hi):
    if q_lo > q_hi:
        q_lo, q_hi = q_hi, q_lo
    lo, hi = RateController(DEFAULT_LADDER), RateController(DEFAULT_LADDER)
    for _ in range(3 * len(DEFAULT_LADDER)):
        lo.observe("tag", q_lo)
        hi.observe("tag", q_hi)
    assert _index(lo, "tag") <= _index(hi, "tag")


@PROP
@given(q=quality)
def test_constant_quality_converges_and_stays(q):
    controller = RateController(DEFAULT_LADDER)
    for _ in range(3 * len(DEFAULT_LADDER)):
        controller.observe("tag", q)
    settled = controller.config_for("tag")
    switches = controller.switch_count("tag")
    # Converged: the rung's own hysteresis band contains q.
    step = controller.ladder[_index(controller, "tag")]
    assert q >= step.min_quality_db - controller.down_margin_db
    for _ in range(3 * len(DEFAULT_LADDER)):
        controller.observe("tag", q)
    assert controller.config_for("tag") == settled
    assert controller.switch_count("tag") == switches  # no oscillation


@PROP
@given(q=quality, jitter=st.floats(min_value=0.0, max_value=0.4))
def test_small_jitter_never_causes_flapping(q, jitter):
    """Quality wobble strictly inside the hysteresis margins commits at
    most one upgrade chain — never a down-up-down flap."""
    controller = RateController(DEFAULT_LADDER)
    for i in range(4 * len(DEFAULT_LADDER)):
        controller.observe("tag", q + (jitter if i % 2 else -jitter))
    settled = controller.switch_count("tag")
    for i in range(4 * len(DEFAULT_LADDER)):
        controller.observe("tag", q + (jitter if i % 2 else -jitter))
    assert controller.switch_count("tag") == settled


@PROP
@given(q=quality)
def test_downgrade_is_immediate(q):
    controller = RateController(DEFAULT_LADDER)
    for _ in range(3 * len(DEFAULT_LADDER)):
        controller.observe("tag", 30.0)
    top = _index(controller, "tag")
    assert top == len(DEFAULT_LADDER) - 1
    config = controller.observe("tag", q)
    expected = max(
        i for i, step in enumerate(controller.ladder)
        if step.min_quality_db <= q
    ) if q < 30.0 - controller.down_margin_db else top
    if q < controller.ladder[top].min_quality_db - controller.down_margin_db:
        # One bad observation is enough to vacate a failing rung.
        assert config == controller.ladder[expected].config


@PROP
@given(qualities=st.lists(quality, min_size=1, max_size=24))
def test_history_and_switch_count_are_consistent(qualities):
    controller = RateController(DEFAULT_LADDER)
    for q in qualities:
        controller.observe("tag", q)
    history = controller.history("tag")
    assert history[0][1] == DEFAULT_LADDER[0].config.label
    assert controller.switch_count("tag") == len(history) - 1
    assert history[-1][1] == controller.config_for("tag").label
    counts = [entry[0] for entry in history]
    assert counts == sorted(counts)


# -- telemetry-driven updates -------------------------------------------------


def _snapshot(pairs):
    registry = telemetry.MetricsRegistry()
    for tag, q in pairs:
        histogram = registry.histogram(
            QUALITY_METRIC, bounds=QUALITY_HISTOGRAM_BOUNDS_DB, tag=tag
        )
        for _ in range(4):
            histogram.observe(q)
    return registry.snapshot()


@PROP
@given(
    perm=st.permutations(
        [("tag1", 8.0), ("tag2", 15.0), ("tag3", 21.0), ("tag4", 27.0)]
    )
)
def test_update_from_snapshot_is_order_independent(perm):
    """The plan is a function of the snapshot's content, not of label
    enumeration order (dict/registry insertion order must wash out)."""
    reference = RateController(DEFAULT_LADDER)
    shuffled = RateController(DEFAULT_LADDER)
    for _ in range(3 * len(DEFAULT_LADDER)):
        reference.update_from_snapshot(
            _snapshot([("tag1", 8.0), ("tag2", 15.0), ("tag3", 21.0),
                       ("tag4", 27.0)])
        )
        shuffled.update_from_snapshot(_snapshot(perm))
    assert reference.plan() == shuffled.plan()


def test_update_from_snapshot_returns_decisions():
    controller = RateController(DEFAULT_LADDER)
    decisions = controller.update_from_snapshot(_snapshot([("tag1", 25.0)]))
    assert set(decisions) == {"tag1"}
    assert decisions["tag1"] == controller.config_for("tag1")
    # Snapshots without the quality metric are a no-op, not an error.
    registry = telemetry.MetricsRegistry()
    registry.counter("waveform.slots").inc()
    assert controller.update_from_snapshot(registry.snapshot()) == {}


def test_update_ignores_unlabelled_series():
    controller = RateController(DEFAULT_LADDER)
    registry = telemetry.MetricsRegistry()
    registry.histogram(
        QUALITY_METRIC, bounds=QUALITY_HISTOGRAM_BOUNDS_DB
    ).observe(20.0)
    assert controller.update_from_snapshot(registry.snapshot()) == {}
