"""Tests for packet structures (Fig. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.packets import (
    DL_FRAME_BITS,
    DownlinkBeacon,
    MAX_PAYLOAD,
    MAX_TID,
    PacketError,
    UL_FRAME_BITS,
    UplinkPacket,
    find_ul_frames,
)


class TestUplinkPacket:
    def test_frame_is_32_bits(self):
        assert UL_FRAME_BITS == 32
        assert len(UplinkPacket(0, 0).to_bits()) == 32

    @given(
        st.integers(min_value=0, max_value=MAX_TID),
        st.integers(min_value=0, max_value=MAX_PAYLOAD),
    )
    def test_roundtrip(self, tid, payload):
        pkt = UplinkPacket(tid, payload)
        assert UplinkPacket.from_bits(pkt.to_bits()) == pkt

    def test_supports_16_tags(self):
        assert MAX_TID == 15
        UplinkPacket(15, 0)
        with pytest.raises(ValueError):
            UplinkPacket(16, 0)

    def test_payload_12_bits(self):
        assert MAX_PAYLOAD == 4095
        with pytest.raises(ValueError):
            UplinkPacket(0, 4096)

    @given(
        st.integers(min_value=0, max_value=MAX_TID),
        st.integers(min_value=0, max_value=MAX_PAYLOAD),
        st.integers(min_value=8, max_value=31),
    )
    def test_corrupted_body_rejected(self, tid, payload, pos):
        bits = UplinkPacket(tid, payload).to_bits()
        bits[pos] ^= 1
        with pytest.raises(PacketError):
            UplinkPacket.from_bits(bits)

    def test_bad_preamble_rejected(self):
        bits = UplinkPacket(1, 2).to_bits()
        bits[0] ^= 1
        with pytest.raises(PacketError):
            UplinkPacket.from_bits(bits)

    def test_wrong_length_rejected(self):
        with pytest.raises(PacketError):
            UplinkPacket.from_bits([0] * 31)


class TestDownlinkBeacon:
    def test_frame_is_10_bits(self):
        assert DL_FRAME_BITS == 10
        assert len(DownlinkBeacon().to_bits()) == 10

    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans())
    def test_roundtrip(self, ack, empty, reset, reserved):
        b = DownlinkBeacon(ack=ack, empty=empty, reset=reset, reserved=reserved)
        assert DownlinkBeacon.from_bits(b.to_bits()) == b

    def test_nack_is_absence_of_ack(self):
        assert DownlinkBeacon(ack=False).nack
        assert not DownlinkBeacon(ack=True).nack

    def test_dl_has_no_crc(self):
        # Sec. 4.2: 6-bit preamble + 4-bit CMD, nothing else.
        bits = DownlinkBeacon(ack=True, empty=True).to_bits()
        assert len(bits) == 6 + 4

    def test_bad_preamble_rejected(self):
        bits = DownlinkBeacon().to_bits()
        bits[0] ^= 1
        with pytest.raises(PacketError):
            DownlinkBeacon.from_bits(bits)


class TestFraming:
    def test_finds_frame_at_offset(self):
        pkt = UplinkPacket(5, 1234)
        stream = [0, 1, 1, 0, 0] + pkt.to_bits() + [1, 0]
        assert find_ul_frames(stream) == [pkt]

    def test_finds_multiple_frames(self):
        p1, p2 = UplinkPacket(1, 10), UplinkPacket(2, 20)
        stream = p1.to_bits() + [0, 0, 0] + p2.to_bits()
        assert find_ul_frames(stream) == [p1, p2]

    def test_corrupt_frame_skipped(self):
        bits = UplinkPacket(1, 10).to_bits()
        bits[20] ^= 1
        assert find_ul_frames(bits) == []

    def test_random_noise_yields_no_frames(self, rng):
        noise = list(rng.integers(0, 2, size=500))
        # A spurious CRC pass on random data has probability ~2^-8 per
        # preamble match; with a fixed seed this stream is clean.
        assert find_ul_frames(noise) == []

    def test_empty_stream(self):
        assert find_ul_frames([]) == []
