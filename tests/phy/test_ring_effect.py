"""End-to-end ring-effect test (Sec. 4.1).

The reason for "FSK in, OOK out": with naive OOK (silence for the OFF
level), the resonant plate keeps ringing after each voltage cutoff, so
the tag's envelope detector sees inflated pulse widths and the PIE
demodulator mis-slices.  Driving both downlink variants through the
*full* tag receive path (envelope detector -> comparator -> edge-ISR
demodulator) shows the tail corrupting naive OOK while the
FSK-in-OOK-out beacons decode cleanly.
"""

import numpy as np
import pytest

from repro.channel.pzt import PZTTransducer
from repro.hardware.firmware import PieEdgeDemodulator
from repro.phy.envelope import EnvelopeDetector, HysteresisComparator, edges
from repro.phy.modem import FskOokDownlink
from repro.phy.packets import DownlinkBeacon

#: A lightly-damped plate mode: the regime where the ring effect bites.
RINGY_PZT = PZTTransducer(q_factor=400.0)


def decode_through_tag_frontend(waveform, sample_rate_hz, raw_rate_bps):
    """Waveform -> envelope -> comparator -> edge interrupts -> beacons."""
    detector = EnvelopeDetector(rc_s=0.25e-3)
    env = detector.detect(waveform, sample_rate_hz)
    binary = HysteresisComparator(threshold_v=0.5, hysteresis_v=0.1).slice(env)
    demod = PieEdgeDemodulator(raw_rate_bps=raw_rate_bps)
    for t, level in edges(binary, sample_rate_hz):
        demod.on_edge(t, level)
    return demod.beacons


class TestRingEffect:
    @pytest.mark.parametrize("rate", [250.0, 500.0])
    def test_fsk_ook_decodes_despite_high_q(self, rate):
        beacon = DownlinkBeacon(ack=True, empty=True)
        dl = FskOokDownlink(pzt=RINGY_PZT)
        wave = dl.beacon_waveform(beacon.to_bits(), rate)
        decoded = decode_through_tag_frontend(wave, dl.sample_rate_hz, rate)
        assert decoded == [beacon]

    def test_naive_ook_fails_at_speed_where_fsk_survives(self):
        # At 500 bps the raw bit is 2 ms while the Q=400 tail decays
        # over ~1.4 ms — naive OOK's OFF gaps fill in, FSK-OOK's do not.
        beacon = DownlinkBeacon(ack=True, empty=True)
        rate = 500.0
        dl = FskOokDownlink(pzt=RINGY_PZT)

        fsk = decode_through_tag_frontend(
            dl.beacon_waveform(beacon.to_bits(), rate), dl.sample_rate_hz, rate
        )
        naive = decode_through_tag_frontend(
            dl.naive_ook_waveform(beacon.to_bits(), rate), dl.sample_rate_hz, rate
        )
        assert fsk == [beacon]
        assert naive != [beacon]

    def test_naive_ook_fine_when_tail_is_short(self):
        # With the stock damped PZT (Q=45, tau ~ 0.16 ms) and the slow
        # 250 bps downlink, even naive OOK decodes — the mitigation
        # matters precisely for high-Q structures and higher rates.
        beacon = DownlinkBeacon(ack=True)
        dl = FskOokDownlink()  # default Q=45
        decoded = decode_through_tag_frontend(
            dl.naive_ook_waveform(beacon.to_bits(), 250.0),
            dl.sample_rate_hz,
            250.0,
        )
        assert decoded == [beacon]

    def test_ring_tail_energy_scales_with_q(self):
        slow_decay = RINGY_PZT.ring_time_constant_s
        fast_decay = PZTTransducer(q_factor=45.0).ring_time_constant_s
        assert slow_decay > 8 * fast_decay
