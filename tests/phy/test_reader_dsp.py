"""Tests for the reader receive chain."""

import numpy as np
import pytest

from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket
from repro.phy.reader_dsp import BackPressureBuffer, ReaderReceiveChain


@pytest.fixture(scope="module")
def uplink():
    return BackscatterUplink()


@pytest.fixture(scope="module")
def chain():
    return ReaderReceiveChain()


def _roundtrip(uplink, chain, packet, rate, noise_psd, rng, amplitude=0.01, phase=0.7):
    comp = uplink.tag_component(
        packet.to_bits(), rate, amplitude, phase_rad=phase, lead_in_s=0.03
    )
    cap = uplink.capture([comp], noise_psd, rng, extra_samples=2000)
    return chain.decode(cap, rate)


class TestBackPressureBuffer:
    def test_push_pop_fifo(self):
        buf = BackPressureBuffer(capacity=3)
        for i in range(3):
            assert buf.push(i)
        assert buf.pop() == 0
        assert buf.pop() == 1

    def test_push_refused_when_full(self):
        buf = BackPressureBuffer(capacity=1)
        assert buf.push("a")
        assert not buf.push("b")
        buf.pop()
        assert buf.push("b")

    def test_pop_empty_returns_none(self):
        assert BackPressureBuffer().pop() is None

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            BackPressureBuffer(capacity=0)


class TestDecode:
    def test_noiseless_roundtrip(self, uplink, chain, rng):
        pkt = UplinkPacket(7, 3210)
        out = _roundtrip(uplink, chain, pkt, 375.0, 1e-14, rng)
        assert pkt in out.packets

    def test_realistic_noise_roundtrip(self, uplink, chain, rng):
        pkt = UplinkPacket(3, 123)
        decoded = 0
        for k in range(10):
            out = _roundtrip(
                uplink, chain, pkt, 375.0, 2.673e-10, rng, phase=0.6 * k
            )
            decoded += pkt in out.packets
        assert decoded >= 9

    def test_decode_at_3000bps(self, uplink, chain, rng):
        pkt = UplinkPacket(1, 55)
        out = _roundtrip(uplink, chain, pkt, 3000.0, 1e-12, rng, amplitude=0.02)
        assert pkt in out.packets

    def test_random_phase_immaterial(self, uplink, chain, rng):
        pkt = UplinkPacket(2, 99)
        for phase in (0.0, 1.0, 2.0, 3.0, 4.5, 6.0):
            out = _roundtrip(uplink, chain, pkt, 375.0, 1e-13, rng, phase=phase)
            assert pkt in out.packets, f"failed at phase {phase}"

    def test_noise_only_capture_decodes_nothing(self, uplink, chain, rng):
        cap = uplink.capture([], 2.673e-10, rng, extra_samples=120_000)
        out = chain.decode(cap, 375.0)
        assert out.packets == []

    def test_frequency_offset_reported(self, uplink, chain, rng):
        pkt = UplinkPacket(1, 1)
        out = _roundtrip(uplink, chain, pkt, 375.0, 1e-13, rng)
        assert abs(out.frequency_offset_hz) < 50.0

    def test_weak_signal_fails_gracefully(self, uplink, chain, rng):
        # 100x weaker than the noise floor: no decode, no crash.
        pkt = UplinkPacket(1, 1)
        out = _roundtrip(uplink, chain, pkt, 375.0, 2.673e-10, rng, amplitude=1e-5)
        assert out.packets == []


class TestBlocks:
    def test_schmitt_output_is_binary(self, chain, rng):
        projected = rng.normal(0, 1, 1000)
        out = chain.schmitt(projected)
        assert set(np.unique(out)) <= {0, 1}

    def test_schmitt_constant_input(self, chain):
        out = chain.schmitt(np.zeros(100))
        assert list(np.unique(out)) == [0]

    def test_sample_raw_bits_empty_without_transitions(self, chain):
        flat = np.ones(1000)
        assert chain.sample_raw_bits(flat, flat.astype(np.int8), 375.0, 4500.0) == []

    def test_invalid_hysteresis_raises(self):
        with pytest.raises(ValueError):
            ReaderReceiveChain(schmitt_hysteresis=1.5)

    def test_decimation_scales_with_rate(self, chain):
        assert chain._decimation_for(375.0) > chain._decimation_for(3000.0)
