"""Tests for the waveform synthesis caches."""

import math

import numpy as np
import pytest

from repro.phy import cache as phy_cache
from repro.phy.fm0 import fm0_encode
from repro.phy.pie import pie_encode


@pytest.fixture(autouse=True)
def isolated_caches():
    phy_cache.clear_caches()
    yield
    phy_cache.clear_caches()


class TestCarrierQuadrature:
    def test_matches_direct_evaluation_bit_exact(self):
        fs, f0 = 500_000.0, 90_000.0
        cos_t, sin_t = phy_cache.carrier_quadrature(5000, fs, f0)
        t = np.arange(5000) / fs
        np.testing.assert_array_equal(cos_t, np.cos(2 * math.pi * f0 * t))
        np.testing.assert_array_equal(sin_t, np.sin(2 * math.pi * f0 * t))

    def test_prefix_of_grown_table_is_stable(self):
        fs, f0 = 500_000.0, 90_000.0
        small, _ = phy_cache.carrier_quadrature(100, fs, f0)
        small = small.copy()
        # Force a regrow well past the first allocation.
        phy_cache.carrier_quadrature(50_000, fs, f0)
        regrown, _ = phy_cache.carrier_quadrature(100, fs, f0)
        np.testing.assert_array_equal(small, regrown)

    def test_views_are_read_only(self):
        cos_t, _ = phy_cache.carrier_quadrature(64, 500_000.0, 90_000.0)
        with pytest.raises(ValueError):
            cos_t[0] = 0.0

    def test_oversize_request_bypasses_cache(self):
        n = phy_cache.MAX_TABLE_SAMPLES + 1
        cos_t, _ = phy_cache.carrier_quadrature(n, 500_000.0, 90_000.0)
        assert len(cos_t) == n
        assert phy_cache.cache_sizes()["quadrature_tables"] == 0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            phy_cache.carrier_quadrature(-1, 500_000.0, 90_000.0)


class TestCarrierBlock:
    def test_zero_phase_bit_exact(self):
        fs, f0 = 500_000.0, 90_000.0
        block = phy_cache.carrier_block(3000, 0.25, fs, f0)
        t = np.arange(3000) / fs
        np.testing.assert_array_equal(block, 0.25 * np.cos(2 * math.pi * f0 * t))

    def test_nonzero_phase_close_to_direct(self):
        fs, f0 = 500_000.0, 90_000.0
        block = phy_cache.carrier_block(3000, 1.0, fs, f0, phase_rad=1.1)
        t = np.arange(3000) / fs
        direct = np.cos(2 * math.pi * f0 * t + 1.1)
        np.testing.assert_allclose(block, direct, rtol=0, atol=1e-12)

    def test_result_is_writable_copy(self):
        block = phy_cache.carrier_block(64, 1.0, 500_000.0, 90_000.0)
        block[0] = 42.0  # must not poison the shared table
        fresh = phy_cache.carrier_block(64, 1.0, 500_000.0, 90_000.0)
        assert fresh[0] == 1.0


class TestMixer:
    def test_matches_exp(self):
        fs, f0 = 500_000.0, 90_000.0
        lo = phy_cache.mixer(4000, fs, f0)
        t = np.arange(4000) / fs
        direct = np.exp(-2j * math.pi * f0 * t)
        np.testing.assert_allclose(lo, direct, rtol=0, atol=1e-12)

    def test_prefix_reuse(self):
        big = phy_cache.mixer(8192, 500_000.0, 90_000.0)
        small = phy_cache.mixer(100, 500_000.0, 90_000.0)
        np.testing.assert_array_equal(small, big[:100])
        assert phy_cache.cache_sizes()["mixers"] == 1


class TestLineCodeMemo:
    def test_fm0_matches_plain_encode(self):
        bits = [1, 0, 1, 1, 0]
        assert list(phy_cache.fm0_raw(bits)) == list(fm0_encode(bits))
        assert list(phy_cache.fm0_raw(bits, initial_level=0)) == list(
            fm0_encode(bits, 0)
        )

    def test_pie_matches_plain_encode(self):
        bits = [0, 1, 1, 0]
        assert list(phy_cache.pie_raw(bits)) == list(pie_encode(bits))

    def test_memo_counts_distinct_keys(self):
        phy_cache.fm0_raw([1, 0])
        phy_cache.fm0_raw([1, 0])  # same key — no new entry
        phy_cache.fm0_raw([0, 1])
        assert phy_cache.cache_sizes()["fm0_encodings"] == 2


class TestInvalidation:
    def test_clear_caches_empties_everything(self):
        phy_cache.carrier_quadrature(1000, 500_000.0, 90_000.0)
        phy_cache.mixer(1000, 500_000.0, 90_000.0)
        phy_cache.butter_lowpass_sos(4, 0.1)
        phy_cache.fm0_raw([1, 0, 1])
        phy_cache.pie_raw([1, 0])
        assert any(phy_cache.cache_sizes().values())
        phy_cache.clear_caches()
        sizes = phy_cache.cache_sizes()
        # The kernel dispatch table is pinned per process, not a value
        # cache — clear_caches() leaves the loaded backend in place.
        sizes.pop("compiled_kernels")
        assert not any(sizes.values())

    def test_results_identical_after_clear(self):
        before = phy_cache.carrier_block(2048, 0.5, 500_000.0, 90_000.0)
        phy_cache.clear_caches()
        after = phy_cache.carrier_block(2048, 0.5, 500_000.0, 90_000.0)
        np.testing.assert_array_equal(before, after)


class TestButterCache:
    def test_design_matches_scipy(self):
        from scipy.signal import butter

        sos = phy_cache.butter_lowpass_sos(4, 0.12)
        np.testing.assert_array_equal(sos, butter(4, 0.12, output="sos"))

    def test_design_cached_once(self):
        phy_cache.butter_lowpass_sos(4, 0.12)
        phy_cache.butter_lowpass_sos(4, 0.12)
        assert phy_cache.cache_sizes()["butter_designs"] == 1


class TestTagTemplates:
    FS, F0, RATE = 500_000.0, 90_000.0, 375.0

    def _template(self, bits=(1, 0, 1, 1)):
        raw = phy_cache.fm0_raw(bits)
        return phy_cache.tag_template(raw, self.RATE, self.FS, self.F0,
                                      0.1, 600, 600)

    def test_same_key_returns_same_object(self):
        assert self._template() is self._template()

    def test_distinct_bits_distinct_templates(self):
        a = self._template((1, 0, 1, 1))
        b = self._template((1, 1, 1, 1))
        assert a is not b
        assert phy_cache.cache_sizes()["tag_templates"] == 2

    def test_lru_bound_holds(self):
        for payload in range(phy_cache.MAX_TEMPLATES + 16):
            bits = [int(b) for b in format(payload, "010b")]
            self._template(tuple(bits))
        assert phy_cache.cache_sizes()["tag_templates"] == phy_cache.MAX_TEMPLATES

    def test_profile_read_only(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            self._template().profile[0] = 0.0

    def test_baseband_views_read_only(self):
        bc, bs = self._template().baseband(50, 20_000, 750.0, 111)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            bc[0] = 0.0
        with _pytest.raises(ValueError):
            bs[0] = 0.0

    def test_counted_in_clear_and_sizes(self):
        template = self._template()
        template.baseband(0, 20_000, 750.0, 111)
        phy_cache.leak_baseband(20_000, 0.2, self.FS, self.F0, 750.0, 111)
        sizes = phy_cache.cache_sizes()
        assert sizes["tag_templates"] == 1
        assert sizes["tag_template_samples"] > 0
        assert sizes["leak_basebands"] == 1
        assert sizes["leak_baseband_samples"] > 0
        phy_cache.clear_caches()
        sizes = phy_cache.cache_sizes()
        assert sizes["tag_templates"] == 0
        assert sizes["leak_basebands"] == 0


class TestLeakBaseband:
    def test_prefix_property(self):
        short = phy_cache.leak_baseband(
            10_000, 0.2, 500_000.0, 90_000.0, 750.0, 111
        )[: -(-10_000 // 111)].copy()
        longer = phy_cache.leak_baseband(
            80_000, 0.2, 500_000.0, 90_000.0, 750.0, 111
        )
        np.testing.assert_array_equal(short, longer[: len(short)])

    def test_matches_direct_downconvert(self):
        from repro.phy.iq import downconvert

        bb = phy_cache.leak_baseband(
            20_000, 0.2, 500_000.0, 90_000.0, 750.0, 111
        )
        direct = downconvert(
            phy_cache.carrier_block(len(bb) * 111, 0.2, 500_000.0, 90_000.0),
            500_000.0, 90_000.0, cutoff_hz=750.0, decimation=111,
        )
        np.testing.assert_array_equal(bb, direct[: len(bb)])


class TestHitRatios:
    def test_reads_explicit_counters(self):
        ratios = phy_cache.hit_ratios(
            {"cache.template.hit": 3, "cache.template.miss": 1,
             "cache.leak.hit": 8}
        )
        assert ratios["template"] == {"hits": 3, "misses": 1, "hit_ratio": 0.75}
        assert ratios["leak"]["hit_ratio"] == 1.0
        assert "carrier" not in ratios

    def test_defaults_to_process_registry(self):
        from repro import perf

        perf.reset()
        template = phy_cache.tag_template(
            phy_cache.fm0_raw([1, 0, 1]), 375.0, 500_000.0, 90_000.0,
            0.1, 600, 600,
        )
        template.baseband(0, 20_000, 750.0, 111)  # miss
        template.baseband(0, 20_000, 750.0, 111)  # hit
        ratios = phy_cache.hit_ratios()
        assert ratios["template"]["hits"] == 1
        assert ratios["template"]["misses"] == 1
        perf.reset()
