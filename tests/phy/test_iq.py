"""Tests for IQ processing and collision detection."""

import numpy as np
import pytest

from repro.phy.iq import (
    cluster_iq,
    correct_frequency_offset,
    detect_collision,
    downconvert,
    frequency_offset_estimate,
)
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket


@pytest.fixture(scope="module")
def uplink():
    return BackscatterUplink()


def _capture(uplink, n_tags, seed=0, amplitudes=(0.02, 0.012, 0.008)):
    rng = np.random.default_rng(seed)
    comps = [
        uplink.tag_component(
            UplinkPacket(i + 1, 100 * (i + 1)).to_bits(),
            375.0,
            amplitudes[i],
            phase_rad=0.5 + 1.9 * i,
        )
        for i in range(n_tags)
    ]
    return uplink.capture(comps, 2.673e-10, rng, extra_samples=3000)


class TestDownconvert:
    def test_carrier_becomes_dc(self):
        fs, fc = 500_000.0, 90_000.0
        t = np.arange(50_000) / fs
        wave = np.cos(2 * np.pi * fc * t)
        iq = downconvert(wave, fs, fc, cutoff_hz=2000.0, decimation=25)
        settled = iq[len(iq) // 2 :]
        # A pure carrier lands on a constant phasor of magnitude A/2.
        assert np.std(np.abs(settled)) < 0.01
        assert np.mean(np.abs(settled)) == pytest.approx(0.5, rel=0.05)

    def test_decimation_reduces_rate(self):
        wave = np.zeros(1000)
        assert len(downconvert(wave, decimation=25)) == 40

    def test_invalid_decimation_raises(self):
        with pytest.raises(ValueError):
            downconvert(np.zeros(100), decimation=0)


class TestFrequencyOffset:
    def test_estimates_known_offset(self):
        fs = 20_000.0
        n = np.arange(5000)
        iq = np.exp(2j * np.pi * 37.0 * n / fs)
        assert frequency_offset_estimate(iq, fs) == pytest.approx(37.0, abs=0.5)

    def test_correction_removes_rotation(self):
        fs = 20_000.0
        n = np.arange(5000)
        iq = np.exp(2j * np.pi * 37.0 * n / fs)
        fixed = correct_frequency_offset(iq, 37.0, fs)
        assert frequency_offset_estimate(fixed, fs) == pytest.approx(0.0, abs=0.5)

    def test_short_input_returns_zero(self):
        assert frequency_offset_estimate(np.array([1 + 0j]), 1000.0) == 0.0


class TestClusterCounting:
    def test_single_modulator_two_clusters(self, uplink):
        result = detect_collision(_capture(uplink, 1))
        assert result.n_clusters == 2
        assert not result.collision

    def test_two_modulators_more_than_two_clusters(self, uplink):
        result = detect_collision(_capture(uplink, 2))
        assert result.n_clusters > 2
        assert result.collision

    def test_three_modulators_collision(self, uplink):
        assert detect_collision(_capture(uplink, 3)).collision

    def test_empty_slot_single_blob(self, uplink):
        rng = np.random.default_rng(3)
        cap = uplink.capture([], 2.673e-10, rng, extra_samples=100_000)
        result = detect_collision(cap)
        assert result.n_clusters == 1
        assert not result.collision

    def test_detection_in_capture_regime(self, uplink):
        # The case that matters for protocol honesty: a dominant tag
        # whose packet the capture effect would decode.  There the
        # amplitude gap makes the extra modes clearly separable, and
        # detection must be near-certain (the medium models it at 98%).
        rng = np.random.default_rng(7)
        detected = 0
        trials = 20
        for trial in range(trials):
            comps = [
                uplink.tag_component(
                    UplinkPacket(1, trial).to_bits(),
                    375.0,
                    0.020,
                    phase_rad=float(rng.uniform(0, 2 * np.pi)),
                ),
                uplink.tag_component(
                    UplinkPacket(2, trial + 7).to_bits(),
                    375.0,
                    0.008,
                    phase_rad=float(rng.uniform(0, 2 * np.pi)),
                ),
            ]
            cap = uplink.capture(comps, 2.673e-10, rng, extra_samples=3000)
            detected += detect_collision(cap).collision
        assert detected >= 18

    def test_near_equal_collision_detection_is_imperfect_but_harmless(self, uplink):
        # Near-equal colliders sometimes merge in the IQ plane, but in
        # that regime neither packet decodes, so the reader NACKs the
        # slot regardless — the protocol never sees a false ACK.
        rng = np.random.default_rng(7)
        detected = 0
        for trial in range(10):
            comps = [
                uplink.tag_component(
                    UplinkPacket(i + 1, 50 * trial + i).to_bits(),
                    375.0,
                    0.015 - 0.004 * i,
                    phase_rad=float(rng.uniform(0, 2 * np.pi)),
                )
                for i in range(2)
            ]
            cap = uplink.capture(comps, 2.673e-10, rng, extra_samples=3000)
            detected += detect_collision(cap).collision
        assert detected >= 4  # majority-ish, never required to be perfect

    def test_cluster_iq_empty_input(self):
        result = cluster_iq([])
        assert result.n_clusters == 0

    def test_cluster_centers_near_true_levels(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.02, 500) + 1j * rng.normal(0, 0.02, 500)
        b = 2.0 + rng.normal(0, 0.02, 500) + 1j * rng.normal(0, 0.02, 500)
        result = cluster_iq(np.concatenate([a, b]))
        assert result.n_clusters == 2
        reals = sorted(c.real for c in result.centers)
        assert reals[0] == pytest.approx(0.0, abs=0.2)
        assert reals[1] == pytest.approx(2.0, abs=0.2)
