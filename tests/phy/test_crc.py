"""Tests for CRC-8 and bit packing."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.crc import (
    append_crc8,
    bits_to_int,
    check_crc8,
    crc8_bits,
    crc8_bytes,
    int_to_bits,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64)


class TestCrc8:
    def test_known_vector(self):
        # CRC-8/ATM of "123456789" is 0xF4.
        assert crc8_bytes(b"123456789") == 0xF4

    def test_bits_and_bytes_agree(self):
        data = b"\xa5\x3c"
        bits = []
        for byte in data:
            bits.extend(int_to_bits(byte, 8))
        assert crc8_bits(bits) == crc8_bytes(data)

    def test_empty_is_init(self):
        assert crc8_bits([]) == 0

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            crc8_bits([0, 2, 1])

    @given(bit_lists)
    def test_append_then_check_passes(self, bits):
        assert check_crc8(append_crc8(bits))

    @given(bit_lists, st.integers(min_value=0))
    def test_single_bit_flip_detected(self, bits, pos):
        framed = append_crc8(bits)
        framed[pos % len(framed)] ^= 1
        assert not check_crc8(framed)

    def test_burst_error_detected(self):
        framed = append_crc8([1, 0, 1, 1, 0, 0, 1, 0] * 3)
        for i in range(4, 9):  # 5-bit burst
            framed[i] ^= 1
        assert not check_crc8(framed)

    def test_too_short_fails(self):
        assert not check_crc8([1, 0, 1])


class TestBitPacking:
    @given(st.integers(min_value=0, max_value=4095))
    def test_roundtrip_12bit(self, value):
        assert bits_to_int(int_to_bits(value, 12)) == value

    def test_msb_first(self):
        assert int_to_bits(0b1000, 4) == [1, 0, 0, 0]

    def test_width_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)

    def test_bits_to_int_validates(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 1, 3])
