"""RelayFallbackPolicy: engage on demote/absence, release on recovery,
re-route around dead relays, and freeze under a stale relay table."""

import pytest

from repro.channel import deep_structure
from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults import FaultEvent, FaultSchedule
from repro.relay import RelaySlottedNetwork
from repro.resilience import (
    NetworkSupervisor,
    RelayFallbackPolicy,
    default_policies,
)


def deep_network(seed=3, **kwargs) -> RelaySlottedNetwork:
    periods = {f"tag{i}": 8 for i in range(1, 7)}
    return RelaySlottedNetwork(
        periods,
        config=NetworkConfig(seed=seed),
        medium=AcousticMedium(biw=deep_structure(), reference_tag="tag1"),
        **kwargs,
    )


def supervised(net, policy=None):
    policies = default_policies() + [policy or RelayFallbackPolicy()]
    return NetworkSupervisor(net, policies=policies)


def actions(sup, action):
    return [a for a in sup.actions if a.action == action]


class TestEngage:
    def test_absent_shadowed_tags_get_routes(self):
        net = deep_network()
        sup = supervised(net)
        sup.run(200)
        # The depth>=3 tags never decoded at all: the absent path must
        # catch them even though the monitor has no expectations.
        assert set(net.routes) == {"tag4", "tag5", "tag6"}
        engages = actions(sup, "relay_engage")
        assert {a.tag for a in engages} == {"tag4", "tag5", "tag6"}
        assert all("absent" in a.detail for a in engages)

    def test_demoted_tag_gets_route(self):
        # tag2 commits while healthy, then a massive attenuation fault
        # kills its direct uplink: the monitor's missed expected slot
        # must trigger engagement through the demote path.  A silently
        # dead uplink yields exactly one countable miss before the
        # commitment expires, so the demote threshold is 1 here; the
        # default threshold targets collision-pinned tags and leaves
        # dead uplinks to the absent path.
        schedule = FaultSchedule(
            [
                FaultEvent(
                    slot=300,
                    duration=400,
                    kind="attenuation",
                    target="tag2",
                    magnitude=60.0,
                )
            ]
        )
        net = deep_network(faults=schedule)
        sup = NetworkSupervisor(
            net, policies=[RelayFallbackPolicy(engage_misses=1)]
        )
        sup.run(600)
        assert "tag2" in net.routes
        engages = [a for a in actions(sup, "relay_engage") if a.tag == "tag2"]
        assert engages and "demoted" in engages[0].detail

    def test_policy_inert_on_plain_network(self):
        net = SlottedNetwork(
            {"tag8": 4, "tag4": 8}, config=NetworkConfig(seed=3)
        )
        sup = supervised(net)
        sup.run(200)
        assert actions(sup, "relay_engage") == []

    def test_no_routes_on_disabled_relay_network(self):
        net = deep_network(relaying_enabled=False)
        sup = supervised(net)
        sup.run(300)
        assert net.routes == {}

    def test_validation(self):
        for kwargs in (
            {"engage_misses": 0},
            {"absent_after_periods": 0},
            {"reroute_failures": 0},
            {"retry_every_periods": 0},
        ):
            with pytest.raises(ValueError):
                RelayFallbackPolicy(**kwargs)


class TestRelease:
    def test_direct_recovery_releases_the_route(self):
        # The attenuation window ends at slot 700: afterwards tag2's
        # direct probes decode again and the policy must tear the route
        # down (and tag2 re-commits as a normal tag).
        schedule = FaultSchedule(
            [
                FaultEvent(
                    slot=300,
                    duration=400,
                    kind="attenuation",
                    target="tag2",
                    magnitude=60.0,
                )
            ]
        )
        net = deep_network(faults=schedule)
        sup = supervised(net)
        sup.run(1100)
        assert "tag2" not in net.routes
        releases = [a for a in actions(sup, "relay_release") if a.tag == "tag2"]
        assert releases, "route was never released after recovery"
        assert "tag2" in net.reader.committed_assignments


class TestReroute:
    def test_dead_relay_triggers_reroute(self):
        # tag5's route runs via tag4>tag3; browning tag4 out mid-route
        # racks up forwarding failures until the policy re-routes around
        # it (tag5 -> tag3 directly skips the dead rung if admissible,
        # else the route changes shape some other way).
        net = deep_network()
        sup = supervised(net)
        sup.run(200)
        before = net.routes["tag5"].chain
        assert "tag4" in before
        schedule_net_ctl = net._faults
        assert schedule_net_ctl is None  # no controller yet in this run
        # Re-run with the brownout baked into a schedule instead.
        schedule = FaultSchedule(
            [
                FaultEvent(
                    slot=260,
                    duration=300,
                    kind="relay_brownout",
                    target="tag4",
                )
            ]
        )
        net = deep_network(faults=schedule)
        sup = supervised(net)
        sup.run(600)
        reroutes = [
            a
            for a in sup.actions
            if a.action in ("relay_reroute", "relay_reroute_failed")
        ]
        assert reroutes, "no reroute attempt despite a dead relay"

    def test_stale_table_freezes_rerouting(self):
        # Same dead relay, but with relay_table_stale active the policy
        # must neither re-route nor engage new routes: the route keeps
        # limping through its dead relay.
        schedule = FaultSchedule(
            [
                FaultEvent(
                    slot=260,
                    duration=340,
                    kind="relay_table_stale",
                    target="*",
                ),
                FaultEvent(
                    slot=280,
                    duration=300,
                    kind="relay_brownout",
                    target="tag4",
                ),
            ]
        )
        net = deep_network(faults=schedule)
        sup = supervised(net)
        sup.run(250)
        chains_before = {s: r.chain for s, r in net.routes.items()}
        assert "tag4" in chains_before.get("tag5", ())
        sup.run(300)  # the stale window covers the whole brownout
        assert net.routes["tag5"].chain == chains_before["tag5"]
        assert not [
            a
            for a in sup.actions
            if a.action == "relay_reroute" and 260 <= a.slot < 550
        ]
        assert net.routes["tag5"].failed_streak > 0
