"""Relay MAC and network mechanics: grants, forwarding, ACK override,
and the zero-cost-when-off differential contract."""

from dataclasses import asdict

import pytest

from repro.channel import deep_structure
from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults import FaultEvent, FaultSchedule
from repro.relay import RelaySlottedNetwork


def deep_medium() -> AcousticMedium:
    return AcousticMedium(biw=deep_structure(), reference_tag="tag1")


def deep_network(seed=3, **kwargs) -> RelaySlottedNetwork:
    periods = {f"tag{i}": 8 for i in range(1, 7)}
    return RelaySlottedNetwork(
        periods,
        config=NetworkConfig(seed=seed),
        medium=deep_medium(),
        **kwargs,
    )


def settle(net, n=200):
    net.run(n)
    return net


class TestGrants:
    def test_grant_is_conflict_free_and_reserved(self):
        net = settle(deep_network())
        route = net.engage_route("tag4")
        assert route is not None
        reader = net.reader
        grant = reader.forward_grants["tag4"]
        # The grant never collides with a committed tag's pattern.
        for tag, offset in reader.committed_assignments.items():
            period = reader.tag_periods[tag]
            for slot in range(128):
                hits_grant = slot % grant.period == grant.offset
                hits_tag = slot % period == offset
                assert not (hits_grant and hits_tag)

    def test_engage_releases_direct_commitment(self):
        net = settle(deep_network())
        net.reader._committed["tag4"] = 1  # force a stale commitment
        net.engage_route("tag4")
        assert "tag4" not in net.reader.committed_assignments

    def test_double_engage_rejected(self):
        net = settle(deep_network())
        assert net.engage_route("tag4") is not None
        with pytest.raises(ValueError):
            net.engage_route("tag4")

    def test_unknown_source_rejected(self):
        net = deep_network()
        with pytest.raises(KeyError):
            net.engage_route("tag99")

    def test_explicit_chain_validated(self):
        net = settle(deep_network())
        with pytest.raises(ValueError):
            net.engage_route("tag4", chain=())
        with pytest.raises(ValueError):
            net.engage_route("tag4", chain=("tag4",))
        with pytest.raises(KeyError):
            net.engage_route("tag4", chain=("tag99",))

    def test_release_frees_the_grant(self):
        net = settle(deep_network())
        net.engage_route("tag4")
        assert net.release_route("tag4", "test")
        assert "tag4" not in net.reader.forward_grants
        assert "tag4" not in net.routes
        assert not net.release_route("tag4")

    def test_disabled_network_never_engages(self):
        net = settle(deep_network(relaying_enabled=False))
        assert net.engage_route("tag4") is None
        assert net._relay_rng is None


class TestForwarding:
    def test_route_delivers_and_attributes_to_source(self):
        net = settle(deep_network())
        route = net.engage_route("tag4")
        engaged_at = net.reader.slot_index
        net.run(200)
        assert route.delivered > 3
        # Every credited delivery is a slot record attributing the
        # decode to the source in the granted pattern.
        grant_decodes = [
            r
            for r in net.records
            if r.slot >= engaged_at
            and r.decoded == "tag4"
            and r.acked
            and r.slot % route.period == route.grant_offset
        ]
        assert len(grant_decodes) == route.delivered

    def test_source_mac_settles_on_t2t_ack(self):
        # The relay-aware ACK override lets the shadowed source's MAC
        # state machine stabilise even though the reader never hears it
        # directly: it stops changing offsets once the first hop ACKs.
        net = settle(deep_network())
        net.engage_route("tag4")
        net.run(300)
        tag = net.tags["tag4"]
        offsets = set()
        for _ in range(64):
            net.step()
            if tag.transmitted_last_slot:
                offsets.add(tag.offset)
        assert len(offsets) == 1

    def test_multi_hop_chain_delivers(self):
        net = settle(deep_network())
        route = net.engage_route("tag6")
        assert route.chain == ("tag5", "tag4", "tag3")
        net.run(400)
        assert route.delivered > 5

    def test_grant_lost_on_reader_restart(self):
        net = settle(deep_network())
        net.engage_route("tag4")
        net.reader.restart()
        net.step()
        assert net.routes == {}
        assert any(k == "relay.release" and d == "grant_lost"
                   for _, k, _, d in net.relay_log)

    def test_relay_brownout_fails_forwards(self):
        schedule = FaultSchedule(
            [
                FaultEvent(
                    slot=300, duration=80, kind="relay_brownout", target="tag3"
                )
            ]
        )
        net = deep_network(faults=schedule)
        settle(net, 250)
        route = net.engage_route("tag4")
        net.run(200)
        assert route is net.routes.get("tag4")
        assert net.routes["tag4"].failed_streak >= 0
        assert route.dropped > 0  # frames died at the dark relay
        assert route.last_failed_relay == "tag3"


class TestZeroCostOff:
    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_relay_off_matches_plain_network(self, seed):
        periods = {"tag8": 4, "tag4": 8, "tag11": 8, "tag3": 16}
        plain = SlottedNetwork(dict(periods), config=NetworkConfig(seed=seed))
        off = RelaySlottedNetwork(
            dict(periods),
            config=NetworkConfig(seed=seed),
            relaying_enabled=False,
        )
        plain.run(400)
        off.run(400)
        assert [asdict(r) for r in plain.records] == [
            asdict(r) for r in off.records
        ]

    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_relay_off_matches_under_sparse_population(self, seed):
        periods = {"tag8": 16, "tag5": 32}
        plain = SlottedNetwork(dict(periods), config=NetworkConfig(seed=seed))
        off = RelaySlottedNetwork(
            dict(periods),
            config=NetworkConfig(seed=seed),
            relaying_enabled=False,
        )
        plain.run(400)
        off.run(400)
        assert [asdict(r) for r in plain.records] == [
            asdict(r) for r in off.records
        ]

    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_relay_off_matches_under_faults(self, seed):
        periods = {"tag8": 4, "tag4": 8, "tag11": 8}

        def schedule():
            return FaultSchedule.generate(
                seed=seed,
                n_slots=200,
                tags=sorted(periods),
                n_faults=4,
                start_slot=100,
            )

        plain = SlottedNetwork(
            dict(periods),
            config=NetworkConfig(seed=seed, ideal_channel=True),
            faults=schedule(),
        )
        off = RelaySlottedNetwork(
            dict(periods),
            config=NetworkConfig(seed=seed, ideal_channel=True),
            relaying_enabled=False,
            faults=schedule(),
        )
        plain.run(400)
        off.run(400)
        assert [asdict(r) for r in plain.records] == [
            asdict(r) for r in off.records
        ]
        assert plain.faults.trace.signature() == off.faults.trace.signature()

    def test_idle_relay_on_network_is_also_identical(self):
        # Even with relaying *enabled*, a network that never engages a
        # route must not diverge: the stream is created lazily.
        periods = {"tag8": 4, "tag4": 8}
        plain = SlottedNetwork(dict(periods), config=NetworkConfig(seed=7))
        idle = RelaySlottedNetwork(dict(periods), config=NetworkConfig(seed=7))
        plain.run(300)
        idle.run(300)
        assert [asdict(r) for r in plain.records] == [
            asdict(r) for r in idle.records
        ]
        assert idle._relay_rng is None
