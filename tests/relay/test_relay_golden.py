"""Golden-trace regression for the relay tier: the canonical rescue
scenario — a junction ladder with relay-tier faults under a supervised
relay network — must replay byte-for-byte against a checked-in JSON
document.

Regenerate (after an intentional behaviour change) with::

    PYTHONPATH=src python -m pytest tests/relay/test_relay_golden.py --regen-golden

and review the golden diff like any other code change.
"""

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.channel import deep_structure
from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig
from repro.faults import FaultEvent, FaultSchedule
from repro.relay import RelaySlottedNetwork
from repro.resilience import (
    NetworkSupervisor,
    RelayFallbackPolicy,
    default_policies,
)

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "relay_rescue.json"

#: The pinned scenario: the six-tag junction ladder, where tag4 rides a
#: two-hop route (tag3 forwards) and the deeper tags chain through it,
#: stressed by a relay brownout mid-route and a stale-table window.
SCENARIO_SEEDS = (1, 3, 23)
SCENARIO_SLOTS = 400
SCENARIO_PERIODS = {f"tag{i}": 8 for i in range(1, 7)}


def scenario_schedule() -> FaultSchedule:
    return FaultSchedule(
        [
            FaultEvent(
                slot=200, duration=60, kind="relay_brownout", target="tag3"
            ),
            FaultEvent(
                slot=220, duration=100, kind="relay_table_stale", target="*"
            ),
        ]
    )


_RUN_CACHE = {}


def scenario_run(seed):
    """Each seed's supervised network executes once per test session."""
    if seed not in _RUN_CACHE:
        net = RelaySlottedNetwork(
            dict(SCENARIO_PERIODS),
            config=NetworkConfig(seed=seed),
            medium=AcousticMedium(biw=deep_structure(), reference_tag="tag1"),
            faults=scenario_schedule(),
        )
        sup = NetworkSupervisor(
            net, policies=default_policies() + [RelayFallbackPolicy()]
        )
        sup.run(SCENARIO_SLOTS)
        _RUN_CACHE[seed] = (net, sup)
    return _RUN_CACHE[seed]


def slot_log(net) -> list:
    return [asdict(r) for r in net.records]


def log_signature(log: list) -> str:
    blob = json.dumps(log, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_doc(seed) -> dict:
    net, sup = scenario_run(seed)
    log = slot_log(net)
    return {
        "slots": log,
        "signature": log_signature(log),
        "trace_signature": net.faults.trace.signature(),
        "relay_log": [list(entry) for entry in net.relay_log],
        "routes": {
            source: list(route.chain)
            for source, route in sorted(net.routes.items())
        },
        "policy_actions": [
            [a.slot, a.policy, a.tag, a.action]
            for a in sup.actions
            if a.policy == "relay_fallback"
        ],
    }


def full_doc() -> dict:
    return {
        "scenario": "relay_rescue",
        "n_slots": SCENARIO_SLOTS,
        "tag_periods": SCENARIO_PERIODS,
        "schedule_signature": scenario_schedule().signature(),
        "runs": {str(seed): run_doc(seed) for seed in SCENARIO_SEEDS},
    }


def load_or_regen(regen: bool) -> dict:
    if regen:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        doc = full_doc()
        GOLDEN_PATH.write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        return doc
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} missing — run pytest with --regen-golden"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
class TestGoldenRelay:
    def test_signature_matches_golden(self, seed, regen_golden):
        doc = load_or_regen(regen_golden)
        net, _ = scenario_run(seed)
        got = log_signature(slot_log(net))
        assert got == doc["runs"][str(seed)]["signature"], (
            f"seed {seed} drifted from its golden relay trace; if the "
            "change is intentional, regenerate with --regen-golden"
        )

    def test_full_slot_log_matches_golden(self, seed, regen_golden):
        doc = load_or_regen(regen_golden)
        net, _ = scenario_run(seed)
        assert slot_log(net) == doc["runs"][str(seed)]["slots"]

    def test_relay_log_and_routes_match_golden(self, seed, regen_golden):
        doc = load_or_regen(regen_golden)
        net, _ = scenario_run(seed)
        run = doc["runs"][str(seed)]
        assert [list(e) for e in net.relay_log] == run["relay_log"]
        assert {
            s: list(r.chain) for s, r in sorted(net.routes.items())
        } == run["routes"]

    def test_trace_and_policy_actions_match_golden(self, seed, regen_golden):
        doc = load_or_regen(regen_golden)
        net, sup = scenario_run(seed)
        run = doc["runs"][str(seed)]
        assert net.faults.trace.signature() == run["trace_signature"]
        assert [
            [a.slot, a.policy, a.tag, a.action]
            for a in sup.actions
            if a.policy == "relay_fallback"
        ] == run["policy_actions"]


class TestGoldenMachinery:
    def test_metadata_pins_the_setup(self, regen_golden):
        doc = load_or_regen(regen_golden)
        assert doc["scenario"] == "relay_rescue"
        assert doc["n_slots"] == SCENARIO_SLOTS
        assert doc["tag_periods"] == SCENARIO_PERIODS
        assert doc["schedule_signature"] == scenario_schedule().signature()

    def test_scenario_actually_relays(self, regen_golden):
        # The pinned trace is a rescue, not a quiet run: routes engage
        # and frames deliver in every seed.
        doc = load_or_regen(regen_golden)
        for seed, run in doc["runs"].items():
            assert run["routes"], f"seed {seed} engaged no routes"
            kinds = {entry[1] for entry in run["relay_log"]}
            assert "relay.engage" in kinds
            assert "relay.deliver" in kinds

    def test_repeat_runs_are_byte_identical(self):
        seed = SCENARIO_SEEDS[0]
        net = RelaySlottedNetwork(
            dict(SCENARIO_PERIODS),
            config=NetworkConfig(seed=seed),
            medium=AcousticMedium(biw=deep_structure(), reference_tag="tag1"),
            faults=scenario_schedule(),
        )
        sup = NetworkSupervisor(
            net, policies=default_policies() + [RelayFallbackPolicy()]
        )
        sup.run(SCENARIO_SLOTS)
        cached, _ = scenario_run(seed)
        assert slot_log(net) == slot_log(cached)
        assert net.relay_log == cached.relay_log
