"""T2T link budget and relay-route selection."""

import pytest

from repro.channel import T2T_CONVERSION_LOSS_DB, deep_structure
from repro.channel.biw import DEEP_N_TAGS
from repro.channel.medium import AcousticMedium
from repro.relay import MAX_RELAY_HOPS, RelayTable


@pytest.fixture(scope="module")
def deep_medium() -> AcousticMedium:
    return AcousticMedium(biw=deep_structure(), reference_tag="tag1")


@pytest.fixture(scope="module")
def table(deep_medium) -> RelayTable:
    return RelayTable(deep_medium)


class TestDeepStructure:
    def test_tag_depths_count_junctions(self, deep_medium):
        biw = deep_medium.biw
        for k in range(1, DEEP_N_TAGS + 1):
            assert biw.junction_depth(f"tag{k}") == k - 1

    def test_needs_at_least_two_tags(self):
        with pytest.raises(ValueError):
            deep_structure(n_tags=1)

    def test_uplink_dies_at_depth_three(self, deep_medium):
        # The acceptance regime: the round-trip uplink pays every
        # junction twice, so depth >= 3 is dead while depth <= 2 is
        # healthy.
        for k in (1, 2, 3):
            assert deep_medium.uplink_packet_success(f"tag{k}", 375.0) > 0.99
        for k in (4, 5, 6):
            assert deep_medium.uplink_packet_success(f"tag{k}", 375.0) < 0.05

    def test_downlink_survives_everywhere(self, deep_medium):
        # One-way beacons pay each junction once: even the deepest tag
        # still hears the reader.
        for k in range(1, DEEP_N_TAGS + 1):
            assert deep_medium.beacon_loss_probability(f"tag{k}") < 0.01


class TestT2TBudget:
    def test_loss_chains_carrier_path_and_conversion(self, deep_medium):
        prop = deep_medium.propagation
        expected = (
            prop.link("reader", "tag4").loss_db
            + prop.link("tag4", "tag3").loss_db
            + T2T_CONVERSION_LOSS_DB
        )
        assert deep_medium.tag_to_tag_loss_db("tag4", "tag3") == pytest.approx(
            expected
        )

    def test_conversion_penalty_makes_t2t_weaker_than_echo(self, deep_medium):
        # A hop between adjacent tags is strictly lossier than the same
        # acoustic path alone: the receiving tag pays the
        # backscatter-of-backscatter conversion penalty.
        prop = deep_medium.propagation
        t2t = deep_medium.tag_to_tag_loss_db("tag2", "tag1")
        assert t2t > prop.link("tag2", "tag1").loss_db + prop.link(
            "reader", "tag2"
        ).loss_db

    def test_adjacent_hops_beat_skipping(self, deep_medium):
        # Each extra junction on the src->dst leg costs dB, so skipping
        # a rung is strictly worse than the adjacent hop.
        assert deep_medium.tag_to_tag_packet_success(
            "tag5", "tag4"
        ) > deep_medium.tag_to_tag_packet_success("tag5", "tag3")

    def test_success_in_unit_interval(self, deep_medium):
        for src in ("tag4", "tag6"):
            for dst in ("tag3", "tag5"):
                if src == dst:
                    continue
                p = deep_medium.tag_to_tag_packet_success(src, dst)
                assert 0.0 <= p <= 1.0


class TestRelayTable:
    def test_route_prefers_minimum_hops(self, table):
        # tag4 is one T2T hop from healthy tag3.
        chain = table.route_for(
            "tag4",
            terminals=["tag1", "tag2", "tag3"],
            intermediates=["tag1", "tag2", "tag3", "tag5", "tag6"],
        )
        assert chain == ("tag3",)

    def test_deepest_tag_gets_full_chain(self, table):
        chain = table.route_for(
            "tag6",
            terminals=["tag1", "tag2", "tag3"],
            intermediates=["tag1", "tag2", "tag3", "tag4", "tag5"],
        )
        assert chain == ("tag5", "tag4", "tag3")
        assert len(chain) + 1 <= MAX_RELAY_HOPS

    def test_exclusion_reroutes_or_fails(self, table):
        # Excluding the only viable first hop of tag6 kills the route:
        # tag6->tag4 skips a rung and falls below the link floor.
        chain = table.route_for(
            "tag6",
            terminals=["tag1", "tag2", "tag3"],
            intermediates=["tag1", "tag2", "tag3", "tag4", "tag5"],
            exclude=("tag5",),
        )
        assert chain is None

    def test_shadowed_terminal_rejected(self, table):
        # tag4's own uplink is dead, so it cannot terminate a route
        # even though it is a fine intermediate.
        chain = table.route_for(
            "tag5", terminals=["tag4"], intermediates=["tag4"]
        )
        assert chain is None

    def test_hop_bound_respected(self, deep_medium):
        # With only 3 total hops allowed, tag6 (which needs 4) has no
        # admissible route.
        tight = RelayTable(deep_medium, max_hops=3)
        chain = tight.route_for(
            "tag6",
            terminals=["tag1", "tag2", "tag3"],
            intermediates=["tag1", "tag2", "tag3", "tag4", "tag5"],
        )
        assert chain is None

    def test_cache_invalidates_on_channel_generation(self, deep_medium):
        table = RelayTable(deep_medium)
        before = table.t2t_success("tag4", "tag3")
        deep_medium.biw.set_joint_loss_offset_db(6.0)
        deep_medium.invalidate_channel_cache()
        try:
            degraded = table.t2t_success("tag4", "tag3")
            assert degraded < before
        finally:
            deep_medium.biw.set_joint_loss_offset_db(0.0)
            deep_medium.invalidate_channel_cache()

    def test_validation(self, deep_medium):
        with pytest.raises(ValueError):
            RelayTable(deep_medium, min_link_success=0.0)
        with pytest.raises(ValueError):
            RelayTable(deep_medium, min_uplink_success=1.5)
        with pytest.raises(ValueError):
            RelayTable(deep_medium, max_hops=1)
