"""Tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_records_events(self):
        tr = TraceRecorder()
        tr.emit(1.0, "tx", "tag1", slot=4)
        tr.emit(2.0, "rx", "reader")
        assert len(tr) == 2
        assert tr.records()[0]["slot"] == 4

    def test_kind_filter_drops_but_counts(self):
        tr = TraceRecorder(kinds=["tx"])
        tr.emit(1.0, "tx", "tag1")
        tr.emit(2.0, "rx", "reader")
        assert len(tr) == 1
        assert tr.count("rx") == 1
        assert tr.count("tx") == 1

    def test_records_query_by_kind_and_source(self):
        tr = TraceRecorder()
        tr.emit(1.0, "tx", "tag1")
        tr.emit(2.0, "tx", "tag2")
        tr.emit(3.0, "rx", "tag1")
        assert len(tr.records(kind="tx")) == 2
        assert len(tr.records(source="tag1")) == 2
        assert len(tr.records(kind="tx", source="tag1")) == 1

    def test_records_query_since(self):
        tr = TraceRecorder()
        for t in (1.0, 2.0, 3.0):
            tr.emit(t, "tick", "sim")
        assert len(tr.records(since=2.0)) == 2

    def test_series_extracts_field_values(self):
        tr = TraceRecorder()
        for i in range(4):
            tr.emit(float(i), "tx", "tag", slot=i * 10)
        assert tr.series("tx", "slot") == [0, 10, 20, 30]

    def test_record_get_with_default(self):
        tr = TraceRecorder()
        tr.emit(0.0, "tx", "tag")
        assert tr.records()[0].get("missing", -1) == -1

    def test_clear(self):
        tr = TraceRecorder()
        tr.emit(0.0, "tx", "tag")
        tr.clear()
        assert len(tr) == 0
        assert tr.count("tx") == 0
