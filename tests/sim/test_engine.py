"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import PeriodicTask, SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_schedule_in_is_relative(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_in(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [12.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append(3))
        sim.schedule_at(1.0, lambda: order.append(1))
        sim.schedule_at(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_scheduling_in_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.9, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_event_can_schedule_followup(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule_in(1.0, lambda: fired.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert sim.pending() == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert sim.peek_next_time() == 2.0


class TestHeapCompaction:
    """Armed-then-cancelled timers must not grow the queue without
    bound (the beacon-watchdog pattern runs for millions of slots)."""

    def test_queue_stays_bounded_under_arm_cancel_churn(self):
        sim = Simulator()
        for i in range(10_000):
            handle = sim.schedule_at(float(i + 1), lambda: None)
            handle.cancel()
        # Lazy cancellation plus compaction keeps the raw heap within a
        # small multiple of the live count (zero here), not O(churn).
        assert len(sim._queue) < 2 * Simulator.MIN_COMPACT_SIZE
        assert sim.pending() == 0

    def test_live_events_survive_compaction(self):
        sim = Simulator()
        fired = []
        for i in range(50):
            sim.schedule_at(float(i + 1), lambda i=i: fired.append(i))
        doomed = [
            sim.schedule_at(1000.0 + i, lambda: fired.append(-1))
            for i in range(500)
        ]
        for handle in doomed:
            handle.cancel()
        sim.run(until=100.0)
        assert fired == list(range(50))
        assert sim.pending() == 0

    def test_pending_is_exact_through_churn(self):
        sim = Simulator()
        handles = [sim.schedule_at(float(i + 1), lambda: None) for i in range(200)]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending() == 100
        for handle in handles[::2]:
            handle.cancel()  # double-cancel must not skew the count
        assert sim.pending() == 100
        sim.run()
        assert sim.pending() == 0

    def test_cancel_after_fire_does_not_skew_count(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run(until=1.5)
        handle.cancel()  # already popped; not in the queue any more
        assert sim.pending() == 1

    def test_small_queue_never_compacts(self):
        sim = Simulator()
        keep = sim.schedule_at(5.0, lambda: None)
        for _ in range(Simulator.MIN_COMPACT_SIZE // 2):
            sim.schedule_at(1.0, lambda: None).cancel()
        assert sim.pending() == 1
        assert sim.peek_next_time() == 5.0
        keep.cancel()


class TestRunControl:
    def test_run_until_stops_clock_at_boundary(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert sim.pending() == 1

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_respects_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending() == 6

    def test_run_returns_event_count(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule_at(float(i + 1), lambda: None)
        assert sim.run() == 3

    def test_step_on_empty_queue_returns_false(self):
        assert Simulator().step() is False

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_clock_is_monotonic(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.schedule_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)


class TestPeriodicTask:
    def test_fires_periodically(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, period=1.0, action=lambda: fired.append(sim.now))
        sim.run(until=3.5)
        assert fired == [0.0, 1.0, 2.0, 3.0]
        task.stop()

    def test_start_delay(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, period=1.0, action=lambda: fired.append(sim.now), start_delay=0.5)
        sim.run(until=2.6)
        assert fired == [0.5, 1.5, 2.5]

    def test_stop_halts_rearming(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, period=1.0, action=lambda: fired.append(sim.now))
        sim.run(until=1.5)
        task.stop()
        sim.run(until=10.0)
        assert fired == [0.0, 1.0]

    def test_non_positive_period_raises(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), period=0.0, action=lambda: None)
