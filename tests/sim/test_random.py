"""Tests for seeded random streams."""

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("x").integers(0, 1 << 30, size=10)
        b = RandomStreams(7).stream("x").integers(0, 1 << 30, size=10)
        assert list(a) == list(b)

    def test_different_names_decorrelated(self):
        rs = RandomStreams(7)
        a = rs.stream("a").integers(0, 1 << 30, size=10)
        b = rs.stream("b").integers(0, 1 << 30, size=10)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").integers(0, 1 << 30, size=10)
        b = RandomStreams(2).stream("x").integers(0, 1 << 30, size=10)
        assert list(a) != list(b)

    def test_stream_is_cached(self):
        rs = RandomStreams(0)
        assert rs.stream("x") is rs.stream("x")

    def test_fork_is_deterministic(self):
        a = RandomStreams(5).fork("tag3").stream("offset").integers(0, 100, size=5)
        b = RandomStreams(5).fork("tag3").stream("offset").integers(0, 100, size=5)
        assert list(a) == list(b)

    def test_fork_salts_differ(self):
        rs = RandomStreams(5)
        a = rs.fork("tag3").stream("offset").integers(0, 1 << 30, size=10)
        b = rs.fork("tag4").stream("offset").integers(0, 1 << 30, size=10)
        assert list(a) != list(b)

    def test_fork_independent_of_parent_usage(self):
        rs1 = RandomStreams(5)
        rs1.stream("noise").random(100)  # consume parent entropy
        a = rs1.fork("t").stream("x").integers(0, 1 << 30, size=5)
        b = RandomStreams(5).fork("t").stream("x").integers(0, 1 << 30, size=5)
        assert list(a) == list(b)

    def test_seed_property(self):
        assert RandomStreams(42).seed == 42
