"""Tests for the FDMA multi-channel extension."""

import pytest

from repro.core.network import NetworkConfig
from repro.core.slot_schedule import slot_utilization
from repro.experiments.configs import pattern
from repro.ext.fdma import FdmaChannelPlan, FdmaNetwork, assign_channels


class TestChannelPlan:
    def test_default_plan_three_channels(self):
        plan = FdmaChannelPlan()
        assert plan.n_channels == 3

    def test_spacing_supports_default_rate(self):
        # 375 bps FM0 needs ~750 Hz each side; 5.5 kHz spacing is ample.
        assert FdmaChannelPlan().supports_bit_rate(375.0)

    def test_spacing_rejects_wideband(self):
        assert not FdmaChannelPlan().supports_bit_rate(3000.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            FdmaChannelPlan(frequencies_hz=(90e3,), responses=(1.0, 0.5))

    def test_invalid_response_raises(self):
        with pytest.raises(ValueError):
            FdmaChannelPlan(frequencies_hz=(90e3,), responses=(1.5,))


class TestAssignment:
    def test_balances_utilization(self):
        periods = {f"t{i}": 4 for i in range(6)}
        groups = assign_channels(periods, 3)
        loads = [float(slot_utilization(g.values())) for g in groups]
        assert max(loads) - min(loads) < 1e-9  # perfectly balanced here

    def test_all_tags_assigned_exactly_once(self):
        periods = pattern("c3").tag_periods()
        groups = assign_channels(periods, 3)
        seen = [t for g in groups for t in g]
        assert sorted(seen) == sorted(periods)

    def test_single_channel_is_identity(self):
        periods = {"a": 4, "b": 8}
        groups = assign_channels(periods, 1)
        assert groups == [periods]

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            assign_channels({"a": 4}, 0)


class TestFdmaNetwork:
    def test_splits_over_capacity_demand(self, medium):
        # 12 tags at period 4 = utilisation 3.0: impossible on one
        # channel, exactly at capacity with three.
        periods = {f"tag{i}": 4 for i in range(1, 13)}
        net = FdmaNetwork(
            periods,
            medium=medium,
            config=NetworkConfig(seed=1, ideal_channel=True),
        )
        assert net.n_active_channels == 3
        t = net.run_until_converged(max_slots=50_000)
        assert t is not None

    def test_aggregate_goodput_exceeds_single_channel_capacity(self, medium):
        periods = {f"tag{i}": 4 for i in range(1, 13)}
        net = FdmaNetwork(
            periods,
            medium=medium,
            config=NetworkConfig(seed=2, ideal_channel=True),
        )
        net.run_until_converged(max_slots=50_000)
        net.run(400)
        # Three saturated channels: ~3 packets per wall-clock slot,
        # versus the hard 1.0 ceiling of the single-carrier system.
        assert net.aggregate_goodput() > 1.5
        assert net.capacity() == 3.0

    def test_rejects_rate_exceeding_spacing(self, medium):
        with pytest.raises(ValueError):
            FdmaNetwork(
                {"tag8": 4},
                medium=medium,
                config=NetworkConfig(ul_raw_rate_bps=3000.0),
            )

    def test_empty_channels_skipped(self, medium):
        net = FdmaNetwork(
            {"tag8": 4},
            medium=medium,
            config=NetworkConfig(ideal_channel=True),
        )
        assert net.n_active_channels == 1


class TestInterference:
    def test_cochannel_leakage_is_zero_db(self):
        plan = FdmaChannelPlan()
        assert plan.adjacent_leakage_db(0, 0, 375.0) == 0.0

    def test_leakage_falls_with_spacing(self):
        plan = FdmaChannelPlan()
        near = plan.adjacent_leakage_db(0, 1, 375.0)   # 5.5 kHz apart
        far = plan.adjacent_leakage_db(1, 2, 375.0)    # 11.5 kHz apart
        assert far < near < 0.0

    def test_leakage_grows_with_bandwidth(self):
        plan = FdmaChannelPlan()
        slow = plan.adjacent_leakage_db(0, 1, 375.0)
        fast = plan.adjacent_leakage_db(0, 1, 1500.0)
        assert fast > slow

    def test_worst_case_sir_healthy_at_default_rate(self, medium):
        from repro.core.network import NetworkConfig

        net = FdmaNetwork(
            {f"tag{i}": 4 for i in range(1, 13)},
            medium=medium,
            config=NetworkConfig(seed=1, ideal_channel=True),
        )
        # >10 dB: adjacent-channel interference never threatens OOK
        # decoding at the plan's spacing and the default bit rate.
        assert net.worst_case_sir_db() > 10.0

    def test_lockstep_run_counts_concurrency(self, medium):
        from repro.core.network import NetworkConfig

        net = FdmaNetwork(
            {f"tag{i}": 4 for i in range(1, 13)},
            medium=medium,
            config=NetworkConfig(seed=2, ideal_channel=True),
        )
        net.run(300)
        assert net.total_slots == 300
        # Three saturated channels transmit simultaneously essentially
        # always once converged.
        assert net.concurrent_slots > 200

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            FdmaChannelPlan().adjacent_leakage_db(0, 1, 0.0)

    def test_negative_run_raises(self, medium):
        from repro.core.network import NetworkConfig

        net = FdmaNetwork(
            {"tag8": 4}, medium=medium, config=NetworkConfig(ideal_channel=True)
        )
        with pytest.raises(ValueError):
            net.run(-1)
