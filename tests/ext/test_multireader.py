"""Tests for the multi-reader spatial-multiplexing extension."""

import pytest

from repro.core.network import NetworkConfig
from repro.experiments.configs import pattern
from repro.ext.multireader import (
    DEFAULT_SECOND_READER,
    MultiReaderDeployment,
    ReaderPlacement,
)


@pytest.fixture(scope="module")
def deployment():
    return MultiReaderDeployment()


class TestAssociation:
    def test_cargo_tags_switch_to_second_reader(self, deployment):
        assoc = deployment.association()
        assert "tag11" in assoc["reader2"]
        assert "tag10" in assoc["reader2"]

    def test_front_tags_keep_primary_reader(self, deployment):
        assoc = deployment.association()
        for t in ("tag1", "tag2", "tag5", "tag8"):
            assert t in assoc["reader"]

    def test_every_tag_associated_once(self, deployment):
        assoc = deployment.association()
        all_tags = [t for tags in assoc.values() for t in tags]
        assert sorted(all_tags) == sorted(deployment.tag_names())


class TestHarvestImprovement:
    def test_worst_case_charge_time_improves(self, deployment):
        single, multi = deployment.worst_case_improvement()
        assert single == pytest.approx(56.8, rel=0.05)
        assert multi < 0.8 * single

    def test_near_tags_unchanged(self, deployment):
        # tag8 stays with the primary reader at the same distance.
        assert deployment.best_reader("tag8") == "reader"
        assert deployment.charge_time_s("tag8") == pytest.approx(4.5, abs=0.1)

    def test_cargo_voltage_rises(self, deployment):
        v_single = deployment.propagation.link("reader", "tag11").amplitude_v
        v_multi = deployment.harvest_voltage("tag11")
        assert v_multi > 1.5 * v_single


class TestCoordination:
    def test_per_reader_networks_converge(self, deployment):
        nets = deployment.build_networks(
            pattern("c2").tag_periods(),
            NetworkConfig(seed=5, ideal_channel=True),
        )
        assert set(nets) == {"reader", "reader2"}
        for net in nets.values():
            assert net.run_until_converged(max_slots=50_000) is not None

    def test_smaller_domains_converge_faster_at_high_load(self, deployment):
        import numpy as np

        # Utilisation-1.0 is the regime where halving the domain helps.
        periods = pattern("c5").tag_periods()
        multi_times = []
        single_times = []
        for seed in range(4):
            nets = deployment.build_networks(
                periods, NetworkConfig(seed=seed, ideal_channel=True)
            )
            # Each reader's subdomain has utilisation well under 1.
            multi_times.append(
                max(
                    n.run_until_converged(max_slots=60_000) or 60_000
                    for n in nets.values()
                )
            )
            from repro.core.network import SlottedNetwork

            net = SlottedNetwork(
                periods, config=NetworkConfig(seed=seed, ideal_channel=True)
            )
            single_times.append(net.run_until_converged(max_slots=60_000) or 60_000)
        assert np.median(multi_times) < np.median(single_times)

    def test_custom_placement(self):
        d = MultiReaderDeployment(
            extra_readers=(ReaderPlacement("reader_front", "dashboard"),)
        )
        assert "reader_front" in d.readers
        assert d.best_reader("tag2") in ("reader", "reader_front")
