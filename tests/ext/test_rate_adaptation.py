"""Tests for per-tag uplink rate adaptation."""

import pytest

from repro.ext.rate_adaptation import (
    AVAILABLE_RATES_BPS,
    RateAdapter,
    RateAssignment,
)
from repro.phy.fm0 import fm0_frame_duration_s
from repro.phy.packets import UL_FRAME_BITS


@pytest.fixture(scope="module")
def adapter(medium):
    return RateAdapter(medium)


class TestAssignment:
    def test_near_tag_gets_fast_rate(self, adapter):
        a = adapter.assign("tag8")
        assert a.rate_bps >= 1500.0

    def test_far_tag_stays_conservative(self, adapter):
        # The cargo tags' ~0.5% loss at 3000 bps grazes the target, so
        # they back off while the near tags run flat out.
        a11 = adapter.assign("tag11")
        a8 = adapter.assign("tag8")
        assert a11.rate_bps < a8.rate_bps

    def test_every_assignment_meets_target_or_is_floor(self, adapter):
        for tag, a in adapter.assign_all().items():
            assert (
                a.packet_success >= adapter.target_success
                or a.rate_bps == min(AVAILABLE_RATES_BPS)
            )

    def test_rates_from_clock_divider_set(self, adapter):
        for a in adapter.assign_all().values():
            assert a.rate_bps in AVAILABLE_RATES_BPS

    def test_airtime_matches_rate(self, adapter):
        a = adapter.assign("tag8")
        assert a.airtime_s == pytest.approx(
            fm0_frame_duration_s(UL_FRAME_BITS, a.rate_bps)
        )

    def test_stricter_target_slows_rates(self, medium):
        lax = RateAdapter(medium, target_success=0.99)
        strict = RateAdapter(medium, target_success=0.9999)
        for tag in ("tag8", "tag4", "tag11"):
            assert strict.assign(tag).rate_bps <= lax.assign(tag).rate_bps

    def test_validation(self, medium):
        with pytest.raises(ValueError):
            RateAdapter(medium, target_success=1.5)
        with pytest.raises(ValueError):
            RateAdapter(medium, rates_bps=())


class TestFleetAccounting:
    def test_airtime_shrinks_vs_fixed_rate(self, adapter):
        periods = {"tag5": 4, "tag8": 4, "tag9": 8, "tag11": 8}
        base, adapted = adapter.airtime_savings(periods)
        assert adapted < base
        # The near tags dominate the schedule here: expect >2x saving.
        assert adapted < 0.5 * base

    def test_energy_ratio_bounded_by_one(self, adapter):
        ratios = adapter.energy_savings_per_report()
        for tag, ratio in ratios.items():
            assert 0.0 < ratio <= 1.0

    def test_near_tag_saves_most_energy(self, adapter):
        ratios = adapter.energy_savings_per_report()
        assert ratios["tag8"] < ratios["tag11"]
        assert ratios["tag8"] <= 0.25  # >= 4x faster than the baseline
