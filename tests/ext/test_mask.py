"""Tests for higher-order backscatter modulation (M-ASK extension)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ext.mask import (
    MultiLevelBackscatter,
    mask_bits_per_symbol,
    mask_symbol_error_rate,
    viable_tags_for_mask,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=40)


class TestAnalysis:
    def test_bits_per_symbol(self):
        assert mask_bits_per_symbol(2) == 1
        assert mask_bits_per_symbol(4) == 2
        assert mask_bits_per_symbol(8) == 3

    def test_invalid_levels_raise(self):
        for m in (1, 3, 6):
            with pytest.raises(ValueError):
                mask_bits_per_symbol(m)

    def test_ser_grows_with_order(self):
        for snr in (10.0, 15.0, 20.0):
            assert mask_symbol_error_rate(snr, 4) > mask_symbol_error_rate(snr, 2)
            assert mask_symbol_error_rate(snr, 8) > mask_symbol_error_rate(snr, 4)

    def test_ser_falls_with_snr(self):
        assert mask_symbol_error_rate(25.0, 4) < mask_symbol_error_rate(15.0, 4)

    def test_ser_bounded(self):
        for snr in (-10.0, 0.0, 40.0):
            ser = mask_symbol_error_rate(snr, 4)
            assert 0.0 <= ser <= 1.0


class TestModem:
    def test_throughput_doubles_with_4ask(self):
        ook = MultiLevelBackscatter(levels=2)
        four = MultiLevelBackscatter(levels=4)
        assert four.throughput_bps() == 2 * ook.throughput_bps()

    def test_reflection_levels_equidistant(self):
        mod = MultiLevelBackscatter(levels=4)
        levels = mod.reflection_levels()
        gaps = np.diff(levels)
        assert np.allclose(gaps, gaps[0])
        assert levels[0] == mod.pzt.absorptive_coefficient
        assert levels[-1] == mod.pzt.reflective_coefficient

    @given(bit_lists)
    def test_bits_symbols_roundtrip(self, bits):
        mod = MultiLevelBackscatter(levels=4)
        symbols = mod.bits_to_symbols(bits)
        back = mod.symbols_to_bits(symbols)
        assert back[: len(bits)] == list(bits)

    def test_modulate_produces_m_amplitude_plateaus(self):
        mod = MultiLevelBackscatter(levels=4)
        wave = mod.modulate([0, 0, 0, 1, 1, 0, 1, 1], 0.01, lead_in_s=0.0)
        n_per = int(mod.sample_rate_hz / mod.symbol_rate_baud)
        peaks = [
            np.max(np.abs(wave[i * n_per : (i + 1) * n_per]))
            for i in range(4)
        ]
        assert peaks == sorted(peaks)  # 00 < 01 < 10 < 11
        assert len({round(p, 5) for p in peaks}) == 4

    def test_ml_slicer_recovers_clean_symbols(self):
        mod = MultiLevelBackscatter(levels=4)
        refl = mod.reflection_levels()
        amp = 0.01
        measured = [amp * r / mod.pzt.reflective_coefficient for r in refl]
        assert mod.demodulate_levels(measured, amp) == [0, 1, 2, 3]

    def test_packet_success_monotone_in_snr(self):
        mod = MultiLevelBackscatter(levels=4)
        assert mod.packet_success(25.0, 16) > mod.packet_success(12.0, 16)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MultiLevelBackscatter(levels=3)
        with pytest.raises(ValueError):
            MultiLevelBackscatter(symbol_rate_baud=0.0)
        with pytest.raises(ValueError):
            MultiLevelBackscatter().packet_success(10.0, 0)


class TestDeploymentViability:
    def test_low_rate_everyone_viable(self, medium):
        viable, not_viable = viable_tags_for_mask(medium, 4, 187.5)
        assert not_viable == []

    def test_high_rate_far_tags_drop_out(self, medium):
        viable, not_viable = viable_tags_for_mask(medium, 4, 1500.0)
        assert "tag8" in viable
        assert "tag11" in not_viable or "tag12" in not_viable

    def test_8ask_harder_than_4ask(self, medium):
        v4, _ = viable_tags_for_mask(medium, 4, 750.0)
        v8, _ = viable_tags_for_mask(medium, 8, 750.0)
        assert set(v8) <= set(v4)


class TestWaveformReceiver:
    """The M-ASK chain on real captures (leak + noise + random phase)."""

    def _roundtrip(self, rng, levels, amplitude, noise=2.673e-10, n_bits=40):
        from repro.ext.mask import MaskReceiver
        from repro.phy.modem import BackscatterUplink

        modem = MultiLevelBackscatter(levels=levels, symbol_rate_baud=187.5)
        rx = MaskReceiver(modem)
        uplink = BackscatterUplink()
        bits = [int(b) for b in rng.integers(0, 2, size=n_bits)]
        wave = modem.modulate(
            bits, amplitude, phase_rad=float(rng.uniform(0, 2 * np.pi))
        )
        cap = uplink.capture([wave], noise, rng, extra_samples=2000)
        return bits, rx.decode_bits(cap, n_bits)

    def test_4ask_roundtrip_at_strong_amplitude(self, rng):
        hits = 0
        for _ in range(5):
            bits, candidates = self._roundtrip(rng, 4, 0.02)
            hits += any(c == bits for c in candidates)
        assert hits == 5

    def test_8ask_needs_more_amplitude(self, rng):
        # Same link: 8-ASK's halved decision distances fail where 4-ASK
        # passed; tripling the amplitude restores it.
        weak = sum(
            any(c == b for c in cands)
            for b, cands in (self._roundtrip(rng, 8, 0.008) for _ in range(4))
        )
        strong = sum(
            any(c == b for c in cands)
            for b, cands in (self._roundtrip(rng, 8, 0.03) for _ in range(4))
        )
        assert strong > weak

    def test_noise_only_returns_no_confident_stream(self, rng):
        from repro.ext.mask import MaskReceiver
        from repro.phy.modem import BackscatterUplink

        modem = MultiLevelBackscatter(levels=4, symbol_rate_baud=187.5)
        rx = MaskReceiver(modem)
        uplink = BackscatterUplink()
        cap = uplink.capture([], 2.673e-10, rng, extra_samples=120_000)
        # Candidates may exist (k-means always labels) but none should
        # match any specific payload reliably; just assert no crash and
        # bounded output.
        candidates = rx.decode_bits(cap, 40)
        assert len(candidates) <= 2 * 13
