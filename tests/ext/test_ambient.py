"""Tests for ambient-vibration harvesting (future-work extension)."""

import pytest

from repro.ext.ambient import (
    AmbientHarvester,
    DrivingCondition,
    HybridHarvester,
)


class TestAmbientHarvester:
    def test_parked_yields_nothing(self):
        assert AmbientHarvester().power_w(DrivingCondition.PARKED) == 0.0

    def test_power_grows_with_condition_intensity(self):
        h = AmbientHarvester()
        powers = [
            h.power_w(c)
            for c in (
                DrivingCondition.PARKED,
                DrivingCondition.IDLE,
                DrivingCondition.CITY,
                DrivingCondition.HIGHWAY,
                DrivingCondition.ROUGH_ROAD,
            )
        ]
        assert powers == sorted(powers)

    def test_highway_around_100uW(self):
        assert AmbientHarvester().power_w(DrivingCondition.HIGHWAY) == pytest.approx(
            100e-6, rel=0.05
        )

    def test_saturation_caps_extremes(self):
        h = AmbientHarvester(saturation_power_w=50e-6)
        assert h.power_w(DrivingCondition.ROUGH_ROAD) == 50e-6


class TestHybridHarvester:
    def test_parked_equals_carrier_only(self, medium):
        h = HybridHarvester()
        vp = medium.carrier_amplitude_v("tag11")
        assert h.net_charging_power_w(
            vp, DrivingCondition.PARKED
        ) == pytest.approx(h.carrier.net_charging_power_w(vp))

    def test_driving_speeds_up_worst_tag(self, medium):
        # The headline of the extension: tag11's 56 s cold charge drops
        # several-fold on the highway.
        h = HybridHarvester()
        vp = medium.carrier_amplitude_v("tag11")
        assert h.speedup(vp, DrivingCondition.HIGHWAY) > 2.0
        assert h.speedup(vp, DrivingCondition.CITY) > 1.3

    def test_speedup_never_below_one(self, medium):
        h = HybridHarvester()
        for tag in ("tag8", "tag4", "tag11"):
            vp = medium.carrier_amplitude_v(tag)
            for cond in DrivingCondition:
                assert h.speedup(vp, cond) >= 1.0

    def test_near_tag_gains_less(self, medium):
        # tag8 already harvests 588 uW from the carrier; 100 uW of
        # ambient moves it far less than it moves tag11.
        h = HybridHarvester()
        s8 = h.speedup(medium.carrier_amplitude_v("tag8"), DrivingCondition.HIGHWAY)
        s11 = h.speedup(medium.carrier_amplitude_v("tag11"), DrivingCondition.HIGHWAY)
        assert s11 > s8

    def test_ambient_alone_cannot_enable_communication(self):
        # A tag the carrier cannot activate still charges from ambient
        # power, but net_charging keeps the carrier-path gate for the
        # activation voltage (no carrier = no backscatter link anyway).
        h = HybridHarvester()
        p = h.net_charging_power_w(0.1, DrivingCondition.HIGHWAY)
        assert p == pytest.approx(0.85 * 100e-6, rel=0.1)

    def test_invalid_combining_efficiency(self):
        with pytest.raises(ValueError):
            HybridHarvester(combining_efficiency=0.0)
