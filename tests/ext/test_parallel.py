"""Tests for the parallel collision decoder (FlipTracer-style)."""

import numpy as np
import pytest

from repro.ext.parallel import (
    LatticeFit,
    ParallelCollisionDecoder,
    fit_lattice,
)
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket


@pytest.fixture(scope="module")
def uplink():
    return BackscatterUplink()


@pytest.fixture(scope="module")
def decoder():
    return ParallelCollisionDecoder()


def two_tag_capture(uplink, rng, p1, p2, phase1=0.8, phase2=2.9):
    c1 = uplink.tag_component(p1.to_bits(), 375.0, 0.02, phase_rad=phase1)
    c2 = uplink.tag_component(
        p2.to_bits(), 375.0, 0.011, phase_rad=phase2, delay_s=0.004
    )
    return uplink.capture([c1, c2], 2.673e-10, rng, extra_samples=3000)


class TestLatticeFit:
    def test_perfect_parallelogram(self):
        o, v1, v2 = 1 + 1j, 0.5 + 0.1j, -0.2 + 0.6j
        centers = [o, o + v1, o + v2, o + v1 + v2]
        fit = fit_lattice(centers)
        assert fit is not None
        assert fit.residual < 1e-9
        # The four lattice points reproduce the centers.
        points = {
            fit.origin + b1 * fit.v1 + b2 * fit.v2
            for b1 in (0, 1)
            for b2 in (0, 1)
        }
        for c in centers:
            assert min(abs(c - p) for p in points) < 1e-9

    def test_labels_recover_coordinates(self):
        o, v1, v2 = 0j, 1 + 0j, 0 + 1j
        fit = fit_lattice([o, o + v1, o + v2, o + v1 + v2])
        assert fit.label(fit.origin + fit.v1 + 0.05j) in ((1, 0), (0, 1))
        mapped = {fit.label(o), fit.label(o + v1), fit.label(o + v2),
                  fit.label(o + v1 + v2)}
        assert mapped == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_rejects_collinear(self):
        centers = [0j, 1 + 0j, 2 + 0j, 3.5 + 0j]
        assert fit_lattice(centers) is None

    def test_subset_search_tolerates_spurious_cluster(self):
        o, v1, v2 = 1 + 1j, 0.5 + 0.1j, -0.2 + 0.6j
        centers = [o, o + v1, o + v2, o + v1 + v2, o + 0.9 * v1 + 0.4 * v2]
        fit = fit_lattice(centers)
        assert fit is not None
        assert fit.residual < 1e-6

    def test_wrong_count_returns_none(self):
        assert fit_lattice([0j, 1j]) is None
        assert fit_lattice([0j] * 7) is None


class TestParallelDecode:
    def test_recovers_both_packets_favourable_phases(self, uplink, decoder):
        rng = np.random.default_rng(0)
        p1, p2 = UplinkPacket(1, 111), UplinkPacket(2, 2222)
        cap = two_tag_capture(uplink, rng, p1, p2, phase1=0.8, phase2=2.9)
        got = decoder.decode(cap, 375.0)
        assert p1 in got and p2 in got

    def test_usually_recovers_at_least_one(self, uplink, decoder):
        # With uniformly random relative phases, ~1/4 of collisions are
        # geometrically degenerate (near-collinear phasors) and cannot
        # be separated; the rest should yield at least one clean packet.
        rng = np.random.default_rng(5)
        at_least_one = 0
        trials = 12
        for t in range(trials):
            p1, p2 = UplinkPacket(1, 100 + t), UplinkPacket(2, 2000 + t)
            cap = two_tag_capture(
                uplink,
                rng,
                p1,
                p2,
                phase1=float(rng.uniform(0, 2 * np.pi)),
                phase2=float(rng.uniform(0, 2 * np.pi)),
            )
            got = decoder.decode(cap, 375.0)
            at_least_one += any(p in got for p in (p1, p2))
        assert at_least_one >= trials // 2 + 2

    def test_never_hallucinate_packets(self, uplink, decoder):
        rng = np.random.default_rng(9)
        p1, p2 = UplinkPacket(1, 77), UplinkPacket(3, 888)
        cap = two_tag_capture(uplink, rng, p1, p2)
        got = decoder.decode(cap, 375.0)
        for packet in got:
            assert packet in (p1, p2)  # CRC keeps fabrications out

    def test_single_tag_capture_falls_through(self, uplink, decoder):
        # Two clusters only: the decoder declines (the ordinary chain
        # handles that case).
        rng = np.random.default_rng(1)
        c1 = uplink.tag_component(UplinkPacket(1, 5).to_bits(), 375.0, 0.02)
        cap = uplink.capture([c1], 2.673e-10, rng, extra_samples=3000)
        assert decoder.decode(cap, 375.0) == []

    def test_noise_only_falls_through(self, uplink, decoder):
        rng = np.random.default_rng(2)
        cap = uplink.capture([], 2.673e-10, rng, extra_samples=80_000)
        assert decoder.decode(cap, 375.0) == []

    def test_invalid_args(self, decoder):
        with pytest.raises(ValueError):
            decoder.decode(np.zeros(1000), 0.0)
        with pytest.raises(ValueError):
            ParallelCollisionDecoder(samples_per_bit=2)
