"""Tests for the link-health watchdog."""

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.resilience.health import ACK, FAIL, MISS, NACK, LinkHealthMonitor, TagHealth

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8, "tag4": 16}


def build(seed=0, schedule=None):
    return SlottedNetwork(
        PERIODS,
        config=NetworkConfig(seed=seed, ideal_channel=True),
        faults=schedule,
    )


def monitored_run(net, monitor, n_slots):
    for _ in range(n_slots):
        monitor.snapshot_expectations()
        record = net.step()
        monitor.observe(record)


class TestTagHealth:
    def test_window_evicts_oldest(self):
        h = TagHealth(tag="t", window=3)
        for slot, outcome in enumerate([ACK, ACK, NACK, MISS]):
            h.record(slot, outcome)
        assert len(h.events) == 3
        assert h.acks == 1  # the first ACK fell out of the window
        assert h.nacks == 1
        assert h.missed_expected == 1

    def test_rates_none_before_any_signal(self):
        h = TagHealth(tag="t")
        assert h.ack_rate() is None
        assert h.miss_rate() is None

    def test_ack_rate_counts_only_feedback(self):
        h = TagHealth(tag="t")
        h.record(0, ACK)
        h.record(1, MISS)
        h.record(2, NACK)
        assert h.ack_rate() == pytest.approx(0.5)

    def test_miss_rate_blends_miss_and_fail(self):
        h = TagHealth(tag="t")
        h.record(0, ACK)
        h.record(1, MISS)
        h.record(2, FAIL)
        h.record(3, ACK)
        assert h.miss_rate() == pytest.approx(0.5)

    def test_jsonable_round_trips(self):
        import json

        h = TagHealth(tag="t")
        h.record(0, ACK)
        doc = h.to_jsonable()
        assert json.loads(json.dumps(doc)) == doc


class TestLinkHealthMonitor:
    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            LinkHealthMonitor(build(), window=0)

    def test_settled_tags_accumulate_acks(self):
        net = build()
        monitor = LinkHealthMonitor(net)
        monitored_run(net, monitor, 400)
        for name in PERIODS:
            health = monitor.health(name)
            assert health.acks > 0
            assert health.ack_rate() > 0.5
            assert health.consecutive_missed == 0

    def test_browned_out_tag_misses_expected_slots(self):
        schedule = FaultSchedule(
            [FaultEvent(slot=200, duration=12, kind="brownout", target="tag1")]
        )
        net = build(schedule=schedule)
        monitor = LinkHealthMonitor(net)
        monitored_run(net, monitor, 205)
        # tag1 (period 4) was committed when the brownout hit: its
        # scheduled slots inside 200..205 pass silent until the reader's
        # own empty-slot expiry drops the commitment.
        assert monitor.health("tag1").missed_expected > 0

    def test_observe_without_snapshot_reconstructs(self):
        net = build()
        monitor = LinkHealthMonitor(net)
        monitored_run(net, monitor, 300)
        baseline = monitor.health("tag1").acks
        record = net.step()  # no snapshot taken for this slot
        monitor.observe(record)
        total = sum(
            monitor.health(t).acks + monitor.health(t).nacks for t in PERIODS
        )
        assert total >= baseline  # degraded path still digests the slot

    def test_monitor_never_mutates_protocol_state(self):
        plain = build(seed=3)
        plain.run(300)
        watched = build(seed=3)
        monitor = LinkHealthMonitor(watched)
        monitored_run(watched, monitor, 300)
        assert [r.__dict__ for r in plain.records] == [
            r.__dict__ for r in watched.records
        ]

    def test_report_covers_every_tag(self):
        net = build()
        monitor = LinkHealthMonitor(net)
        monitored_run(net, monitor, 50)
        report = monitor.report()
        assert sorted(report) == sorted(PERIODS)
        assert all("consecutive_missed" in doc for doc in report.values())
