"""Tests for the individual recovery policies."""

import itertools

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.state_machine import TagState
from repro.core.tag_protocol import TagMac
from repro.faults.schedule import ALL_TAGS, FaultEvent, FaultSchedule
from repro.phy.packets import DownlinkBeacon
from repro.resilience import (
    BackoffRejoinPolicy,
    BeaconResyncPolicy,
    NetworkSupervisor,
    SlotLeasePolicy,
    default_policies,
)

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8, "tag4": 16}
BEACON = DownlinkBeacon(ack=False, empty=True)
ACK = DownlinkBeacon(ack=True, empty=True)


def make_tag(period=4, offsets=None, tid=1):
    if offsets is None:
        counter = itertools.count()
        picker = lambda p: next(counter) % p
    else:
        it = iter(offsets)
        picker = lambda p: next(it)
    return TagMac("tagX", tid=tid, period=period, offset_picker=picker)


def settle(tag):
    """Drive the tag into SETTLE at its current offset."""
    while tag.state is not TagState.SETTLE:
        decision = tag.on_beacon(ACK if tag.transmitted_last_slot else BEACON)
    return tag


def build(seed=0, schedule=None, periods=PERIODS):
    return SlottedNetwork(
        periods,
        config=NetworkConfig(seed=seed, ideal_channel=True),
        faults=schedule,
    )


class _StubSupervisor:
    """Just enough supervisor surface for a standalone policy."""

    def __init__(self, network=None):
        self.network = network
        self.loss_handlers = []
        self.power_cycle_handlers = []
        self.actions = []
        self.monitor = None

    def register_loss_handler(self, handler):
        self.loss_handlers.append(handler)

    def register_power_cycle_handler(self, handler):
        self.power_cycle_handlers.append(handler)

    def log_action(self, action):
        self.actions.append(action)


class TestBeaconResyncPolicy:
    def _attach(self, tag, max_retries=3):
        policy = BeaconResyncPolicy(max_retries=max_retries)
        sup = _StubSupervisor()
        policy.attach(sup)

        class Hook:
            def on_beacon_loss(self, t):
                return sup.loss_handlers[0](t)

            def on_power_cycle(self, t):
                pass

        tag.attach_recovery(Hook())
        return policy, sup

    def test_rejects_zero_retries(self):
        with pytest.raises(ValueError):
            BeaconResyncPolicy(max_retries=0)

    def test_suppresses_demote_within_bound(self):
        tag = settle(make_tag(period=4, offsets=[2, 0]))
        offset = tag.offset
        self._attach(tag, max_retries=3)
        for _ in range(3):
            tag.on_beacon_loss()
        assert tag.state is TagState.SETTLE
        assert tag.offset == offset

    def test_demotes_exactly_once_past_bound(self):
        tag = settle(make_tag(period=4, offsets=[2, 0, 1, 3]))
        self._attach(tag, max_retries=3)
        for _ in range(4):
            tag.on_beacon_loss()
        assert tag.state is TagState.MIGRATE
        demoted_offset = tag.offset
        # Further consecutive losses leave the machine alone: no extra
        # offset re-rolls while the outage continues.
        for _ in range(5):
            tag.on_beacon_loss()
        assert tag.offset == demoted_offset

    def test_received_beacon_rearms_the_budget(self):
        tag = settle(make_tag(period=4, offsets=[2, 0]))
        self._attach(tag, max_retries=3)
        for _ in range(3):
            tag.on_beacon_loss()
        tag.on_beacon(BEACON)  # outage over: counter resets
        assert tag.consecutive_beacon_losses == 0
        for _ in range(3):
            tag.on_beacon_loss()
        assert tag.state is TagState.SETTLE  # fresh budget held again

    def test_vanilla_tag_demotes_on_first_loss(self):
        tag = settle(make_tag(period=4, offsets=[2, 0]))
        tag.on_beacon_loss()
        assert tag.state is TagState.MIGRATE


class TestBackoffRejoinPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BackoffRejoinPolicy(base_holdoff=0)
        with pytest.raises(ValueError):
            BackoffRejoinPolicy(base_holdoff=8, max_holdoff=4)
        with pytest.raises(ValueError):
            BackoffRejoinPolicy(settle_window_periods=0)
        with pytest.raises(ValueError):
            BackoffRejoinPolicy(stagger_mod=0)

    def test_holdoff_doubles_and_caps(self):
        policy = BackoffRejoinPolicy(
            base_holdoff=4, max_holdoff=16, stagger_mod=8, stagger_step=3
        )
        tag = make_tag(tid=2)
        assert policy.holdoff_for(tag, 0) == 4 + 6
        assert policy.holdoff_for(tag, 1) == 8 + 6
        assert policy.holdoff_for(tag, 2) == 16 + 6
        assert policy.holdoff_for(tag, 5) == 16 + 6  # capped

    def test_stagger_separates_tids(self):
        policy = BackoffRejoinPolicy(stagger_mod=8, stagger_step=3)
        holdoffs = {
            policy.holdoff_for(make_tag(tid=t), 0) for t in range(8)
        }
        assert len(holdoffs) == 8  # all distinct within one mod cycle

    def test_power_cycle_arms_holdoff_and_tag_stays_silent(self):
        net = build()
        sup = NetworkSupervisor(net, policies=[BackoffRejoinPolicy()])
        sup.run(300)  # converge
        tag = net.tags["tag2"]
        tag.power_cycle()
        armed = tag.rejoin_holdoff
        assert armed > 0
        assert "tag2" in sup.policies[0].pending_rejoins()
        transmitted = []
        for _ in range(armed):
            sup.step()
            transmitted.append(tag.transmitted_last_slot)
        assert not any(transmitted)  # silent for the whole hold-off

    def test_rejoiner_eventually_settles_and_is_forgotten(self):
        net = build()
        policy = BackoffRejoinPolicy()
        sup = NetworkSupervisor(net, policies=[policy])
        sup.run(300)
        net.tags["tag2"].power_cycle()
        sup.run(600)
        assert net.tags["tag2"].state is TagState.SETTLE
        assert policy.pending_rejoins() == ()

    def test_exhausted_rejoin_reverts_to_vanilla(self):
        net = build()
        policy = BackoffRejoinPolicy(
            base_holdoff=1, max_holdoff=1, settle_window_periods=1, max_attempts=1
        )
        sup = NetworkSupervisor(net, policies=[policy])
        sup.run(100)
        tag = net.tags["tag4"]
        tag.power_cycle()
        sup.run(500)
        # However the rejoin went, the policy must have released the tag
        # (settled or exhausted), never babysit it forever.
        assert policy.pending_rejoins() == ()


class TestSlotLeasePolicy:
    def test_rejects_zero_misses(self):
        with pytest.raises(ValueError):
            SlotLeasePolicy(lease_misses=0)

    def test_lease_reclaims_silent_tags_slot(self):
        # The lease covers the case the reader's own expiry cannot: a
        # dead tag whose slot never passes *empty* (residual probes and
        # collisions keep it occupied).  Drive the miss counter to the
        # threshold and verify the next policy pass drops the lease.
        net = build()
        policy = SlotLeasePolicy(lease_misses=3)
        sup = NetworkSupervisor(net, policies=[policy])
        sup.run(300)
        assert "tag2" in net.reader.committed_assignments
        sup.monitor.health("tag2").consecutive_missed = 3
        policy.on_slot(net.records[-1])
        assert "tag2" not in net.reader.committed_assignments
        assert "tag2" not in net.reader.evicting()
        expiries = [a for a in sup.actions if a.action == "lease_expired"]
        assert [a.tag for a in expiries] == ["tag2"]
        assert sup.monitor.health("tag2").consecutive_missed == 0

    def test_lease_below_threshold_keeps_commitment(self):
        net = build()
        policy = SlotLeasePolicy(lease_misses=3)
        sup = NetworkSupervisor(net, policies=[policy])
        sup.run(300)
        sup.monitor.health("tag2").consecutive_missed = 2
        policy.on_slot(net.records[-1])
        assert "tag2" in net.reader.committed_assignments

    def test_healthy_network_never_expires_leases(self):
        net = build()
        sup = NetworkSupervisor(net, policies=[SlotLeasePolicy()])
        sup.run(200)  # includes the initial competition churn
        start = len([a for a in sup.actions if a.action == "lease_expired"])
        sup.run(800)  # converged steady state
        end = len([a for a in sup.actions if a.action == "lease_expired"])
        assert end == start  # no expiries once the allocation settles


class TestDefaultPolicies:
    def test_stock_stack_composition(self):
        names = [p.name for p in default_policies()]
        assert names == ["beacon_resync", "backoff_rejoin", "slot_lease"]

    def test_policies_are_deterministic(self):
        schedule = FaultSchedule(
            [
                FaultEvent(slot=250, duration=8, kind="beacon_loss", target=ALL_TAGS),
                FaultEvent(slot=350, duration=10, kind="brownout", target="tag2"),
            ]
        )

        def run():
            net = build(seed=5, schedule=schedule)
            sup = NetworkSupervisor(net)
            sup.run(700)
            return (
                [r.__dict__ for r in net.records],
                [a.to_jsonable() for a in sup.actions],
            )

        assert run() == run()
