"""Chaos suite for the resilience layer: hypothesis-generated fault
schedules against a *supervised* network, asserting the self-healing
safety net — supervised runs complete, replay deterministically, never
trip the escalation ladder on protocol-legal state, and (with the
default policies) the network eventually reconverges once the last
fault clears."""

from hypothesis import given, settings, strategies as st

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.schedule import ALL_TAGS, FaultEvent, FaultSchedule
from repro.resilience import NetworkSupervisor

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8, "tag4": 16}
TAGS = tuple(sorted(PERIODS))
N_SLOTS = 120

CHAOS = settings(max_examples=20, deadline=None, derandomize=True)

#: Protocol-level fault kinds the recovery policies target; channel/PHY
#: kinds are exercised by the vanilla chaos suite.
RECOVERY_KINDS = ("beacon_loss", "brownout", "harvester_collapse", "reader_restart")


@st.composite
def fault_events(draw) -> FaultEvent:
    kind = draw(st.sampled_from(RECOVERY_KINDS))
    slot = draw(st.integers(0, N_SLOTS - 1))
    if kind == "reader_restart":
        duration, target = 1, "reader"
    else:
        duration = draw(st.integers(1, 12))
        target = draw(st.sampled_from(TAGS + (ALL_TAGS,)))
    return FaultEvent(slot=slot, duration=duration, kind=kind, target=target)


schedules = st.lists(fault_events(), min_size=0, max_size=6).map(FaultSchedule)


def supervised_run(schedule: FaultSchedule, seed: int = 0, extra_slots: int = 0):
    net = SlottedNetwork(
        PERIODS,
        config=NetworkConfig(seed=seed, ideal_channel=True),
        faults=schedule,
    )
    supervisor = NetworkSupervisor(net)
    supervisor.run(N_SLOTS + schedule.last_clear_slot + extra_slots)
    return net, supervisor


class TestSupervisedChaos:
    @CHAOS
    @given(schedules)
    def test_supervised_run_completes(self, schedule):
        net, supervisor = supervised_run(schedule)
        n = N_SLOTS + schedule.last_clear_slot
        assert len(net.records) == n
        assert [r.slot for r in net.records] == list(range(n))

    @CHAOS
    @given(schedules)
    def test_no_invariant_violations_under_protocol_faults(self, schedule):
        # Faults stress the protocol, but its structural invariants must
        # hold throughout — the ladder exists for corruption, not for
        # protocol-legal churn.
        _, supervisor = supervised_run(schedule)
        assert supervisor.violations == []
        assert supervisor.escalations == []

    @CHAOS
    @given(schedules)
    def test_supervised_replay_is_deterministic(self, schedule):
        net_a, sup_a = supervised_run(schedule, seed=3)
        net_b, sup_b = supervised_run(schedule, seed=3)
        assert [r.__dict__ for r in net_a.records] == [
            r.__dict__ for r in net_b.records
        ]
        assert [a.to_jsonable() for a in sup_a.actions] == [
            a.to_jsonable() for a in sup_b.actions
        ]

    @CHAOS
    @given(schedules)
    def test_eventual_reconvergence_with_policies_on(self, schedule):
        # Whatever the schedule did, once every fault has cleared a
        # supervised network must reach a full collision-free streak —
        # the policies may not wedge it (e.g. a rejoin hold-off that
        # never drains or a lease that thrashes a settled tag).
        net, supervisor = supervised_run(schedule)
        assert supervisor.run_until_converged(max_slots=20_000) is not None

    @CHAOS
    @given(schedules)
    def test_tag_counters_stay_consistent(self, schedule):
        net, _ = supervised_run(schedule)
        for tag in net.tags.values():
            assert tag.consecutive_beacon_losses >= 0
            assert tag.rejoin_holdoff >= 0
            assert tag.beacons_missed >= tag.consecutive_beacon_losses

    @CHAOS
    @given(schedules)
    def test_power_cycled_tags_counted_once_per_brownout_clear(self, schedule):
        net, _ = supervised_run(schedule)
        for name, tag in net.tags.items():
            brownouts = [
                e
                for e in schedule
                if e.kind == "brownout" and e.target in (name, ALL_TAGS)
            ]
            assert tag.power_cycles <= len(brownouts)
