"""Tests for the supervised stepping loop and its escalation ladder."""

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.schedule import ALL_TAGS, FaultEvent, FaultSchedule
from repro.resilience import (
    EscalationExhausted,
    NetworkSupervisor,
    ResilienceError,
    default_policies,
)
from repro.resilience.supervisor import InvariantViolation

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8, "tag4": 16}


def build(seed=0, schedule=None, **config_kwargs):
    return SlottedNetwork(
        PERIODS,
        config=NetworkConfig(seed=seed, ideal_channel=True, **config_kwargs),
        faults=schedule,
    )


class TestZeroCostContract:
    def test_no_policy_supervision_is_byte_identical(self):
        plain = build(seed=3)
        plain.run(500)
        supervised = build(seed=3)
        sup = NetworkSupervisor(supervised, policies=())
        sup.run(500)
        assert [r.__dict__ for r in plain.records] == [
            r.__dict__ for r in supervised.records
        ]
        assert sup.violations == []
        assert sup.actions == []

    def test_no_policy_supervision_identical_under_faults(self):
        schedule = FaultSchedule(
            [
                FaultEvent(slot=100, duration=6, kind="beacon_loss", target=ALL_TAGS),
                FaultEvent(slot=200, duration=10, kind="brownout", target="tag2"),
                FaultEvent(slot=300, duration=1, kind="reader_restart", target="reader"),
            ]
        )
        plain = build(seed=7, schedule=schedule)
        plain.run(500)
        supervised = build(seed=7, schedule=schedule)
        NetworkSupervisor(supervised, policies=()).run(500)
        assert [r.__dict__ for r in plain.records] == [
            r.__dict__ for r in supervised.records
        ]

    def test_no_hooks_installed_without_tag_side_policies(self):
        net = build()
        NetworkSupervisor(net, policies=())
        assert all(tag.recovery is None for tag in net.tags.values())

    def test_detach_restores_vanilla_tags(self):
        net = build()
        sup = NetworkSupervisor(net)  # default policies install hooks
        assert all(tag.recovery is not None for tag in net.tags.values())
        sup.detach()
        assert all(tag.recovery is None for tag in net.tags.values())
        assert all(p.supervisor is None for p in sup.policies)

    def test_double_attachment_rejected(self):
        net = build()
        NetworkSupervisor(net)
        with pytest.raises(ResilienceError):
            NetworkSupervisor(net)


class TestInvariants:
    def test_healthy_runs_are_violation_free(self):
        net = build(seed=1)
        sup = NetworkSupervisor(net)
        sup.run(800)
        assert sup.violations == []
        assert sup.escalations == []

    def test_stale_eviction_entry_is_detected(self):
        net = build()
        sup = NetworkSupervisor(net, policies=())
        sup.run(200)
        net.reader._evicting["ghost"] = 0  # corrupt: evicting w/o commitment
        violations = sup.verify_invariants()
        assert [v.check for v in violations] == ["stale_eviction"]
        assert "ghost" in violations[0].detail

    def test_double_booked_commitments_detected(self):
        net = build()
        sup = NetworkSupervisor(net, policies=())
        sup.run(200)
        committed = net.reader.committed_assignments
        a, b = sorted(committed)[:2]
        # Force b onto a slot congruent with a's pattern.
        net.reader._committed[b] = committed[a].offset % PERIODS[b]
        checks = {v.check for v in sup.verify_invariants()}
        assert "double_booked" in checks

    def test_ablation_reader_skips_conflict_check(self):
        net = build(enable_future_avoidance=False)
        sup = NetworkSupervisor(net, policies=())
        sup.run(50)
        net.reader._committed["tag1"] = 0
        net.reader._committed["tag2"] = 0  # conflicting, but baseline mode
        checks = {v.check for v in sup.verify_invariants()}
        assert "double_booked" not in checks

    def test_check_invariants_off_skips_enforcement(self):
        net = build()
        sup = NetworkSupervisor(net, policies=(), check_invariants=False)
        sup.run(200)
        net.reader._evicting["ghost"] = 0
        sup.run(50)  # would escalate if checking
        assert sup.violations == []
        assert sup.escalations == []


class TestEscalationLadder:
    def _corrupted(self, policy_grace=3, restart_grace=4, max_hard_resets=2):
        net = build()
        sup = NetworkSupervisor(
            net,
            policies=(),
            policy_grace=policy_grace,
            restart_grace=restart_grace,
            max_hard_resets=max_hard_resets,
        )
        sup.run(100)
        return net, sup

    def test_restart_fires_after_policy_grace(self):
        net, sup = self._corrupted(policy_grace=3)
        net.reader._evicting["ghost"] = 0
        sup.run(3)
        assert [e.level for e in sup.escalations] == ["restart"]
        # restart wiped the ledger, so the violation is actually gone
        assert sup.verify_invariants() == []
        sup.run(50)
        assert [e.level for e in sup.escalations] == ["restart"]

    def test_hard_reset_when_restart_does_not_clear(self, monkeypatch):
        net, sup = self._corrupted(policy_grace=3, restart_grace=4)
        # A corruption restart cannot clear: re-inject after every wipe.
        monkeypatch.setattr(
            type(net.reader),
            "restart",
            lambda self: None,
        )
        net.reader._evicting["ghost"] = 0
        sup.run(7)  # 3 (restart rung) + 4 (hard-reset rung)
        levels = [e.level for e in sup.escalations]
        assert levels == ["restart", "hard_reset"]
        # The RESET rides the next beacon and wipes the reader for real.
        sup.step()
        assert sup.verify_invariants() == []

    def test_exhaustion_raises_after_capped_hard_resets(self):
        net, sup = self._corrupted(
            policy_grace=2, restart_grace=2, max_hard_resets=1
        )

        class Stuck:
            def on_slot(self, record):
                net.reader._evicting["ghost"] = 0  # re-corrupt every slot

            def on_invariant_violation(self, violation):
                return False

            def detach(self):
                pass

        sup.policies = [Stuck()]
        with pytest.raises(EscalationExhausted):
            sup.run(50)
        assert sum(1 for e in sup.escalations if e.level == "hard_reset") == 1

    def test_policy_repair_stops_the_clock(self):
        net, sup = self._corrupted(policy_grace=2)

        class Repairer:
            def __init__(self):
                self.repaired = 0

            def on_slot(self, record):
                pass

            def on_invariant_violation(self, violation):
                net.reader._evicting.pop("ghost", None)
                self.repaired += 1
                return True

            def detach(self):
                pass

        repairer = Repairer()
        sup.policies = [repairer]
        net.reader._evicting["ghost"] = 0
        sup.run(20)
        assert repairer.repaired == 1
        assert sup.escalations == []  # never reached the restart rung

    def test_parameter_validation(self):
        net = build()
        with pytest.raises(ValueError):
            NetworkSupervisor(net, policies=(), policy_grace=0)
        with pytest.raises(ValueError):
            NetworkSupervisor(net, policies=(), restart_grace=0)
        with pytest.raises(ValueError):
            NetworkSupervisor(net, policies=(), max_hard_resets=-1)


class TestRunHelpers:
    def test_run_returns_new_records_only(self):
        net = build()
        sup = NetworkSupervisor(net, policies=())
        first = sup.run(10)
        second = sup.run(5)
        assert [r.slot for r in first] == list(range(10))
        assert [r.slot for r in second] == list(range(10, 15))

    def test_run_until_converged_matches_network_semantics(self):
        supervised = build(seed=4)
        got = NetworkSupervisor(supervised, policies=()).run_until_converged()
        plain = build(seed=4)
        want = plain.run_until_converged()
        assert got == want

    def test_report_is_json_serialisable(self):
        import json

        schedule = FaultSchedule(
            [FaultEvent(slot=150, duration=8, kind="beacon_loss", target=ALL_TAGS)]
        )
        net = build(seed=2, schedule=schedule)
        sup = NetworkSupervisor(net)
        sup.run(400)
        doc = sup.report()
        assert json.loads(json.dumps(doc)) == json.loads(json.dumps(doc))
        assert doc["policies"] == ["beacon_resync", "backoff_rejoin", "slot_lease"]

    def test_violation_jsonable(self):
        v = InvariantViolation(slot=3, check="stale_eviction", detail="x")
        assert v.to_jsonable() == {
            "slot": 3,
            "check": "stale_eviction",
            "detail": "x",
        }
