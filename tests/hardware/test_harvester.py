"""Tests for the energy-harvesting chain — the Fig. 11 anchors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.hardware.harvester import EnergyHarvester


class TestActivation:
    def test_tag8_level_activates(self, harvester):
        assert harvester.can_activate(1.40)

    def test_below_threshold_does_not_activate(self, harvester):
        assert not harvester.can_activate(0.25)

    def test_activation_boundary_matches_multiplier(self, harvester):
        v_min = harvester.multiplier.minimum_input_voltage(harvester.thresholds.high_v)
        assert harvester.can_activate(v_min + 1e-6)
        assert not harvester.can_activate(v_min - 1e-3)


class TestChargingAnchors:
    def test_best_tag_charges_in_4p5_seconds(self, harvester):
        # Paper Fig. 11(b): fastest tag 4.5 s at 587.8 uW net.
        report = harvester.report(1.4013)
        assert report.full_charge_time_s == pytest.approx(4.5, abs=0.1)
        assert report.net_charging_power_w == pytest.approx(587.8e-6, rel=0.01)

    def test_worst_tag_charges_in_56_seconds(self, harvester):
        # Paper Fig. 11(b): slowest tag 56.2 s at 47.1 uW net.
        report = harvester.report(0.334)
        assert report.full_charge_time_s == pytest.approx(56.2, rel=0.03)
        assert report.net_charging_power_w == pytest.approx(47.1e-6, rel=0.03)

    def test_resume_is_15percent_of_full(self, harvester):
        # Constant-current charging: resume/full = (2.3-1.95)/2.3.
        r = harvester.report(0.6)
        assert r.resume_charge_time_s / r.full_charge_time_s == pytest.approx(
            0.152, abs=0.001
        )

    def test_resume_under_10_seconds_for_all_activating_levels(self, harvester):
        # Sec. 6.2 footnote: "re-activation within 10 s".
        for vp in (0.334, 0.46, 0.7, 1.4):
            assert harvester.resume_time_s(vp) < 10.0

    def test_non_activating_tag_never_charges(self, harvester):
        assert harvester.charge_time_s(0.2) == math.inf
        assert harvester.net_charging_power_w(0.2) == 0.0

    def test_charge_time_consistent_with_energy(self, harvester):
        # Average power x time must equal the stored energy (the
        # self-consistency the paper's own numbers satisfy).
        vp = 1.0
        r = harvester.report(vp)
        energy = harvester.supercap.stored_energy_j(harvester.thresholds.high_v)
        assert r.net_charging_power_w * r.full_charge_time_s == pytest.approx(
            energy, rel=1e-6
        )

    @given(st.floats(min_value=0.31, max_value=2.0))
    def test_more_voltage_charges_faster(self, vp):
        h = EnergyHarvester()
        assert h.charge_time_s(vp + 0.05) < h.charge_time_s(vp)

    def test_negative_voltage_raises(self, harvester):
        with pytest.raises(ValueError):
            harvester.net_charging_power_w(-0.1)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            EnergyHarvester(harvest_coefficient_w=0.0)
        with pytest.raises(ValueError):
            EnergyHarvester(standby_leakage_w=-1.0)
