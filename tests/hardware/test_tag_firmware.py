"""Tests for the integrated tag firmware (demod -> MAC -> mod)."""

import itertools

import numpy as np
import pytest

from repro.core.state_machine import TagState
from repro.core.tag_protocol import TagMac
from repro.hardware.tag_firmware import TURNAROUND_S, TagFirmware
from repro.phy.fm0 import fm0_decode
from repro.phy.packets import DownlinkBeacon, UplinkPacket, find_ul_frames
from repro.phy.reader_tx import JitteredPieTransmitter


def make_firmware(period=4, offsets=(0,), payload=77, **kwargs):
    it = iter(offsets)
    mac = TagMac("tagX", tid=3, period=period, offset_picker=lambda p: next(it))
    return TagFirmware(mac, payload_source=lambda: payload, **kwargs)


def feed_beacon(fw, beacon, start_s=0.0, rng=None, jitter=False):
    """Drive the firmware's edge interrupts with a beacon's waveform."""
    tx = JitteredPieTransmitter(raw_rate_bps=250.0)
    if jitter:
        edges = tx.transmit(beacon.to_bits(), rng, start_s=start_s)
    else:
        edges = tx.intended_edges(beacon.to_bits(), start_s=start_s)
    for t, level in edges:
        fw.on_comparator_edge(t, level)
    return edges[-1][0]


class TestFirmwarePipeline:
    def test_beacon_decodes_and_steps_mac(self):
        fw = make_firmware()
        feed_beacon(fw, DownlinkBeacon(empty=True))
        assert fw.beacons_decoded == 1
        assert len(fw.decisions) == 1
        assert fw.mac.slot_counter == 1

    def test_transmission_scheduled_after_turnaround(self):
        fw = make_firmware(period=4, offsets=(0,))
        end = feed_beacon(fw, DownlinkBeacon(empty=True))
        assert len(fw.transmissions) == 1
        tx = fw.transmissions[0]
        assert tx.start_s == pytest.approx(end + TURNAROUND_S, abs=1e-9)

    def test_scheduled_gpio_is_valid_fm0_frame(self):
        fw = make_firmware(payload=1234)
        feed_beacon(fw, DownlinkBeacon(empty=True))
        raw = [e.level for e in fw.transmissions[0].gpio_events]
        frames = find_ul_frames(fm0_decode(raw).bits)
        assert frames == [UplinkPacket(tid=3, payload=1234)]

    def test_ack_settles_through_full_pipeline(self):
        fw = make_firmware(period=4, offsets=(0,))
        t = feed_beacon(fw, DownlinkBeacon(empty=True))  # slot 0: transmits
        feed_beacon(fw, DownlinkBeacon(ack=True, empty=True), start_s=t + 1.0)
        assert fw.mac.state is TagState.SETTLE

    def test_watchdog_path(self):
        fw = make_firmware(period=4, offsets=(0, 2))
        feed_beacon(fw, DownlinkBeacon(empty=True))
        fw.on_watchdog()
        assert fw.mac.state is TagState.MIGRATE
        assert fw.mac.offset == 2

    def test_survives_usb_jitter(self, rng):
        fw = make_firmware(period=2, offsets=(0,), rng=rng)
        t = 0.0
        decoded_before = 0
        for k in range(10):
            t = feed_beacon(
                fw, DownlinkBeacon(ack=bool(k), empty=True), start_s=k * 1.0,
                rng=rng, jitter=True,
            )
        assert fw.beacons_decoded == 10

    def test_energy_bill_accumulates_per_activity(self):
        fw = make_firmware(period=1, offsets=(0,))
        for k in range(4):
            feed_beacon(fw, DownlinkBeacon(ack=True, empty=True), start_s=k * 1.0)
        counts = fw.meter.isr_counts
        assert counts["beacon"] == 4
        assert counts["edge"] >= 4 * 16
        assert counts["timer"] == 4 * 64  # one per raw bit per frame
        # Average current over the 4 s run sits between IDLE and RX
        # mode levels: mostly asleep, waking per slot.
        avg = fw.average_current_a(4.0)
        assert 0.5e-6 < avg < 12e-6

    def test_payload_masked_to_12_bits(self):
        fw = make_firmware(payload=0xFFFF)
        feed_beacon(fw, DownlinkBeacon(empty=True))
        assert fw.transmissions[0].packet.payload == 0xFFF
