"""Tests for the MCU power/clock model."""

import numpy as np
import pytest

from repro.hardware.mcu import (
    ACTIVE_CURRENT_A,
    Mcu,
    McuClock,
    McuMode,
    SLEEP_CURRENT_A,
)


class TestPowerModel:
    def test_mode_currents_match_table2(self):
        mcu = Mcu()
        assert mcu.average_current_a(McuMode.RX) == pytest.approx(6.4e-6)
        assert mcu.average_current_a(McuMode.TX) == pytest.approx(4.7e-6)
        assert mcu.average_current_a(McuMode.IDLE) == pytest.approx(0.6e-6)

    def test_savings_over_80_percent(self):
        # Sec. 4.3: "over 80% less than continuous active mode".
        mcu = Mcu()
        assert mcu.savings_vs_active(McuMode.RX) > 0.80
        assert mcu.savings_vs_active(McuMode.TX) > 0.80

    def test_duty_cycle_between_zero_and_one(self):
        mcu = Mcu()
        for mode in McuMode:
            assert 0.0 <= mcu.duty_cycle(mode) <= 1.0

    def test_duty_cycle_reconstructs_average(self):
        mcu = Mcu()
        d = mcu.duty_cycle(McuMode.RX)
        reconstructed = d * ACTIVE_CURRENT_A + (1 - d) * SLEEP_CURRENT_A
        assert reconstructed == pytest.approx(mcu.average_current_a(McuMode.RX))

    def test_energy_linear_in_duration(self):
        mcu = Mcu()
        assert mcu.energy_j(McuMode.TX, 2.0) == pytest.approx(
            2 * mcu.energy_j(McuMode.TX, 1.0)
        )

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            Mcu().energy_j(McuMode.RX, -1.0)

    def test_invalid_supply_raises(self):
        with pytest.raises(ValueError):
            Mcu(supply_voltage_v=0.0)


class TestClock:
    def test_nominal_12khz(self):
        assert McuClock().frequency_hz(2.0) == pytest.approx(12_000.0)

    def test_tick_period(self):
        assert McuClock().tick_s == pytest.approx(1 / 12_000.0)

    def test_supply_skew(self):
        clk = McuClock()
        # The unregulated rail rides 1.95-2.3 V; the clock drifts with it.
        assert clk.frequency_hz(2.3) > clk.frequency_hz(1.95)
        drift = clk.frequency_hz(2.3) / clk.frequency_hz(1.95) - 1.0
        assert 0.005 < drift < 0.05

    def test_interval_measurement_quantised(self):
        clk = McuClock()
        # A 4 ms pulse (250 bps raw bit) is ~48 ticks.
        ticks = clk.measure_interval_ticks(4e-3)
        assert ticks in (47, 48, 49)

    def test_interval_measurement_phase_jitter(self, rng):
        clk = McuClock()
        counts = {clk.measure_interval_ticks(4.02e-3, rng=rng) for _ in range(200)}
        assert len(counts) >= 2  # random tick phase gives +/-1 spread

    def test_ticks_roundtrip(self):
        clk = McuClock()
        assert clk.ticks_to_seconds(12) == pytest.approx(1e-3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            McuClock().frequency_hz(0.0)
        with pytest.raises(ValueError):
            McuClock().measure_interval_ticks(-1.0)
