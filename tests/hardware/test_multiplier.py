"""Tests for the multi-stage voltage multiplier."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.diode import SiliconDiode
from repro.hardware.multiplier import VoltageMultiplier


class TestAmplification:
    def test_eight_stages_is_16x(self):
        assert VoltageMultiplier(n_stages=8).amplification_ratio == 16

    def test_stage_counts_map_to_paper_ratios(self):
        # Fig. 11(a): stages 2/4/6/8 <-> ratios 4x/8x/12x/16x.
        for stages, ratio in [(2, 4), (4, 8), (6, 12), (8, 16)]:
            assert VoltageMultiplier(n_stages=stages).amplification_ratio == ratio

    def test_output_formula(self):
        m = VoltageMultiplier(n_stages=8)
        vp = 0.5
        expected = 16 * (vp - m.effective_diode_drop_v)
        assert m.output_voltage(vp) == pytest.approx(expected)

    def test_output_clamped_at_zero_below_threshold(self):
        m = VoltageMultiplier(n_stages=8)
        assert m.output_voltage(0.05) == 0.0

    def test_sub_proportional_growth(self):
        # Fig. 11(a): "the rise is not proportional to the stage number".
        m2 = VoltageMultiplier(n_stages=2)
        m8 = VoltageMultiplier(n_stages=8)
        vp = 0.46
        assert m8.output_voltage(vp) < 4.0 * m2.output_voltage(vp)
        assert m8.output_voltage(vp) > m2.output_voltage(vp)

    def test_effective_drop_grows_with_stages(self):
        assert (
            VoltageMultiplier(n_stages=8).effective_diode_drop_v
            > VoltageMultiplier(n_stages=2).effective_diode_drop_v
        )

    def test_silicon_diode_kills_low_voltage_harvest(self):
        # The ablation the paper motivates: 0.7 V drops swallow the
        # whole input at BiW-scale amplitudes.
        si = VoltageMultiplier(n_stages=8, diode=SiliconDiode())
        assert si.output_voltage(0.46) == 0.0

    @given(st.floats(min_value=0.0, max_value=5.0))
    def test_output_monotone_in_input(self, vp):
        m = VoltageMultiplier()
        assert m.output_voltage(vp + 0.1) >= m.output_voltage(vp)

    @given(
        st.floats(min_value=0.2, max_value=3.0),
        st.integers(min_value=1, max_value=12),
    )
    def test_minimum_input_inverts_output(self, vp, stages):
        m = VoltageMultiplier(n_stages=stages)
        out = m.output_voltage(vp)
        if out > 0:
            assert m.minimum_input_voltage(out) == pytest.approx(vp, rel=1e-9)

    def test_with_stages_preserves_other_params(self):
        m = VoltageMultiplier(n_stages=8, per_stage_loss_v=0.01)
        m2 = m.with_stages(4)
        assert m2.n_stages == 4
        assert m2.per_stage_loss_v == 0.01

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            VoltageMultiplier(n_stages=0)
        with pytest.raises(ValueError):
            VoltageMultiplier(operating_current_a=0.0)
        with pytest.raises(ValueError):
            VoltageMultiplier().output_voltage(-0.1)
