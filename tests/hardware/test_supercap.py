"""Tests for the supercapacitor model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.supercap import Supercapacitor


@pytest.fixture()
def cap():
    return Supercapacitor()


class TestEnergy:
    def test_full_charge_energy_matches_paper_arithmetic(self, cap):
        # 1 mF to 2.3 V stores 2.645 mJ — the figure that, divided by
        # the paper's 4.5 s / 56.2 s charge times, yields exactly the
        # reported 587.8 / 47.1 uW net charging powers.
        assert cap.stored_energy_j(2.3) == pytest.approx(2.645e-3, rel=1e-6)

    def test_energy_between_is_difference(self, cap):
        e = cap.energy_between_j(1.95, 2.3)
        assert e == pytest.approx(cap.stored_energy_j(2.3) - cap.stored_energy_j(1.95))

    def test_energy_between_symmetric(self, cap):
        assert cap.energy_between_j(1.0, 2.0) == cap.energy_between_j(2.0, 1.0)

    @given(st.floats(min_value=0.0, max_value=6.0))
    def test_energy_nonnegative(self, v):
        assert Supercapacitor().stored_energy_j(v) >= 0.0


class TestCharging:
    def test_charge_time_linear_in_delta_v(self, cap):
        t_full = cap.charge_time_s(0.0, 2.3, 1e-3)
        t_resume = cap.charge_time_s(1.95, 2.3, 1e-3)
        # Resume fraction (2.3-1.95)/2.3 = 15.2% — the Appendix B figure.
        assert t_resume / t_full == pytest.approx(0.152, abs=0.001)

    def test_charge_time_inverse_in_current(self, cap):
        assert cap.charge_time_s(0, 2.3, 2e-3) == pytest.approx(
            cap.charge_time_s(0, 2.3, 1e-3) / 2
        )

    def test_charge_time_invalid_args(self, cap):
        with pytest.raises(ValueError):
            cap.charge_time_s(0, 2.3, 0.0)
        with pytest.raises(ValueError):
            cap.charge_time_s(2.3, 1.0, 1e-3)

    def test_voltage_after_charging(self, cap):
        v = cap.voltage_after(1.0, 1e-3, 0.5)
        assert v == pytest.approx(1.5)

    def test_voltage_after_discharge_clamps_at_zero(self, cap):
        assert cap.voltage_after(0.1, -1e-3, 1000.0) == 0.0

    def test_voltage_clamps_at_rated(self, cap):
        assert cap.voltage_after(5.9, 1e-3, 1e6) == cap.rated_voltage_v

    @given(
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=-1e-3, max_value=1e-3),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_voltage_after_always_in_range(self, v0, i, dt):
        cap = Supercapacitor()
        v = cap.voltage_after(v0, i, dt)
        assert 0.0 <= v <= cap.rated_voltage_v


class TestLeakage:
    def test_leakage_proportional_to_voltage(self, cap):
        assert cap.leakage_current_a(2.0) == pytest.approx(2 * cap.leakage_current_a(1.0))

    def test_leakage_under_datasheet_bound(self, cap):
        # KEMET bound: 0.01 * C(uF) * V uA; settled leakage is far less.
        v = 2.3
        assert cap.leakage_current_a(v) < cap.datasheet_leakage_bound_a(v)

    def test_invalid_capacitance_raises(self):
        with pytest.raises(ValueError):
            Supercapacitor(capacitance_f=0.0)
