"""Tests for diode models."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.diode import SchottkyDiode, SiliconDiode


class TestSchottky:
    def test_datasheet_anchor_150mV_at_1mA(self):
        # CDBU0130L: "less than 0.15 V when the current is below 1 mA".
        d = SchottkyDiode()
        assert d.forward_drop(1e-3) == pytest.approx(0.150, abs=0.002)

    def test_drop_below_150mV_under_1mA(self):
        d = SchottkyDiode()
        for current in (1e-5, 1e-4, 5e-4, 9.9e-4):
            assert d.forward_drop(current) < 0.15

    def test_drop_monotone_in_current(self):
        d = SchottkyDiode()
        drops = [d.forward_drop(i) for i in (1e-6, 1e-5, 1e-4, 1e-3)]
        assert drops == sorted(drops)

    def test_zero_current_zero_drop(self):
        assert SchottkyDiode().forward_drop(0.0) == 0.0

    def test_negative_current_raises(self):
        with pytest.raises(ValueError):
            SchottkyDiode().forward_drop(-1e-3)

    @given(st.floats(min_value=1e-9, max_value=1e-2))
    def test_current_at_inverts_forward_drop(self, current):
        d = SchottkyDiode()
        v = d.forward_drop(current)
        assert d.current_at(v) == pytest.approx(current, rel=1e-6)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            SchottkyDiode(saturation_current_a=0.0)
        with pytest.raises(ValueError):
            SchottkyDiode(ideality=-1.0)


class TestSilicon:
    def test_silicon_drops_much_more(self):
        si = SiliconDiode()
        sch = SchottkyDiode()
        assert si.forward_drop(1e-3) > 3 * sch.forward_drop(1e-3)

    def test_silicon_around_0p7V_at_1mA(self):
        assert SiliconDiode().forward_drop(1e-3) == pytest.approx(0.7, abs=0.12)
