"""Tests for the integrated tag device."""

import pytest

from repro.hardware.mcu import McuMode
from repro.hardware.tag_device import TagBillOfMaterials, TagDevice


class TestColdStart:
    def test_starts_unpowered(self):
        assert not TagDevice(pzt_voltage_v=1.4).powered

    def test_charges_to_activation(self):
        dev = TagDevice(pzt_voltage_v=1.4013)
        t = dev.time_to_activation_s()
        assert t == pytest.approx(4.5, abs=0.1)
        dev.advance(t + 0.01)
        assert dev.powered

    def test_weak_tag_never_activates(self):
        dev = TagDevice(pzt_voltage_v=0.2)
        assert not dev.can_ever_activate()
        dev.advance(1000.0)
        assert not dev.powered

    def test_capacitor_capped_at_hth_before_activation(self):
        dev = TagDevice(pzt_voltage_v=1.4)
        dev.advance(100.0)
        assert dev.capacitor_v <= dev.thresholds.high_v + 1e-9

    def test_initial_voltage_respected(self):
        dev = TagDevice(pzt_voltage_v=1.4, initial_capacitor_v=2.4)
        assert dev.powered

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            TagDevice(pzt_voltage_v=-0.1)
        with pytest.raises(ValueError):
            TagDevice(pzt_voltage_v=1.0, initial_capacitor_v=-1.0)
        with pytest.raises(ValueError):
            TagDevice(pzt_voltage_v=1.0).advance(-1.0)


class TestSteadyState:
    def test_idle_operation_sustainable_everywhere(self):
        # Even the worst-placed tag harvests more than IDLE draws.
        dev = TagDevice(pzt_voltage_v=0.334, initial_capacitor_v=2.3)
        powered = dev.advance(600.0, McuMode.IDLE)
        assert powered

    def test_continuous_tx_browns_out_weak_tag(self):
        # TX draws 51 uW; the worst tag only harvests 47.1 uW, so
        # continuous transmission cannot be sustained.
        dev = TagDevice(pzt_voltage_v=0.334, initial_capacitor_v=2.3)
        assert not dev.sustainable_duty_cycle(0.0, 1.0)
        for _ in range(4000):
            powered = dev.advance(1.0, McuMode.TX)
            if not powered:
                break
        assert not dev.powered

    def test_brownout_resumes_from_lth(self):
        dev = TagDevice(pzt_voltage_v=0.334, initial_capacitor_v=2.3)
        while dev.advance(1.0, McuMode.TX):
            pass
        # After brown-out the capacitor sits near LTH, not zero.
        assert dev.capacitor_v >= dev.thresholds.low_v * 0.95
        t_resume = dev.time_to_activation_s()
        t_full = dev.harvester.charge_time_s(dev.pzt_voltage_v)
        assert t_resume < 0.2 * t_full

    def test_protocol_duty_cycle_sustainable_for_worst_tag(self):
        dev = TagDevice(pzt_voltage_v=0.334)
        # One beacon RX per slot, one packet TX every 4 slots.
        assert dev.sustainable_duty_cycle(0.104, 0.171 / 4.0)


class TestBom:
    def test_bom_matches_paper_price(self):
        # Sec. 6.1: "the BOM cost for this compact tag is $6.25".
        assert TagBillOfMaterials().total_usd == pytest.approx(6.25)
