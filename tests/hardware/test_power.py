"""Tests for whole-tag power accounting (Table 2)."""

import pytest

from repro.hardware.mcu import McuMode
from repro.hardware.power import TagPowerModel


@pytest.fixture()
def power():
    return TagPowerModel()


class TestTable2:
    def test_rx_power_24p8_uw(self, power):
        assert power.power_w(McuMode.RX) == pytest.approx(24.8e-6)

    def test_tx_power_51_uw(self, power):
        assert power.power_w(McuMode.TX) == pytest.approx(51.0e-6)

    def test_idle_power_7p6_uw(self, power):
        assert power.power_w(McuMode.IDLE) == pytest.approx(7.6e-6)

    def test_peripheral_split(self, power):
        # TX peripherals (MOSFET gate drive) dominate the TX budget.
        row = power.row(McuMode.TX)
        assert row.peripheral_current_a == pytest.approx(20.8e-6)
        assert row.peripheral_current_a > row.mcu_current_a

    def test_table_rendering(self, power):
        table = power.table()
        assert table["RX"]["total_power_uw"] == pytest.approx(24.8)
        assert table["TX"]["mcu_current_ua"] == pytest.approx(4.7)
        assert table["IDLE"]["voltage_v"] == 2.0

    def test_energy_accounting(self, power):
        assert power.energy_j(McuMode.TX, 0.2) == pytest.approx(51.0e-6 * 0.2)


class TestSustainability:
    def test_idle_dominated_duty_cycle_fits_worst_budget(self, power):
        # Sec. 6.2: consumption must fit under 47.1 uW net charging.
        # One beacon (~0.1 s RX) per 1 s slot; one TX every 4 slots.
        rx_frac = 0.104
        tx_frac = 0.171 / 4.0
        assert power.sustainable(47.1e-6, rx_frac, tx_frac)

    def test_continuous_tx_not_sustainable_at_worst_budget(self, power):
        assert not power.sustainable(47.1e-6, 0.0, 1.0)

    def test_duty_cycled_power_bounds(self, power):
        p = power.duty_cycled_power_w(0.1, 0.05)
        assert power.power_w(McuMode.IDLE) < p < power.power_w(McuMode.TX)

    def test_invalid_fractions_raise(self, power):
        with pytest.raises(ValueError):
            power.duty_cycled_power_w(0.6, 0.6)
        with pytest.raises(ValueError):
            power.duty_cycled_power_w(-0.1, 0.0)

    def test_invalid_voltage_raises(self):
        with pytest.raises(ValueError):
            TagPowerModel(voltage_v=0.0)
