"""Tests for the interrupt-driven firmware emulation (Sec. 4.3)."""

import numpy as np
import pytest

from repro.hardware.firmware import (
    EDGE_ISR_CYCLES,
    Fm0ModulatorIsr,
    InterruptEnergyMeter,
    PieEdgeDemodulator,
    rx_mode_current_a,
    tx_mode_current_a,
)
from repro.phy.envelope import EnvelopeDetector, HysteresisComparator, edges
from repro.phy.fm0 import fm0_encode
from repro.phy.modem import FskOokDownlink
from repro.phy.packets import DownlinkBeacon
from repro.phy.pie import pie_encode


class TestEnergyMeter:
    def test_records_and_accumulates(self):
        m = InterruptEnergyMeter()
        m.record("edge", 500)
        m.record("edge", 500)
        assert m.isr_counts["edge"] == 2
        assert m.awake_s == pytest.approx(1e-3)

    def test_average_current_blends_active_and_sleep(self):
        m = InterruptEnergyMeter()
        m.record("x", 100_000)  # 0.1 s awake
        current = m.average_current_a(1.0)
        assert 0.5e-6 < current < 45e-6
        assert m.duty_cycle(1.0) == pytest.approx(0.1)

    def test_invalid_args(self):
        m = InterruptEnergyMeter()
        with pytest.raises(ValueError):
            m.record("x", -1)
        with pytest.raises(ValueError):
            m.average_current_a(0.0)
        with pytest.raises(ValueError):
            InterruptEnergyMeter(cpu_clock_hz=0.0)


class TestTable2FromFirstPrinciples:
    def test_rx_current_reproduces_table2(self):
        # Table 2: MCU draws 6.4 uA while receiving.
        assert rx_mode_current_a() * 1e6 == pytest.approx(6.4, abs=0.3)

    def test_tx_current_reproduces_table2(self):
        # Table 2: MCU draws 4.7 uA while transmitting.
        assert tx_mode_current_a() * 1e6 == pytest.approx(4.7, abs=0.3)

    def test_savings_vs_always_active(self):
        # The architectural claim: interrupt-driven operation cuts the
        # 40-50 uA active draw by over 80%.
        assert rx_mode_current_a() < 0.2 * 45e-6
        assert tx_mode_current_a() < 0.2 * 45e-6


class TestPieEdgeDemodulator:
    def _edges_for(self, bits, raw_rate=250.0):
        """Ideal comparator edges for a PIE bit sequence."""
        raw = pie_encode(bits)
        t = 0.0
        out = []
        level = 0
        for bit in raw:
            if bit != level:
                out.append((t, bit))
                level = bit
            t += 1.0 / raw_rate
        if level == 1:
            out.append((t, 0))
        return out

    def test_decodes_clean_beacon(self):
        beacon = DownlinkBeacon(ack=True, empty=False, reset=False)
        demod = PieEdgeDemodulator()
        for t, lvl in self._edges_for(beacon.to_bits()):
            demod.on_edge(t, lvl)
        assert demod.beacons == [beacon]

    def test_decodes_back_to_back_beacons(self):
        b1 = DownlinkBeacon(ack=True)
        b2 = DownlinkBeacon(empty=True)
        demod = PieEdgeDemodulator()
        stream = self._edges_for(b1.to_bits() + b2.to_bits())
        for t, lvl in stream:
            demod.on_edge(t, lvl)
        assert demod.beacons == [b1, b2]

    def test_interrupt_energy_metered(self):
        meter = InterruptEnergyMeter()
        demod = PieEdgeDemodulator(meter=meter)
        beacon = DownlinkBeacon(ack=True)
        for t, lvl in self._edges_for(beacon.to_bits()):
            demod.on_edge(t, lvl)
        # Two edge ISRs per PIE pulse + the beacon software interrupt.
        assert meter.isr_counts["edge"] >= 18
        assert meter.isr_counts["beacon"] == 1

    def test_callback_invoked(self):
        got = []
        demod = PieEdgeDemodulator(on_beacon=got.append)
        beacon = DownlinkBeacon(reset=True)
        for t, lvl in self._edges_for(beacon.to_bits()):
            demod.on_edge(t, lvl)
        assert got == [beacon]

    def test_garbage_bits_do_not_frame(self):
        demod = PieEdgeDemodulator()
        for t, lvl in self._edges_for([0, 0, 0, 0, 0, 0, 1, 1, 0, 0]):
            demod.on_edge(t, lvl)
        assert demod.beacons == []

    def test_spurious_falling_edge_ignored(self):
        demod = PieEdgeDemodulator()
        demod.on_edge(0.0, 0)  # falling before any rise
        assert demod.bits_decoded == []

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError):
            PieEdgeDemodulator().on_edge(0.0, 2)

    def test_end_to_end_from_waveform(self):
        # Reader waveform -> envelope -> comparator -> edge ISRs.
        beacon = DownlinkBeacon(ack=True, empty=True)
        dl = FskOokDownlink()
        wave = dl.beacon_waveform(beacon.to_bits(), 250.0)
        env = EnvelopeDetector(rc_s=0.5e-3).detect(wave, dl.sample_rate_hz)
        binary = HysteresisComparator(threshold_v=0.5, hysteresis_v=0.1).slice(env)
        demod = PieEdgeDemodulator()
        for t, lvl in edges(binary, dl.sample_rate_hz):
            demod.on_edge(t, lvl)
        assert demod.beacons == [beacon]

    def test_reset_framing_clears_partial_match(self):
        demod = PieEdgeDemodulator()
        for t, lvl in self._edges_for([1, 1, 1]):
            demod.on_edge(t, lvl)
        demod.reset_framing()
        assert demod._window == []


class TestFm0ModulatorIsr:
    def test_one_isr_per_raw_bit(self):
        meter = InterruptEnergyMeter()
        mod = Fm0ModulatorIsr(meter=meter)
        events = mod.transmit([1, 0, 1, 1])
        assert len(events) == 8  # two raw bits per data bit
        assert meter.isr_counts["timer"] == 8

    def test_gpio_levels_match_fm0(self):
        mod = Fm0ModulatorIsr()
        data = [1, 0, 0, 1, 1, 0]
        events = mod.transmit(data)
        assert [e.level for e in events] == fm0_encode(data)

    def test_event_timing_at_raw_rate(self):
        mod = Fm0ModulatorIsr(raw_rate_bps=375.0)
        events = mod.transmit([1, 1], start_s=2.0)
        assert events[0].time_s == pytest.approx(2.0)
        assert events[1].time_s - events[0].time_s == pytest.approx(1 / 375)

    def test_frame_duration(self):
        mod = Fm0ModulatorIsr(raw_rate_bps=375.0)
        assert mod.frame_duration_s(32) == pytest.approx(64 / 375)
