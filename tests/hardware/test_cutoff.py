"""Tests for the low-voltage cutoff circuit (Appendix A)."""

import pytest

from repro.hardware.cutoff import (
    CutoffThresholds,
    LowVoltageCutoff,
    thresholds_from_divider,
)


class TestDividerAlgebra:
    def test_paper_values_give_2p3_and_1p95(self):
        # R1=680k, R2=180k, R3=1M, Vref=1.24 V (Appendix A).
        th = thresholds_from_divider()
        assert th.high_v == pytest.approx(2.3, abs=0.01)
        assert th.low_v == pytest.approx(1.95, abs=0.01)

    def test_hysteresis_width(self):
        th = thresholds_from_divider()
        assert th.hysteresis_v == pytest.approx(0.35, abs=0.02)

    def test_larger_r2_widens_hysteresis(self):
        narrow = thresholds_from_divider(r2_ohm=90e3)
        wide = thresholds_from_divider(r2_ohm=360e3)
        assert wide.hysteresis_v > narrow.hysteresis_v

    def test_invalid_resistors_raise(self):
        with pytest.raises(ValueError):
            thresholds_from_divider(r1_ohm=0.0)
        with pytest.raises(ValueError):
            thresholds_from_divider(vref_v=-1.0)

    def test_thresholds_ordering_enforced(self):
        with pytest.raises(ValueError):
            CutoffThresholds(high_v=1.0, low_v=2.0)


class TestHysteresisBehaviour:
    def test_starts_unpowered(self):
        assert not LowVoltageCutoff().powered

    def test_powers_on_at_high_threshold(self):
        c = LowVoltageCutoff()
        assert not c.update(2.29)
        assert c.update(2.31)

    def test_stays_on_inside_band(self):
        c = LowVoltageCutoff()
        c.update(2.31)
        assert c.update(2.0)  # inside hysteresis band: still on
        assert c.update(1.96)

    def test_powers_off_at_low_threshold(self):
        c = LowVoltageCutoff()
        c.update(2.31)
        assert not c.update(1.94)

    def test_does_not_reactivate_until_high_threshold(self):
        c = LowVoltageCutoff()
        c.update(2.31)
        c.update(1.9)
        assert not c.update(2.2)  # between LTH and HTH: stays off
        assert c.update(2.31)

    def test_activation_callback_fires_once_per_edge(self):
        c = LowVoltageCutoff()
        events = []
        c.on_activate(lambda: events.append("on"))
        c.on_deactivate(lambda: events.append("off"))
        for v in (1.0, 2.4, 2.4, 2.0, 1.9, 1.0, 2.4):
            c.update(v)
        assert events == ["on", "off", "on"]

    def test_reset_returns_to_unpowered_silently(self):
        c = LowVoltageCutoff()
        events = []
        c.on_deactivate(lambda: events.append("off"))
        c.update(2.4)
        c.reset()
        assert not c.powered
        assert events == []

    def test_negative_voltage_raises(self):
        with pytest.raises(ValueError):
            LowVoltageCutoff().update(-0.1)

    def test_quiescent_current_under_1uA(self):
        # Appendix A: "maintaining circuit leakage below 1 uA".
        assert LowVoltageCutoff.QUIESCENT_CURRENT_A < 1e-6
