"""Tests for the strain sensing chain (Sec. 6.5)."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.strain import (
    Adc,
    BridgeAmplifier,
    StrainGauge,
    StrainSensorModule,
    WheatstoneBridge,
)


class TestGaugeAndBridge:
    def test_gauge_resistance_shifts_with_strain(self):
        g = StrainGauge()
        assert g.resistance_ohm(1e-3) > g.nominal_resistance_ohm
        assert g.resistance_ohm(-1e-3) < g.nominal_resistance_ohm

    def test_full_bridge_output_formula(self):
        b = WheatstoneBridge()
        strain = 100e-6
        assert b.differential_voltage_v(strain) == pytest.approx(
            b.excitation_v * b.gauge.gauge_factor * strain
        )

    def test_zero_strain_zero_output(self):
        assert WheatstoneBridge().differential_voltage_v(0.0) == 0.0

    def test_1p8V_supply(self):
        # The paper adapts the TI design from 3.3 V to 1.8 V.
        assert WheatstoneBridge().excitation_v == 1.8


class TestAmplifierAndAdc:
    def test_amplifier_offsets_to_midrail(self):
        a = BridgeAmplifier()
        assert a.output_v(0.0) == pytest.approx(0.9)

    def test_amplifier_clamps_to_rails(self):
        a = BridgeAmplifier()
        assert a.output_v(1.0) == a.rail_v
        assert a.output_v(-1.0) == 0.0

    def test_adc_full_scale_10bit(self):
        assert Adc().full_scale == 1023

    def test_adc_roundtrip(self):
        adc = Adc()
        for v in (0.0, 0.45, 0.9, 1.35, 1.8):
            code = adc.sample(v)
            assert adc.to_voltage(code) == pytest.approx(v, abs=1.8 / 1023)

    def test_adc_clamps_out_of_range(self):
        adc = Adc()
        assert adc.sample(-5.0) == 0
        assert adc.sample(99.0) == adc.full_scale

    def test_adc_invalid_code_raises(self):
        with pytest.raises(ValueError):
            Adc().to_voltage(5000)

    @given(st.floats(min_value=0.0, max_value=1.8))
    def test_adc_code_in_range(self, v):
        adc = Adc()
        assert 0 <= adc.sample(v) <= adc.full_scale


class TestSensorModule:
    def test_voltage_monotone_in_displacement(self):
        m = StrainSensorModule()
        vs = [m.analog_voltage_v(d) for d in range(-10, 11, 2)]
        assert vs == sorted(vs)

    def test_payload_fits_12_bits(self):
        m = StrainSensorModule()
        for d in (-10.0, 0.0, 10.0):
            assert 0 <= m.sample(d) < (1 << 12)

    def test_sensitivity_scales_slope(self):
        lo = StrainSensorModule(strain_per_cm=8e-6)
        hi = StrainSensorModule(strain_per_cm=16e-6)
        slope_lo = lo.analog_voltage_v(10) - lo.analog_voltage_v(-10)
        slope_hi = hi.analog_voltage_v(10) - hi.analog_voltage_v(-10)
        assert slope_hi == pytest.approx(2 * slope_lo, rel=1e-6)

    def test_reconstruction_matches_analog(self):
        m = StrainSensorModule()
        code = m.sample(5.0)
        assert m.reconstruct_voltage_v(code) == pytest.approx(
            m.analog_voltage_v(5.0), abs=2 * 1.8 / 1023
        )

    def test_sampling_energy_about_1mW(self):
        # ~1 mW sampling power motivates one sample per slot (Sec. 6.5).
        m = StrainSensorModule()
        assert m.sampling_energy_j(1e-3) == pytest.approx(1e-6)

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            StrainSensorModule().sampling_energy_j(-1.0)
