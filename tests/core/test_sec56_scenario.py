"""The Sec. 5.6 future-collision story at network level.

Paper example: tags A and B (period 4) settle early; tag C (period 2)
arrives late.  Without intervention C can land where every one of its
offsets conflicts with A or B and thrash forever; the reader's
avoidance NACKs C's unfittable placements and evicts a victim so the
competition reopens and everyone eventually settles.
"""

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.slot_schedule import offsets_conflict
from repro.core.state_machine import TagState


def run_scenario(seed, enable_avoidance=True, max_slots=4000):
    periods = {"tag5": 4, "tag6": 4, "tag8": 2}  # A, B early; C late
    net = SlottedNetwork(
        periods,
        config=NetworkConfig(
            seed=seed, ideal_channel=True, enable_future_avoidance=enable_avoidance
        ),
        activation_slot={"tag8": 60},
    )
    net.run(60)  # A and B settle alone
    assert net.tags["tag5"].state is TagState.SETTLE
    assert net.tags["tag6"].state is TagState.SETTLE
    net.run(max_slots)
    return net


class TestLateShortPeriodTag:
    @pytest.mark.parametrize("seed", range(8))
    def test_everyone_settles_with_avoidance(self, seed):
        net = run_scenario(seed)
        assert net.settled_fraction() == 1.0
        macs = list(net.tags.values())
        for i in range(len(macs)):
            for j in range(i + 1, len(macs)):
                assert not offsets_conflict(
                    macs[i].period,
                    macs[i].offset,
                    macs[j].period,
                    macs[j].offset,
                )

    @pytest.mark.parametrize("seed", range(8))
    def test_final_schedule_serves_all_rates(self, seed):
        net = run_scenario(seed)
        records = net.run(160)
        counts = {}
        for r in records:
            if r.decoded:
                counts[r.decoded] = counts.get(r.decoded, 0) + 1
        # C (period 2) delivers ~80 packets, A and B ~40 each.
        assert counts.get("tag8", 0) == pytest.approx(80, abs=8)
        assert counts.get("tag5", 0) == pytest.approx(40, abs=6)
        assert counts.get("tag6", 0) == pytest.approx(40, abs=6)

    def test_eviction_is_observable_when_needed(self):
        # Across seeds, at least one run must exercise the eviction path
        # (A/B landing on offsets that block C happens w.p. 1/2 per run).
        evictions = 0
        for seed in range(10):
            periods = {"tag5": 4, "tag6": 4, "tag8": 2}
            net = SlottedNetwork(
                periods,
                config=NetworkConfig(seed=seed, ideal_channel=True),
                activation_slot={"tag8": 60},
            )
            net.run(60)
            a, b = net.tags["tag5"], net.tags["tag6"]
            blocked = (a.offset % 2) != (b.offset % 2)
            for _ in range(1500):
                net.step()
                if net.reader.evicting():
                    evictions += 1
                    break
            if blocked:
                # When A and B cover both parity classes, C cannot fit
                # without an eviction.
                assert net.settled_fraction() < 1.0 or evictions > 0
            # Everyone must still settle in the end.
            net.run(3000)
            assert net.settled_fraction() == 1.0
        assert evictions >= 1
