"""Tests for the reader-side MAC."""

import pytest

from repro.channel.medium import SlotObservation
from repro.core.reader_protocol import ReaderMac


def obs(transmitters=(), decoded=None, collision=False):
    return SlotObservation(tuple(transmitters), decoded, collision)


def run_slot(reader, decoded=None, collision=False, transmitters=None):
    """Open a slot (beacon) and feed it an observation."""
    beacon = reader.make_beacon()
    txs = transmitters if transmitters is not None else (
        [decoded] if decoded else []
    )
    record = reader.on_slot_observation(obs(txs, decoded, collision))
    return beacon, record


class TestAckPolicy:
    def test_clean_decode_acked_next_beacon(self):
        r = ReaderMac({"a": 4})
        run_slot(r, decoded="a")
        beacon, _ = run_slot(r)
        assert beacon.ack

    def test_empty_slot_not_acked(self):
        r = ReaderMac({"a": 4})
        run_slot(r)
        beacon, _ = run_slot(r)
        assert not beacon.ack

    def test_collision_never_acked_even_with_capture(self):
        # Sec. 5.3: ">2 IQ clusters" overrides a captured decode.
        r = ReaderMac({"a": 4, "b": 4})
        run_slot(r, decoded="a", collision=True, transmitters=["a", "b"])
        beacon, _ = run_slot(r)
        assert not beacon.ack

    def test_unprovisioned_tag_gets_plain_ack(self):
        r = ReaderMac({})
        run_slot(r, decoded="mystery")
        beacon, _ = run_slot(r)
        assert beacon.ack


class TestEmptyFlag:
    def test_empty_before_any_history(self):
        r = ReaderMac({"a": 4})
        assert r.make_beacon().empty

    def test_slot_with_activity_predicts_busy_one_period_later(self):
        r = ReaderMac({"a": 4})
        run_slot(r, decoded="a")  # slot 0 occupied
        for _ in range(3):
            run_slot(r)  # slots 1-3 empty
        # Slot 4 = slot 0 + period: predicted busy.
        assert not r.make_beacon().empty

    def test_quiet_slot_predicts_empty(self):
        r = ReaderMac({"a": 4})
        run_slot(r, decoded="a")  # slot 0
        run_slot(r)  # slot 1 quiet
        run_slot(r)
        run_slot(r)
        run_slot(r, decoded="a")  # slot 4
        # Slot 5 checks slot 1: quiet -> empty.
        assert r.make_beacon().empty

    def test_collision_counts_as_activity(self):
        r = ReaderMac({"a": 4, "b": 4})
        run_slot(r, collision=True, transmitters=["a", "b"])
        for _ in range(3):
            run_slot(r)
        assert not r.make_beacon().empty

    def test_prediction_is_attributed_to_the_tags_own_period(self):
        r = ReaderMac({"a": 4, "b": 8})
        run_slot(r, decoded="a")  # slot 0: tag a (period 4)
        for _ in range(7):
            run_slot(r)
        # Slot 8: tag a returns at period 4 (slots 4, 8, ...), but slot 4
        # was quiet so a has left; tag b never occupied slot 0 — the
        # decode there was a's, which says nothing about period 8.
        assert r.make_beacon().empty

    def test_attributed_tag_predicts_its_own_return(self):
        r = ReaderMac({"a": 4, "b": 8})
        run_slot(r, decoded="a")  # slot 0
        for _ in range(3):
            run_slot(r)
        # Slot 4 = slot 0 + a's period: predicted busy.
        assert not r.make_beacon().empty

    def test_unattributed_collision_is_conservative(self):
        r = ReaderMac({"a": 4, "b": 8})
        run_slot(r, collision=True, transmitters=["a", "b"])  # slot 0
        for _ in range(3):
            run_slot(r)
        assert not r.make_beacon().empty  # slot 4: maybe the collider
        for _ in range(4):
            run_slot(r)
        assert not r.make_beacon().empty  # slot 8: maybe the collider

    def test_flag_disabled_by_config(self):
        r = ReaderMac({"a": 4}, enable_empty_flag=False)
        run_slot(r, decoded="a")
        for _ in range(3):
            run_slot(r)
        assert r.make_beacon().empty  # always true when disabled


class TestFutureCollisionAvoidance:
    def _settle(self, reader, tag, period, offset):
        """Drive the reader until ``tag`` is committed at ``offset``."""
        while reader.slot_index % period != offset:
            run_slot(reader)
        run_slot(reader, decoded=tag)

    def test_newcomer_with_no_viable_offset_nacked(self):
        # The Sec. 5.6 example: A and B (period 4) at offsets 2 and 3
        # block every offset of newcomer C (period 2).
        r = ReaderMac({"A": 4, "B": 4, "C": 2})
        self._settle(r, "A", 4, 2)
        self._settle(r, "B", 4, 3)
        # C decodes cleanly at an even slot (offset 0 mod 2).
        while r.slot_index % 2 != 0:
            run_slot(r)
        run_slot(r, decoded="C")
        beacon, _ = run_slot(r)
        assert not beacon.ack
        # A victim eviction must have begun to reopen the competition.
        assert len(r.evicting()) == 1

    def test_eviction_forces_victim_out_after_n_nacks(self):
        r = ReaderMac({"A": 4, "B": 4, "C": 2}, nack_threshold=3)
        self._settle(r, "A", 4, 2)
        self._settle(r, "B", 4, 3)
        while r.slot_index % 2 != 0:
            run_slot(r)
        run_slot(r, decoded="C")
        victim = next(iter(r.evicting()))
        # The victim keeps transmitting in its slot; the reader NACKs it
        # three times, then drops its commitment.
        for _ in range(3):
            while r.slot_index % 4 != dict(A=2, B=3)[victim]:
                run_slot(r)
            beacon, _ = run_slot(r, decoded=victim)
        assert victim not in r.evicting()
        assert victim not in r.committed_assignments

    def test_partial_pattern_conflict_nacked_despite_clean_decode(self):
        # A (period 4, offset 2) settled; newcomer with period 2 decodes
        # cleanly at offset 0 mod 2 — a future collision at slots 2 mod 4.
        r = ReaderMac({"A": 4, "N": 2})
        self._settle(r, "A", 4, 2)
        while r.slot_index % 2 != 0:
            run_slot(r)
        run_slot(r, decoded="N")
        beacon, _ = run_slot(r)
        assert not beacon.ack

    def test_viable_newcomer_acked_and_committed(self):
        r = ReaderMac({"A": 4, "N": 4})
        self._settle(r, "A", 4, 2)
        while r.slot_index % 4 != 1:
            run_slot(r)
        run_slot(r, decoded="N")
        beacon, _ = run_slot(r)
        assert beacon.ack
        assert r.committed_assignments["N"].offset == 1

    def test_disabled_avoidance_acks_naively(self):
        r = ReaderMac({"A": 4, "N": 2}, enable_future_avoidance=False)
        self._settle(r, "A", 4, 2)
        while r.slot_index % 2 != 0:
            run_slot(r)
        run_slot(r, decoded="N")
        beacon, _ = run_slot(r)
        assert beacon.ack  # the ablation baseline


class TestCommitmentExpiry:
    def test_vacated_slot_expires_commitment(self):
        r = ReaderMac({"a": 4})
        run_slot(r, decoded="a")  # committed at offset 0
        assert "a" in r.committed_assignments
        for _ in range(3):
            run_slot(r)
        run_slot(r)  # slot 4 = a's slot, but empty: the tag left
        assert "a" not in r.committed_assignments

    def test_collision_at_slot_keeps_commitment(self):
        r = ReaderMac({"a": 4, "b": 4})
        run_slot(r, decoded="a")
        for _ in range(3):
            run_slot(r)
        # Slot 4: a collides with a prober — activity, so 'a' stays.
        run_slot(r, collision=True, transmitters=["a", "b"])
        assert "a" in r.committed_assignments


class TestReset:
    def test_reset_flag_in_next_beacon_only(self):
        r = ReaderMac({"a": 4})
        r.request_reset()
        assert r.make_beacon().reset
        r.on_slot_observation(obs())
        assert not r.make_beacon().reset

    def test_reset_clears_reader_state(self):
        r = ReaderMac({"a": 4})
        run_slot(r, decoded="a")
        r.request_reset()
        r.make_beacon()
        assert r.committed_assignments == {}


class TestRecords:
    def test_record_fields(self):
        r = ReaderMac({"a": 4, "b": 4})
        _, record = run_slot(r, decoded="a", transmitters=["a"])
        assert record.slot == 0
        assert record.decoded == "a"
        assert record.truly_nonempty
        assert not record.truly_collided
        assert record.occupied

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            ReaderMac({"a": 3})


class TestEvictionCornerCases:
    def _settle(self, reader, tag, period, offset):
        while reader.slot_index % period != offset:
            run_slot(reader)
        run_slot(reader, decoded=tag)

    def _blocked_setup(self):
        r = ReaderMac({"A": 4, "B": 4, "C": 2})
        self._settle(r, "A", 4, 2)
        self._settle(r, "B", 4, 3)
        while r.slot_index % 2 != 0:
            run_slot(r)
        run_slot(r, decoded="C")  # triggers eviction of a victim
        assert len(r.evicting()) == 1
        return r

    def test_expiry_lifts_eviction_when_victim_vanishes(self):
        # The victim browns out instead of migrating: its committed slot
        # goes quiet, the commitment expires, and the eviction entry is
        # dropped with it — no phantom forcing.
        r = self._blocked_setup()
        victim = next(iter(r.evicting()))
        victim_offset = {"A": 2, "B": 3}[victim]
        while r.slot_index % 4 != victim_offset:
            run_slot(r)
        run_slot(r)  # the victim's slot passes with NO activity
        assert victim not in r.evicting()
        assert victim not in r.committed_assignments

    def test_newcomer_acked_after_victim_leaves(self):
        r = self._blocked_setup()
        victim = next(iter(r.evicting()))
        victim_offset = {"A": 2, "B": 3}[victim]
        while r.slot_index % 4 != victim_offset:
            run_slot(r)
        run_slot(r)  # expiry clears the victim
        # C retries at an even slot congruent with the vacated space.
        target = victim_offset % 2
        while r.slot_index % 2 != target:
            run_slot(r)
        run_slot(r, decoded="C")
        beacon, _ = run_slot(r)
        assert beacon.ack
        assert r.committed_assignments["C"].offset == target

    def test_migrated_victim_gets_fresh_placement(self):
        r = self._blocked_setup()
        victim = next(iter(r.evicting()))
        other = "B" if victim == "A" else "A"
        other_offset = {"A": 2, "B": 3}[other]
        # The victim shows up at a brand-new offset (it migrated on its
        # own): eviction lifts and the new spot is evaluated normally.
        new_offset = next(
            o for o in range(4)
            if o not in (other_offset,) and o % 2 != other_offset % 2
        )
        while r.slot_index % 4 != new_offset:
            run_slot(r)
        run_slot(r, decoded=victim)
        assert victim not in r.evicting()


class TestReleaseAssignment:
    def test_release_drops_commitment(self):
        r = ReaderMac({"a": 4})
        run_slot(r, decoded="a")
        assert "a" in r.committed_assignments
        assert r.release_assignment("a") is True
        assert "a" not in r.committed_assignments

    def test_release_unknown_tag_is_false(self):
        r = ReaderMac({"a": 4})
        assert r.release_assignment("a") is False
        assert r.release_assignment("stranger") is False

    def test_release_drops_eviction_entry_with_commitment(self):
        # The leak the PR-3 audit targets: dropping only the commitment
        # would orphan the eviction ledger entry, permanently excluding
        # the tag from future victim selection and making
        # _start_eviction reason about a slot nobody holds.
        r = ReaderMac({"A": 4, "B": 4, "C": 2})
        while r.slot_index % 4 != 2:
            run_slot(r)
        run_slot(r, decoded="A")
        while r.slot_index % 4 != 3:
            run_slot(r)
        run_slot(r, decoded="B")
        while r.slot_index % 2 != 0:
            run_slot(r)
        run_slot(r, decoded="C")  # blocked: eviction starts
        victim = next(iter(r.evicting()))
        assert r.release_assignment(victim) is True
        assert victim not in r.evicting()
        assert victim not in r.committed_assignments

    def test_released_tag_is_eligible_as_victim_again(self):
        r = ReaderMac({"A": 4, "B": 4, "C": 2})
        while r.slot_index % 4 != 2:
            run_slot(r)
        run_slot(r, decoded="A")
        r.release_assignment("A")
        # A re-settles cleanly: a stale eviction entry would have
        # poisoned this placement with forced NACKs.
        while r.slot_index % 4 != 2:
            run_slot(r)
        run_slot(r, decoded="A")
        beacon, _ = run_slot(r)
        assert beacon.ack
        assert r.committed_assignments["A"].offset == 2


class TestRestartEvictionAudit:
    """Audit trail for restart x in-flight eviction interactions: the
    two ledgers must always move together (evicting is a subset of
    committed between slots), whichever path tears an entry down."""

    def _mid_eviction(self):
        r = ReaderMac({"A": 4, "B": 4, "C": 2})
        while r.slot_index % 4 != 2:
            run_slot(r)
        run_slot(r, decoded="A")
        while r.slot_index % 4 != 3:
            run_slot(r)
        run_slot(r, decoded="B")
        while r.slot_index % 2 != 0:
            run_slot(r)
        run_slot(r, decoded="C")
        assert len(r.evicting()) == 1
        return r

    def test_restart_clears_both_ledgers(self):
        r = self._mid_eviction()
        r.restart()
        assert r.evicting() == set()
        assert r.committed_assignments == {}

    def test_reset_clears_both_ledgers(self):
        r = self._mid_eviction()
        r.request_reset()
        r.make_beacon()
        assert r.evicting() == set()
        assert r.committed_assignments == {}

    def test_evicting_is_subset_of_committed_through_eviction(self):
        # Drive the whole eviction to completion, checking the subset
        # invariant between every slot.
        r = self._mid_eviction()
        victim = next(iter(r.evicting()))
        victim_offset = {"A": 2, "B": 3}[victim]
        for _ in range(4 * r.nack_threshold):
            if r.slot_index % 4 == victim_offset:
                run_slot(r, decoded=victim)  # victim absorbs a forced NACK
            else:
                run_slot(r)
            assert r.evicting() <= set(r.committed_assignments), (
                r.evicting(),
                set(r.committed_assignments),
            )
        assert victim not in r.evicting()

    def test_restart_mid_eviction_allows_clean_resettle(self):
        # After a reader reboot the old eviction must not haunt the
        # victim: everyone re-places from scratch on observed traffic.
        r = self._mid_eviction()
        victim = next(iter(r.evicting()))
        victim_offset = {"A": 2, "B": 3}[victim]
        r.restart()
        while r.slot_index % 4 != victim_offset:
            run_slot(r)
        run_slot(r, decoded=victim)
        beacon, _ = run_slot(r)
        assert beacon.ack
        assert victim in r.committed_assignments
        assert victim not in r.evicting()
