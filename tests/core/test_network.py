"""Tests for the slotted network simulator."""

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.state_machine import TagState
from repro.experiments.configs import pattern


def ideal_net(periods, seed=0, **kwargs):
    return SlottedNetwork(
        periods, config=NetworkConfig(seed=seed, ideal_channel=True, **kwargs)
    )


class TestConvergence:
    def test_single_tag_converges_immediately(self):
        net = ideal_net({"tag8": 4})
        t = net.run_until_converged(streak=8)
        assert t is not None and t <= 16
        assert net.tags["tag8"].state is TagState.SETTLE

    def test_three_tags_converge(self):
        net = ideal_net({"tag8": 4, "tag4": 8, "tag11": 8})
        assert net.run_until_converged() is not None
        assert net.settled_fraction() == 1.0

    def test_converged_schedule_is_conflict_free(self):
        from repro.core.slot_schedule import offsets_conflict

        net = ideal_net({"tag5": 4, "tag6": 4, "tag8": 8, "tag9": 8})
        net.run_until_converged()
        tags = list(net.tags.values())
        for i in range(len(tags)):
            for j in range(i + 1, len(tags)):
                a, b = tags[i], tags[j]
                # Conflicts are in ground-truth space: local counters may
                # be offset from the reader's but all tags heard every
                # beacon in an ideal channel, so offsets align.
                assert not offsets_conflict(a.period, a.offset, b.period, b.offset)

    def test_full_utilization_converges(self):
        net = ideal_net({"tag1": 2, "tag2": 4, "tag3": 8, "tag4": 8}, seed=3)
        assert net.run_until_converged(max_slots=50_000) is not None

    def test_convergence_deterministic_per_seed(self):
        t1 = ideal_net({"tag1": 4, "tag2": 4, "tag3": 4}, seed=9).run_until_converged()
        t2 = ideal_net({"tag1": 4, "tag2": 4, "tag3": 4}, seed=9).run_until_converged()
        assert t1 == t2

    def test_utilization_dominates_convergence_time(self):
        import numpy as np

        lo = [
            ideal_net(pattern("c1").tag_periods(), seed=s).run_until_converged()
            for s in range(5)
        ]
        hi = [
            ideal_net(pattern("c4").tag_periods(), seed=s).run_until_converged()
            for s in range(5)
        ]
        assert np.median(hi) > np.median(lo)


class TestLateArrival:
    def test_staggered_tags_integrate(self):
        net = ideal_net(
            {"tag5": 4, "tag6": 4, "tag8": 8},
        )
        net.activation_slot["tag6"] = 40
        net.tags["tag6"].late_arrival = True
        records = net.run(200)
        # All three settled by the end.
        assert net.settled_fraction() == 1.0
        # No transmissions from tag6 before activation.
        early = [r for r in records if r.slot < 40]
        assert all("tag6" not in (r.decoded or "") for r in early)

    def test_late_arrival_flag_set_from_activation(self):
        net = SlottedNetwork(
            {"tag5": 4, "tag6": 4},
            config=NetworkConfig(ideal_channel=True),
            activation_slot={"tag6": 10},
        )
        assert net.tags["tag6"].late_arrival
        assert not net.tags["tag5"].late_arrival


class TestResetCommand:
    def test_reset_restarts_competition(self):
        net = ideal_net({"tag5": 4, "tag8": 4})
        net.run_until_converged()
        net.reset()
        net.step()  # the RESET beacon
        assert all(t.state is TagState.MIGRATE for t in net.tags.values())
        assert net.run_until_converged() is not None


class TestBeaconLoss:
    def test_loss_disrupts_then_recovers(self):
        net = SlottedNetwork(
            {"tag5": 4, "tag6": 4, "tag8": 8},
            config=NetworkConfig(seed=1, beacon_loss_probability=0.01),
        )
        records = net.run(3000)
        misses = sum(t.beacons_missed for t in net.tags.values())
        assert misses > 0
        # Despite disruptions, the long-run collision rate stays low.
        collided = sum(1 for r in records if r.truly_collided)
        assert collided / len(records) < 0.2

    def test_watchdog_ablation_changes_dynamics(self):
        # Without the Sec. 5.4 timer, a desynchronised tag keeps its
        # stale counter and collides until NACKed out.
        base = SlottedNetwork(
            {"tag5": 8, "tag6": 8, "tag8": 8, "tag9": 8},
            config=NetworkConfig(seed=5, beacon_loss_probability=0.02),
        )
        base.run(2000)
        ablated = SlottedNetwork(
            {"tag5": 8, "tag6": 8, "tag8": 8, "tag9": 8},
            config=NetworkConfig(
                seed=5, beacon_loss_probability=0.02, enable_beacon_loss_timer=False
            ),
        )
        ablated.run(2000)
        # Both run; the ablated variant must not crash, and beacon
        # misses are recorded in both.
        assert sum(t.beacons_missed for t in ablated.tags.values()) > 0


class TestValidation:
    def test_empty_tag_set_raises(self):
        with pytest.raises(ValueError):
            SlottedNetwork({})

    def test_unmounted_tag_raises(self):
        with pytest.raises(KeyError):
            SlottedNetwork({"tag99": 4})

    def test_negative_run_raises(self):
        with pytest.raises(ValueError):
            ideal_net({"tag8": 4}).run(-1)

    def test_invalid_streak_raises(self):
        with pytest.raises(ValueError):
            ideal_net({"tag8": 4}).run_until_converged(streak=0)

    def test_nonconvergence_returns_none(self):
        net = ideal_net({"tag5": 2, "tag6": 2})  # both must fit period 2
        # Utilization 1.0 with two period-2 tags: needs the exact split.
        result = net.run_until_converged(streak=32, max_slots=5)
        assert result is None  # cannot possibly converge in 5 slots
