"""Tests for the event-driven real-time network execution."""

import numpy as np
import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.realtime import RealtimeNetwork
from repro.core.state_machine import TagState
from repro.experiments.configs import pattern


def make(periods, seed=0, **cfg):
    return RealtimeNetwork(
        periods, config=NetworkConfig(seed=seed, ideal_channel=True, **cfg)
    )


class TestEquivalenceWithSlotted:
    """The real-time execution must validate the slot abstraction."""

    def test_identical_convergence_on_ideal_channel(self):
        periods = pattern("c2").tag_periods()
        for seed in (0, 1, 2):
            rt = make(periods, seed=seed)
            sl = SlottedNetwork(
                periods, config=NetworkConfig(seed=seed, ideal_channel=True)
            )
            t_rt = rt.run_until_converged(max_slots=20_000)
            t_sl = sl.run_until_converged(max_slots=20_000)
            rt.stop()
            assert t_rt == t_sl

    def test_identical_slot_records(self):
        periods = {"tag5": 4, "tag6": 4, "tag8": 8}
        rt = make(periods, seed=3)
        sl = SlottedNetwork(
            periods, config=NetworkConfig(seed=3, ideal_channel=True)
        )
        rt.run(100)
        rt.stop()
        sl.run(100)
        for a, b in zip(rt.records, sl.records):
            assert (a.decoded, a.collision_detected, a.n_transmitters) == (
                b.decoded,
                b.collision_detected,
                b.n_transmitters,
            )


class TestPhysicalTiming:
    def test_slots_advance_physical_time(self):
        rt = make({"tag8": 4})
        rt.run(10)
        rt.stop()
        assert rt.sim.now == pytest.approx(10 * rt.slot_duration_s)
        assert len(rt.records) == 10

    def test_ul_fits_inside_slot(self):
        # Beacon (~0.1 s) + turnaround (20 ms) + UL (171 ms) < 1 s slot.
        rt = make({"tag8": 4})
        beacon_events = []
        rt.run(8)
        rt.stop()
        uls = rt.trace.records(kind="ul")
        beacons = rt.trace.records(kind="beacon")
        assert beacons
        for ul in uls:
            slot_start = max(b.time for b in beacons if b.time <= ul.time)
            assert ul.time - slot_start < rt.slot_duration_s - rt.ul_airtime_s

    def test_propagation_delay_differentiates_tags(self):
        rt = make({"tag8": 4, "tag11": 4})
        assert rt.tags["tag8"].rx_delay_s < rt.tags["tag11"].rx_delay_s


class TestWatchdog:
    def test_beacon_loss_fires_watchdog(self):
        rt = RealtimeNetwork(
            {"tag5": 4, "tag8": 4},
            config=NetworkConfig(seed=1, beacon_loss_probability=0.3),
        )
        rt.run(60)
        rt.stop()
        missed = sum(t.mac.beacons_missed for t in rt.tags.values())
        assert missed > 0

    def test_no_watchdog_firings_without_loss(self):
        rt = make({"tag5": 4, "tag8": 4}, seed=2)
        rt.run(50)
        rt.stop()
        assert all(t.mac.beacons_missed == 0 for t in rt.tags.values())

    def test_network_recovers_from_heavy_loss(self):
        rt = RealtimeNetwork(
            {"tag5": 8, "tag8": 8},
            config=NetworkConfig(seed=5, beacon_loss_probability=0.05),
        )
        rt.run(800)
        rt.stop()
        tail = rt.records[-100:]
        collided = sum(1 for r in tail if r.truly_collided)
        assert collided < 20


class TestActivationTiming:
    def test_tags_silent_before_activation(self):
        rt = RealtimeNetwork(
            {"tag5": 4, "tag8": 4},
            config=NetworkConfig(seed=0, ideal_channel=True),
            activation_time_s={"tag5": 20.0},
        )
        rt.run(60)
        rt.stop()
        early_uls = [
            r for r in rt.trace.records(kind="ul", source="tag5") if r.time < 20.0
        ]
        assert early_uls == []
        assert rt.tags["tag5"].mac.late_arrival
        assert rt.tags["tag5"].mac.state is TagState.SETTLE


class TestValidation:
    def test_empty_tags_raises(self):
        with pytest.raises(ValueError):
            RealtimeNetwork({})

    def test_unmounted_tag_raises(self):
        with pytest.raises(KeyError):
            RealtimeNetwork({"tag99": 4})

    def test_negative_run_raises(self):
        rt = make({"tag8": 4})
        with pytest.raises(ValueError):
            rt.run(-1)
        rt.stop()
