"""The Fig. 8 beacon-loss story, reproduced deterministically.

Paper setup: slots 2 and 6 free (mod 8); tags A, B, C, D occupy the
rest.  Tag C (offset 1) misses a beacon: its local counter stalls and
its *effective* offset shifts by +1 — first into free slot 2 (harmless,
Fig. 8b), then, after a second miss, into B's slot 3 (collision,
Fig. 8c).  The Sec. 5.4 refinement (the watchdog) prevents the
collision by sending C back to MIGRATE at the first miss.
"""

import pytest

from repro.core.tag_protocol import TagMac
from repro.phy.packets import DownlinkBeacon

ACK = DownlinkBeacon(ack=True, empty=True)
NACK = DownlinkBeacon(ack=False, empty=True)


def settled_tag(name, tid, period, offset):
    """A tag driven into SETTLE at the given offset."""
    offsets = iter([offset, 99])  # 99 would fail validation if re-picked

    def picker(p):
        value = next(offsets)
        assert value < p, "tag unexpectedly re-picked its offset"
        return value

    tag = TagMac(name, tid=tid, period=period, offset_picker=picker)
    # Walk to its slot, transmit, and take the ACK.
    while tag.slot_counter % period != offset:
        tag.on_beacon(NACK)
    decision = tag.on_beacon(NACK)
    assert decision.transmit
    tag.on_beacon(ACK)
    assert tag.ever_settled
    return tag


class TestEffectiveOffsetShift:
    """Sec. 5.4 analysis: a missed beacon shifts the offset by one."""

    def test_miss_shifts_transmissions_one_slot_later(self):
        # Tag C: period 8, offset 1 (the paper's example).
        tag = settled_tag("C", 2, 8, 1)
        # Run it to just before its slot, then make it miss one beacon
        # WITHOUT the watchdog reaction (vanilla behaviour): emulate by
        # simply not delivering the beacon and not firing the watchdog.
        while tag.slot_counter % 8 != 0:
            tag.on_beacon(ACK)
        tag.slot_counter += 0  # at local index == 0 (mod 8)
        # Beacon for global slot G is lost: local counter stalls.
        # (vanilla: no watchdog, nothing happens at the tag)
        # Next beacon arrives at global slot G+1; the tag believes it is
        # at local slot G, i.e. ≡ 0 (mod 8)... one more beacon makes its
        # local ≡ 1 — but globally that slot is ≡ 2: shifted by one.
        global_slot = tag.slot_counter + 1  # one lost beacon
        decision = tag.on_beacon(ACK)  # local 0 -> no tx
        global_slot += 1
        decision = tag.on_beacon(ACK)  # local 1 (its offset) -> transmits
        global_slot += 1
        assert decision.transmit
        # Ground truth: the transmission happened at global ≡ 2 (mod 8),
        # the unoccupied slot of Fig. 8(b).
        assert (global_slot - 1) % 8 == 2

    def test_watchdog_prevents_the_eventual_collision(self):
        # With the refinement, the first miss demotes C immediately —
        # it never drifts into B's slot.
        tag = settled_tag("C", 2, 8, 1)
        offsets_after = iter([5])
        tag.machine._pick = lambda p: next(offsets_after)
        tag.on_beacon_loss()  # the watchdog fires on the missed beacon
        from repro.core.state_machine import TagState

        assert tag.machine.state is TagState.MIGRATE
        assert tag.offset == 5  # fresh random offset, not a silent drift


class TestStationaryNeighbours:
    def test_tag_b_is_undisturbed(self):
        # Fig. 8 refinement: "tag B remains in its original offset 3" —
        # adjustments are confined to the errant tag.
        b = settled_tag("B", 1, 8, 3)
        for _ in range(24):
            decision = b.on_beacon(ACK)
            if b.slot_counter % 8 == 4:  # just transmitted at offset 3
                pass
        assert b.ever_settled
        assert b.offset == 3
