"""Tests for the tag state machine (Fig. 7)."""

import itertools

import pytest

from repro.core.state_machine import TagState, TagStateMachine


def make_machine(period=8, offsets=None, nack_threshold=3):
    """Machine with a scripted (or cycling) offset picker."""
    if offsets is None:
        counter = itertools.count()
        picker = lambda p: next(counter) % p
    else:
        it = iter(offsets)
        picker = lambda p: next(it)
    return TagStateMachine(period, picker, nack_threshold)


class TestMigrate:
    def test_starts_in_migrate(self):
        assert make_machine().state is TagState.MIGRATE

    def test_ack_settles(self):
        m = make_machine()
        m.on_ack()
        assert m.state is TagState.SETTLE
        assert m.settles == 1

    def test_nack_repicks_offset(self):
        m = make_machine(offsets=[1, 5, 2])
        assert m.offset == 1
        m.on_nack()
        assert m.offset == 5
        assert m.state is TagState.MIGRATE
        assert m.migrations == 1

    def test_beacon_loss_repicks_in_migrate(self):
        m = make_machine(offsets=[0, 3])
        m.on_beacon_loss()
        assert m.state is TagState.MIGRATE
        assert m.offset == 3


class TestSettle:
    def test_single_nack_does_not_demote(self):
        # Sec. 5.3: "a single NACK does not immediately trigger a state
        # change" — it tolerates isolated UL decode failures.
        m = make_machine()
        m.on_ack()
        m.on_nack()
        assert m.state is TagState.SETTLE
        assert m.nack_count == 1

    def test_n_consecutive_nacks_demote(self):
        m = make_machine(nack_threshold=3)
        m.on_ack()
        m.on_nack()
        m.on_nack()
        assert m.state is TagState.SETTLE
        m.on_nack()
        assert m.state is TagState.MIGRATE
        assert m.nack_count == 0

    def test_ack_resets_failure_counter(self):
        m = make_machine(nack_threshold=3)
        m.on_ack()
        m.on_nack()
        m.on_nack()
        m.on_ack()  # counter back to zero
        m.on_nack()
        m.on_nack()
        assert m.state is TagState.SETTLE

    def test_offset_stable_while_settled(self):
        m = make_machine(offsets=[4, 7])
        m.on_ack()
        offset = m.offset
        m.on_nack()
        assert m.offset == offset  # keeps its slot through lone NACKs

    def test_beacon_loss_demotes_immediately(self):
        # Sec. 5.4 refinement: no waiting for N NACKs.
        m = make_machine()
        m.on_ack()
        m.on_beacon_loss()
        assert m.state is TagState.MIGRATE

    def test_custom_threshold_one(self):
        m = make_machine(nack_threshold=1)
        m.on_ack()
        m.on_nack()
        assert m.state is TagState.MIGRATE


class TestReset:
    def test_reset_returns_to_migrate(self):
        m = make_machine()
        m.on_ack()
        m.reset()
        assert m.state is TagState.MIGRATE
        assert m.nack_count == 0

    def test_reset_repicks_offset(self):
        m = make_machine(offsets=[2, 6])
        m.reset()
        assert m.offset == 6


class TestValidation:
    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            make_machine(period=0)

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            make_machine(nack_threshold=0)

    def test_out_of_range_pick_raises(self):
        with pytest.raises(ValueError):
            TagStateMachine(4, lambda p: p)  # picker returns period itself
