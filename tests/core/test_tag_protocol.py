"""Tests for the tag-side MAC."""

import itertools

import pytest

from repro.core.state_machine import TagState
from repro.core.tag_protocol import TagMac
from repro.phy.packets import DownlinkBeacon


def make_tag(period=4, offsets=None, late_arrival=False, **kwargs):
    if offsets is None:
        counter = itertools.count()
        picker = lambda p: next(counter) % p
    else:
        it = iter(offsets)
        picker = lambda p: next(it)
    return TagMac("tagX", tid=1, period=period, offset_picker=picker,
                  late_arrival=late_arrival, **kwargs)


BEACON = DownlinkBeacon(ack=False, empty=True)
ACK = DownlinkBeacon(ack=True, empty=True)


class TestSlotCounting:
    def test_counter_increments_per_beacon(self):
        tag = make_tag()
        for _ in range(5):
            tag.on_beacon(BEACON)
        assert tag.slot_counter == 5

    def test_transmits_at_matching_slot(self):
        tag = make_tag(period=4, offsets=[2])
        first = [tag.on_beacon(BEACON).transmit for _ in range(3)]  # slots 0-2
        assert first == [False, False, True]
        tag.on_beacon(ACK)  # slot 3: feedback settles the tag at offset 2
        rest = [tag.on_beacon(ACK).transmit for _ in range(8)]  # slots 4-11
        assert rest == [False, False, True, False] * 2

    def test_counter_stalls_on_beacon_loss(self):
        # Sec. 5.4: a missed beacon shifts the effective offset by one.
        tag = make_tag(period=4, offsets=[2, 2])
        tag.on_beacon(BEACON)
        tag.on_beacon_loss()
        assert tag.slot_counter == 1
        assert tag.beacons_missed == 1


class TestFeedbackGating:
    def test_ack_ignored_if_did_not_transmit(self):
        # "Tags respond to ACK/NACK only if they transmitted at the
        # last slot."
        tag = make_tag(period=4, offsets=[2])
        tag.on_beacon(ACK)  # slot 0: not our slot, ACK must be ignored
        assert tag.state is TagState.MIGRATE

    def test_ack_after_transmission_settles(self):
        tag = make_tag(period=4, offsets=[0])
        assert tag.on_beacon(BEACON).transmit  # slot 0: transmits
        tag.on_beacon(ACK)  # feedback for slot 0
        assert tag.state is TagState.SETTLE
        assert tag.ever_settled

    def test_nack_after_transmission_migrates(self):
        tag = make_tag(period=4, offsets=[0, 3])
        tag.on_beacon(BEACON)
        tag.on_beacon(BEACON)  # NACK (no ack flag)
        assert tag.state is TagState.MIGRATE
        assert tag.offset == 3

    def test_transmitted_flag_cleared_after_feedback(self):
        tag = make_tag(period=4, offsets=[0])
        tag.on_beacon(BEACON)
        assert tag.transmitted_last_slot
        tag.on_beacon(ACK)
        # Settled at offset 0 -> transmits again at slot 4, not slot 1.
        assert not tag.on_beacon(ACK).transmit or tag.slot_counter % 4 == 0


class TestReset:
    def test_reset_clears_state_and_counter(self):
        tag = make_tag(period=4, offsets=[0, 1])
        tag.on_beacon(BEACON)
        tag.on_beacon(ACK)
        tag.on_beacon(DownlinkBeacon(reset=True, empty=True))
        assert tag.state is TagState.MIGRATE
        assert tag.slot_counter == 1  # counts restart from the RESET beacon
        assert not tag.ever_settled


class TestEmptyFlagGating:
    def test_late_tag_defers_when_slot_predicted_busy(self):
        tag = make_tag(period=4, offsets=[0, 2], late_arrival=True)
        decision = tag.on_beacon(DownlinkBeacon(empty=False))
        assert not decision.transmit
        assert tag.offset == 2  # re-rolled instead of colliding

    def test_late_tag_transmits_when_empty(self):
        tag = make_tag(period=4, offsets=[0], late_arrival=True)
        assert tag.on_beacon(DownlinkBeacon(empty=True)).transmit

    def test_early_tag_ignores_empty_flag(self):
        # Sec. 5.5: "only newly arriving tags respond to the EMPTY flag".
        tag = make_tag(period=4, offsets=[0], late_arrival=False)
        assert tag.on_beacon(DownlinkBeacon(empty=False)).transmit

    def test_late_tag_stops_obeying_after_first_settle(self):
        tag = make_tag(period=4, offsets=[0], late_arrival=True)
        tag.on_beacon(DownlinkBeacon(empty=True))  # slot 0: transmits
        tag.on_beacon(DownlinkBeacon(ack=True, empty=True))  # slot 1: settles
        assert not tag.is_new
        tag.on_beacon(DownlinkBeacon(empty=True))  # slot 2
        tag.on_beacon(DownlinkBeacon(empty=True))  # slot 3
        # Slot 4 is the tag's scheduled slot; settled tags transmit
        # regardless of the EMPTY prediction.
        assert tag.on_beacon(DownlinkBeacon(empty=False)).transmit

    def test_gating_can_be_disabled(self):
        tag = make_tag(period=4, offsets=[0], late_arrival=True,
                       respect_empty_flag=False)
        assert tag.on_beacon(DownlinkBeacon(empty=False)).transmit


class TestBeaconLoss:
    def test_watchdog_demotes_settled_tag(self):
        tag = make_tag(period=4, offsets=[0, 1])
        tag.on_beacon(BEACON)
        tag.on_beacon(ACK)
        assert tag.state is TagState.SETTLE
        tag.on_beacon_loss()
        assert tag.state is TagState.MIGRATE

    def test_no_transmission_during_loss(self):
        tag = make_tag(period=4, offsets=[0, 0])
        assert not tag.on_beacon_loss().transmit


class TestConsecutiveBeaconLoss:
    def test_counter_tracks_loss_runs(self):
        tag = make_tag(period=4)  # cycling picker: demotes re-roll freely
        for expected in (1, 2, 3):
            tag.on_beacon_loss()
            assert tag.consecutive_beacon_losses == expected
        tag.on_beacon(BEACON)
        assert tag.consecutive_beacon_losses == 0
        tag.on_beacon_loss()
        assert tag.consecutive_beacon_losses == 1
        assert tag.beacons_missed == 4  # lifetime total keeps counting

    def test_each_loss_in_a_run_demotes_without_hook(self):
        # Vanilla Sec. 5.4: every loss re-rolls the offset; a run of N
        # losses consumes N picks from the offset picker.
        picks = []

        def picker(p):
            picks.append(p)
            return len(picks) % p

        tag = TagMac("tagX", tid=1, period=4, offset_picker=picker)
        initial = len(picks)
        tag.on_beacon(ACK)
        for _ in range(5):
            tag.on_beacon_loss()
        assert len(picks) - initial >= 5

    def test_hook_sees_every_loss_in_sequence(self):
        seen = []

        class Hook:
            def on_beacon_loss(self, t):
                seen.append(t.consecutive_beacon_losses)
                return True

            def on_power_cycle(self, t):
                pass

        tag = make_tag(period=4, offsets=[2])
        tag.attach_recovery(Hook())
        for _ in range(4):
            tag.on_beacon_loss()
        assert seen == [1, 2, 3, 4]

    def test_suppressed_loss_keeps_offset_and_state(self):
        class Hold:
            def on_beacon_loss(self, t):
                return True

            def on_power_cycle(self, t):
                pass

        tag = make_tag(period=4, offsets=[2, 0])
        tag.on_beacon(BEACON)
        tag.on_beacon(BEACON)
        tag.on_beacon(BEACON)  # slot 2: transmits at its offset
        tag.on_beacon(ACK)  # settles
        tag.attach_recovery(Hold())
        for _ in range(6):
            tag.on_beacon_loss()
        assert tag.state is TagState.SETTLE
        assert tag.offset == 2

    def test_detached_hook_restores_vanilla_demote(self):
        class Hold:
            def on_beacon_loss(self, t):
                return True

            def on_power_cycle(self, t):
                pass

        tag = make_tag(period=4, offsets=[0, 1])
        tag.on_beacon(ACK)
        tag.attach_recovery(Hold())
        tag.on_beacon_loss()
        tag.attach_recovery(None)
        tag.on_beacon_loss()
        assert tag.state is TagState.MIGRATE


class TestPowerCycleRejoin:
    def test_power_cycle_counts_and_resets_protocol_state(self):
        tag = make_tag(period=4, offsets=[2, 1])
        for _ in range(3):
            tag.on_beacon(BEACON)
        tag.on_beacon(ACK)
        tag.power_cycle()
        assert tag.power_cycles == 1
        assert tag.slot_counter == 0
        assert not tag.ever_settled
        assert tag.late_arrival  # rejoins as an EMPTY-gated newcomer

    def test_power_cycle_notifies_hook_synchronously(self):
        events = []

        class Hook:
            def on_beacon_loss(self, t):
                return False

            def on_power_cycle(self, t):
                events.append(t.power_cycles)
                t.rejoin_holdoff = 7

        tag = make_tag(period=4, offsets=[2, 1])
        tag.attach_recovery(Hook())
        tag.power_cycle()
        assert events == [1]
        assert tag.rejoin_holdoff == 7  # armed before the next beacon

    def test_holdoff_silences_and_drains_per_beacon(self):
        tag = make_tag(period=2, offsets=[0])
        tag.rejoin_holdoff = 4
        decisions = [tag.on_beacon(BEACON) for _ in range(4)]
        assert all(not d.transmit for d in decisions)
        assert tag.rejoin_holdoff == 0
        assert tag.slot_counter == 4  # counter keeps tracking beacons
        # Holdoff drained: slot 4 matches offset 0 mod 2, so it speaks.
        assert tag.on_beacon(BEACON).transmit

    def test_holdoff_still_processes_feedback_and_reset(self):
        tag = make_tag(period=4, offsets=[0, 3])
        tag.on_beacon(ACK)  # transmits at slot 0... 
        assert tag.transmitted_last_slot
        tag.rejoin_holdoff = 1
        tag.on_beacon(DownlinkBeacon(ack=True, empty=True))
        assert tag.state is TagState.SETTLE  # ACK applied despite holdoff
        tag.rejoin_holdoff = 1
        tag.on_beacon(DownlinkBeacon(ack=False, empty=True, reset=True))
        assert tag.slot_counter == 1  # RESET zeroed it, then +1 this slot
        assert not tag.ever_settled

    def test_consecutive_power_cycles_under_fault_schedule(self):
        from repro.core.network import NetworkConfig, SlottedNetwork
        from repro.faults.schedule import FaultEvent, FaultSchedule

        schedule = FaultSchedule(
            [
                FaultEvent(slot=100, duration=5, kind="brownout", target="tag2"),
                FaultEvent(slot=150, duration=5, kind="brownout", target="tag2"),
                FaultEvent(slot=200, duration=5, kind="brownout", target="tag2"),
            ]
        )
        net = SlottedNetwork(
            {"tag1": 4, "tag2": 8, "tag3": 8},
            config=NetworkConfig(seed=0, ideal_channel=True),
            faults=schedule,
        )
        net.run(400)
        assert net.tags["tag2"].power_cycles == 3
        assert net.run_until_converged() is not None
