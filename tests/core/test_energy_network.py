"""Tests for the energy-coupled network simulation."""

import pytest

from repro.core.energy_network import EnergyAwareNetwork
from repro.core.network import NetworkConfig
from repro.experiments.configs import pattern


def make(periods, seed=1, **kwargs):
    return EnergyAwareNetwork(
        periods,
        config=NetworkConfig(seed=seed, ideal_channel=True),
        **kwargs,
    )


class TestPhysicsDrivenActivation:
    def test_all_tags_start_dark(self):
        net = make({"tag8": 4, "tag11": 8})
        assert all(not d.powered for d in net.devices.values())
        assert all(t.late_arrival for t in net.tags.values())

    def test_activation_order_follows_harvest_rate(self):
        net = make(pattern("c2").tag_periods())
        net.run(200)
        dark = {n: log.slots_dark for n, log in net.energy_log.items()}
        assert min(dark, key=dark.get) == "tag8"  # 4.5 s charge
        assert max(dark, key=dark.get) in ("tag11", "tag12")  # ~57 s

    def test_activation_times_match_charging_model(self, medium, harvester):
        net = make({"tag8": 4})
        net.run(10)
        expected = harvester.charge_time_s(medium.carrier_amplitude_v("tag8"))
        assert net.energy_log["tag8"].slots_dark == pytest.approx(
            expected, abs=1.5
        )

    def test_precharged_tags_start_immediately(self):
        net = make({"tag8": 4}, initial_capacitor_v=2.35)
        assert net.devices["tag8"].powered
        assert not net.tags["tag8"].late_arrival


class TestSustainability:
    def test_protocol_duty_cycle_never_browns_out(self):
        # The Sec. 6.2 claim, demonstrated dynamically: the protocol's
        # duty cycle is indefinitely sustainable for every tag.
        net = make(pattern("c2").tag_periods())
        net.run(800)
        assert net.total_brownouts() == 0
        assert net.settled_fraction() == 1.0

    def test_dark_tags_never_transmit(self):
        net = make(pattern("c2").tag_periods())
        records = net.run(30)  # nobody but tag8 is charged yet
        for r in records[:4]:
            assert r.n_transmitters == 0

    def test_heavy_sensing_browns_out_weak_tags_only(self):
        # ~60 uW of extra sensing load exceeds tag11's 47 uW budget but
        # not tag8's 588 uW.
        net = make(
            {"tag11": 4, "tag8": 4},
            sensor_samples_per_slot=60,
        )
        net.run(1500)
        assert net.energy_log["tag11"].brownouts > 0
        assert net.energy_log["tag8"].brownouts == 0
        av = net.availability()
        assert av["tag8"] > 0.95
        assert av["tag11"] < 0.95

    def test_brownout_recovery_resumes_from_lth(self):
        net = make({"tag11": 4}, sensor_samples_per_slot=60)
        net.run(1500)
        log = net.energy_log["tag11"]
        assert log.brownouts >= 2
        # Dark stretches are resume charges (~8.6 s), far shorter than
        # the ~57 s cold start.
        mean_dark_after_first = (
            log.slots_dark - 57
        ) / max(log.brownouts, 1)
        assert mean_dark_after_first < 20

    def test_moderate_sensing_is_fine(self):
        # One sample per slot is the paper's design point (Sec. 6.5).
        net = make({"tag11": 4}, sensor_samples_per_slot=1)
        net.run(800)
        assert net.total_brownouts() == 0


class TestValidation:
    def test_negative_sampling_raises(self):
        with pytest.raises(ValueError):
            make({"tag8": 4}, sensor_samples_per_slot=-1)

    def test_availability_bounds(self):
        net = make({"tag8": 4, "tag11": 8})
        net.run(100)
        for v in net.availability().values():
            assert 0.0 <= v <= 1.0
