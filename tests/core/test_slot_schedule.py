"""Tests for vanilla slot allocation and schedule algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.slot_schedule import (
    Assignment,
    ScheduleError,
    assign_offsets,
    count_collision_slots,
    find_free_offset,
    is_permissible_period,
    offsets_conflict,
    schedule_table,
    slot_utilization,
)
from repro.experiments.configs import TABLE1_OFFSETS, TABLE1_PERIODS

periods_strategy = st.lists(
    st.sampled_from([1, 2, 4, 8, 16, 32]), min_size=1, max_size=10
)


class TestPeriods:
    def test_powers_of_two_permissible(self):
        for p in (1, 2, 4, 8, 16, 32, 64):
            assert is_permissible_period(p)

    def test_non_powers_rejected(self):
        for p in (0, 3, 5, 6, 7, 12, -4):
            assert not is_permissible_period(p)

    def test_utilization_exact_fractions(self):
        u = slot_utilization([2, 4, 8, 8])
        assert u == Fraction(1)  # Table 1's configuration saturates

    def test_utilization_c3(self):
        # Pattern c3: 1x4 + 2x8 + 2x16 + 7x32 = 0.84375.
        periods = [4] + [8] * 2 + [16] * 2 + [32] * 7
        assert slot_utilization(periods) == Fraction(27, 32)

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            slot_utilization([3])


class TestConflicts:
    def test_same_offset_same_period_conflicts(self):
        assert offsets_conflict(4, 2, 4, 2)

    def test_different_offsets_same_period_disjoint(self):
        assert not offsets_conflict(4, 1, 4, 2)

    def test_nested_period_conflict(self):
        # (2, 0) occupies slots 0,2,4..; (4, 2) occupies 2,6,..: overlap.
        assert offsets_conflict(2, 0, 4, 2)

    def test_nested_period_disjoint(self):
        assert not offsets_conflict(2, 0, 4, 1)

    @given(
        st.sampled_from([2, 4, 8]),
        st.integers(0, 7),
        st.sampled_from([2, 4, 8]),
        st.integers(0, 7),
    )
    def test_conflict_matches_bruteforce(self, pa, aa, pb, ab):
        aa %= pa
        ab %= pb
        brute = any(
            s % pa == aa and s % pb == ab for s in range(pa * pb)
        )
        assert offsets_conflict(pa, aa, pb, ab) == brute


class TestAssignOffsets:
    def test_table1_configuration_assignable(self):
        result = assign_offsets(TABLE1_PERIODS)
        table = schedule_table(result)
        assert count_collision_slots(table) == 0
        # Utilization 1.0: every slot of the hyperperiod is used.
        assert all(len(slot) == 1 for slot in table)

    def test_table1_paper_offsets_are_valid_preassignment(self):
        result = assign_offsets(TABLE1_PERIODS, preassigned=TABLE1_OFFSETS)
        for tag, offset in TABLE1_OFFSETS.items():
            assert result[tag].offset == offset
        assert count_collision_slots(schedule_table(result)) == 0

    def test_over_capacity_raises(self):
        with pytest.raises(ScheduleError):
            assign_offsets({"a": 2, "b": 2, "c": 2})

    def test_conflicting_preassignment_raises(self):
        with pytest.raises(ScheduleError):
            assign_offsets({"a": 4, "b": 4}, preassigned={"a": 1, "b": 1})

    def test_preassigned_unknown_tag_raises(self):
        with pytest.raises(ScheduleError):
            assign_offsets({"a": 4}, preassigned={"zz": 0})

    @given(periods_strategy)
    def test_greedy_succeeds_whenever_capacity_allows(self, periods):
        mapping = {f"t{i}": p for i, p in enumerate(periods)}
        if slot_utilization(periods) <= 1:
            result = assign_offsets(mapping)
            assert count_collision_slots(schedule_table(result)) == 0
        else:
            with pytest.raises(ScheduleError):
                assign_offsets(mapping)

    @given(periods_strategy)
    def test_assignment_respects_periods(self, periods):
        mapping = {f"t{i}": p for i, p in enumerate(periods)}
        if slot_utilization(periods) <= 1:
            for tag, a in assign_offsets(mapping).items():
                assert a.period == mapping[tag]
                assert 0 <= a.offset < a.period


class TestFindFreeOffset:
    def test_finds_gap(self):
        existing = [Assignment("a", 4, 0), Assignment("b", 4, 1)]
        offset = find_free_offset(4, existing)
        assert offset in (2, 3)

    def test_returns_none_when_blocked(self):
        # The Sec. 5.6 example: A and B (period 4) at offsets 2 and 3
        # leave no room for a period-2 newcomer.
        existing = [Assignment("A", 4, 2), Assignment("B", 4, 3)]
        assert find_free_offset(2, existing) is None

    def test_empty_existing_gives_zero(self):
        assert find_free_offset(8, []) == 0


class TestScheduleTable:
    def test_table1_rendering_matches_paper(self):
        assignments = {
            t: Assignment(t, TABLE1_PERIODS[t], TABLE1_OFFSETS[t])
            for t in TABLE1_PERIODS
        }
        table = schedule_table(assignments, 8)
        # Paper Table 1: A at 0,2,4,6; B at 1,5; D at 3; C at 7.
        assert table[0] == ["tA"]
        assert table[1] == ["tB"]
        assert table[3] == ["tD"]
        assert table[7] == ["tC"]

    def test_empty_assignments(self):
        assert schedule_table({}) == []

    def test_transmits_in(self):
        a = Assignment("x", 4, 1)
        assert a.transmits_in(5)
        assert not a.transmits_in(4)

    def test_invalid_offset_raises(self):
        with pytest.raises(ValueError):
            Assignment("x", 4, 4)
