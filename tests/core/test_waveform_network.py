"""Tests for the waveform-fidelity network (DSP-in-the-loop MAC)."""

import zlib

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.state_machine import TagState
from repro.core.waveform_network import WaveformNetwork, stable_name_hash


@pytest.fixture(scope="module")
def converged_net(medium):
    net = WaveformNetwork(
        {"tag5": 4, "tag8": 4, "tag9": 8},
        medium=medium,
        config=NetworkConfig(seed=3),
    )
    t = net.run_until_converged(streak=16, max_slots=400)
    assert t is not None
    return net


class TestConvergenceThroughRealDsp:
    def test_converges(self, converged_net):
        assert all(
            mac.state is TagState.SETTLE for mac in converged_net.tags.values()
        )

    def test_goodput_matches_utilization(self, converged_net):
        records = converged_net.run(40)
        decoded = sum(1 for r in records if r.decoded is not None)
        # U = 1/4 + 1/4 + 1/8 = 0.625 -> ~25 decodes in 40 slots.
        assert decoded == pytest.approx(25, abs=3)

    def test_no_collisions_after_convergence(self, converged_net):
        tail = converged_net.records[-30:]
        assert not any(r.truly_collided for r in tail)

    def test_decoded_tids_map_to_transmitters(self, converged_net):
        for log in converged_net.slot_logs:
            if len(log.transmitters) == 1 and log.decoded_tids:
                mac = converged_net.tags[log.transmitters[0]]
                assert mac.tid in log.decoded_tids

    def test_single_transmitter_slots_show_two_clusters(self, converged_net):
        singles = [
            log
            for log in converged_net.slot_logs
            if len(log.transmitters) == 1 and log.decoded_tids
        ]
        assert singles
        ok = sum(1 for log in singles if log.n_clusters == 2)
        assert ok / len(singles) > 0.8

    def test_collision_slots_show_extra_clusters(self, converged_net):
        multi = [
            log for log in converged_net.slot_logs if len(log.transmitters) >= 2
        ]
        if multi:  # convergence implies early collisions existed
            detected = sum(1 for log in multi if log.n_clusters > 2)
            assert detected / len(multi) > 0.5


class TestCrossFidelityAgreement:
    def test_convergence_same_order_of_magnitude(self, medium):
        periods = {"tag5": 4, "tag8": 4, "tag9": 8}
        wf_times = []
        sl_times = []
        for seed in (1, 2, 3):
            wf = WaveformNetwork(
                periods, medium=medium, config=NetworkConfig(seed=seed)
            )
            wf_times.append(wf.run_until_converged(streak=16, max_slots=500))
            sl = SlottedNetwork(
                periods, medium=medium, config=NetworkConfig(seed=seed)
            )
            sl_times.append(sl.run_until_converged(streak=16, max_slots=500))
        assert all(t is not None for t in wf_times)
        # Same protocol, same channel statistics: the medians should
        # agree within a small factor (different RNG consumption order).
        import numpy as np

        assert np.median(wf_times) < 5 * np.median(sl_times) + 32
        assert np.median(sl_times) < 5 * np.median(wf_times) + 32

    def test_payload_override(self, medium):
        net = WaveformNetwork(
            {"tag8": 2},
            medium=medium,
            config=NetworkConfig(seed=0),
            payloads={"tag8": 1234},
        )
        net.run(8)
        assert any(
            log.decoded_tids for log in net.slot_logs
        )  # the tag's frames decode through the chain


class TestStablePayloads:
    def test_name_hash_is_crc32(self):
        assert stable_name_hash("tag8") == zlib.crc32(b"tag8")

    def test_name_hash_independent_of_pythonhashseed(self):
        import subprocess
        import sys

        cmd = (
            "from repro.core.waveform_network import stable_name_hash;"
            "print(stable_name_hash('tag11'))"
        )
        values = {
            subprocess.run(
                [sys.executable, "-c", cmd],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            ).stdout.strip()
            for seed in ("0", "1", "31337")
        }
        assert len(values) == 1

    def test_default_payloads_reproducible_across_instances(self, medium):
        def payloads(seed):
            net = WaveformNetwork(
                {"tag8": 2}, medium=medium, config=NetworkConfig(seed=seed)
            )
            return [net._payload_for("tag8") for _ in range(3)]

        assert payloads(5) == payloads(5)


class TestLinkBudgetCache:
    def test_cached_after_first_use(self, medium):
        net = WaveformNetwork(
            {"tag8": 2}, medium=medium, config=NetworkConfig(seed=0)
        )
        assert net._link_cache == {}
        first = net._link_budget("tag8")
        assert net._link_cache["tag8"] == first

    def test_serves_stale_value_until_invalidated(self, medium, monkeypatch):
        net = WaveformNetwork(
            {"tag8": 2}, medium=medium, config=NetworkConfig(seed=0)
        )
        before = net._link_budget("tag8")
        monkeypatch.setattr(
            type(medium),
            "backscatter_amplitude_v",
            lambda self, name: 123.0,
        )
        assert net._link_budget("tag8") == before  # cache still serving
        net.invalidate_link_cache()
        amplitude_v, _ = net._link_budget("tag8")
        assert amplitude_v != before[0]

    def test_invalidate_link_cache_deprecation_warns_once(self, medium, monkeypatch):
        """The deprecated escape hatch warns exactly once per process —
        a strain sweep calling it per step must not drown the log."""
        import warnings as warnings_mod

        from repro.core import waveform_network as wn

        monkeypatch.setattr(wn, "_LINK_CACHE_DEPRECATION_EMITTED", False)
        net = WaveformNetwork(
            {"tag8": 2}, medium=medium, config=NetworkConfig(seed=0)
        )
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            net.invalidate_link_cache()
            net.invalidate_link_cache()
            net.invalidate_link_cache()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "invalidate_channel_cache" in str(deprecations[0].message)
        # The latch is process-wide: a second network does not re-warn.
        other = WaveformNetwork(
            {"tag8": 2}, medium=medium, config=NetworkConfig(seed=1)
        )
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            other.invalidate_link_cache()
        assert not caught

    def test_matches_direct_medium_walk(self, medium):
        from repro.experiments.fig12_uplink import WAVEFORM_AMPLITUDE_CALIBRATION

        net = WaveformNetwork(
            {"tag8": 2}, medium=medium, config=NetworkConfig(seed=0)
        )
        amplitude_v, delay_s = net._link_budget("tag8")
        assert amplitude_v == pytest.approx(
            WAVEFORM_AMPLITUDE_CALIBRATION
            * medium.backscatter_amplitude_v("tag8")
        )
        assert delay_s == pytest.approx(medium.propagation_delay_s("tag8"))

    def test_follows_channel_generation_without_explicit_invalidate(self):
        from repro.channel.medium import AcousticMedium

        medium = AcousticMedium()
        net = WaveformNetwork(
            {"tag4": 2}, medium=medium, config=NetworkConfig(seed=0)
        )
        before = net._link_budget("tag4")
        # A strain sweep that reports its mutation to the medium but
        # forgets net.invalidate_link_cache(): the generation counter
        # must drop the stale budget on its own.  (tag8 anchors the
        # reference round-trip loss, so probe a non-reference tag.)
        medium.biw.set_joint_loss_offset_db(6.0)
        medium.invalidate_channel_cache()
        after = net._link_budget("tag4")
        assert after[0] != before[0]
        assert after[0] == pytest.approx(
            net._link_budget("tag4")[0]
        )  # re-cached under the new generation

    def test_mid_run_medium_mutation_degrades_decodes(self):
        """Regression: before the generation counter, a mid-run BiW
        mutation kept serving pre-mutation amplitudes until someone
        remembered to call invalidate_link_cache()."""
        from repro.channel.medium import AcousticMedium

        def decoded_after_mutation(offset_db: float) -> int:
            medium = AcousticMedium()
            net = WaveformNetwork(
                {"tag4": 2}, medium=medium, config=NetworkConfig(seed=1)
            )
            net.run(10)
            medium.biw.set_joint_loss_offset_db(offset_db)
            medium.invalidate_channel_cache()
            records = net.run(20)
            return sum(1 for r in records if r.decoded == "tag4")

        unhurt = decoded_after_mutation(0.0)
        crushed = decoded_after_mutation(60.0)
        assert unhurt > 0
        assert crushed == 0  # 60 dB of extra joint loss must be felt
