"""Cross-cutting property-based tests (hypothesis).

These check the *invariants* the system's correctness rests on, over
randomly generated configurations — complementing the per-module
example-based tests.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.slot_schedule import offsets_conflict
from repro.core.state_machine import TagState

TAG_POOL = [f"tag{i}" for i in range(1, 13)]

period_sets = st.lists(
    st.sampled_from([4, 8, 16, 32]), min_size=2, max_size=6
).filter(lambda ps: sum(1.0 / p for p in ps) <= 1.0)


def build_network(periods, seed, **cfg):
    mapping = {TAG_POOL[i]: p for i, p in enumerate(periods)}
    return SlottedNetwork(
        mapping, config=NetworkConfig(seed=seed, ideal_channel=True, **cfg)
    )


class TestProtocolSafety:
    """Invariants of the converged protocol state."""

    @settings(max_examples=15, deadline=None)
    @given(period_sets, st.integers(min_value=0, max_value=10_000))
    def test_converged_offsets_are_conflict_free(self, periods, seed):
        net = build_network(periods, seed)
        t = net.run_until_converged(max_slots=100_000)
        assert t is not None
        macs = list(net.tags.values())
        for i in range(len(macs)):
            for j in range(i + 1, len(macs)):
                a, b = macs[i], macs[j]
                assert not offsets_conflict(a.period, a.offset, b.period, b.offset)

    @settings(max_examples=15, deadline=None)
    @given(period_sets, st.integers(min_value=0, max_value=10_000))
    def test_reader_commitments_match_tag_state(self, periods, seed):
        net = build_network(periods, seed)
        net.run_until_converged(max_slots=100_000)
        committed = net.reader.committed_assignments
        # Every settled tag's ground-truth offset is what the reader
        # committed for it (ideal channel: counters never desync).
        for name, mac in net.tags.items():
            if mac.state is TagState.SETTLE and name in committed:
                assert committed[name].offset == mac.offset % mac.period

    @settings(max_examples=10, deadline=None)
    @given(period_sets, st.integers(min_value=0, max_value=1000))
    def test_decoded_tag_always_among_transmitters(self, periods, seed):
        net = build_network(periods, seed)
        records = net.run(300)
        for r in records:
            if r.decoded is not None:
                assert r.n_transmitters >= 1

    @settings(max_examples=10, deadline=None)
    @given(period_sets, st.integers(min_value=0, max_value=1000))
    def test_slot_indices_contiguous(self, periods, seed):
        net = build_network(periods, seed)
        records = net.run(100)
        assert [r.slot for r in records] == list(range(100))

    @settings(max_examples=10, deadline=None)
    @given(period_sets, st.integers(min_value=0, max_value=1000))
    def test_no_acks_on_collisions_ever(self, periods, seed):
        net = build_network(periods, seed)
        records = net.run(400)
        for r in records:
            if r.collision_detected:
                assert not r.acked


class TestChannelInvariants:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        st.sampled_from(TAG_POOL),
        st.floats(min_value=50.0, max_value=5000.0),
    )
    def test_snr_monotone_decreasing_in_rate(self, medium, tag, rate):
        assert medium.uplink_snr_db(tag, rate) > medium.uplink_snr_db(
            tag, rate * 2.0
        )

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        st.sampled_from(TAG_POOL),
        st.floats(min_value=50.0, max_value=5000.0),
        st.integers(min_value=1, max_value=256),
    )
    def test_packet_success_is_probability(self, medium, tag, rate, bits):
        p = medium.uplink_packet_success(tag, rate, bits)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.sampled_from(TAG_POOL))
    def test_backscatter_weaker_than_carrier(self, medium, tag):
        # Round-trip reflected energy cannot exceed the one-way carrier.
        assert medium.backscatter_amplitude_v(tag) < medium.carrier_amplitude_v(tag)


class TestEnergyInvariants:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.floats(min_value=0.0, max_value=3.0))
    def test_net_power_nonnegative(self, harvester, vp):
        assert harvester.net_charging_power_w(vp) >= 0.0

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.floats(min_value=0.32, max_value=3.0))
    def test_energy_conservation_over_full_charge(self, harvester, vp):
        # average power x charge time == stored energy, exactly.
        t = harvester.charge_time_s(vp)
        p = harvester.net_charging_power_w(vp)
        e = harvester.supercap.stored_energy_j(harvester.thresholds.high_v)
        assert p * t == pytest.approx(e, rel=1e-9)


class TestLatticeProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.complex_numbers(max_magnitude=5.0, allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.3, max_value=3.0),
        st.floats(min_value=0.3, max_value=3.0),
        st.floats(min_value=0.4, max_value=2.7),  # angle between generators
    )
    def test_fit_recovers_random_parallelograms(self, origin, m1, m2, angle):
        from repro.ext.parallel import fit_lattice

        v1 = complex(m1, 0)
        v2 = m2 * complex(np.cos(angle), np.sin(angle))
        centers = [origin, origin + v1, origin + v2, origin + v1 + v2]
        fit = fit_lattice(centers)
        assert fit is not None
        points = {
            fit.origin + b1 * fit.v1 + b2 * fit.v2
            for b1 in (0, 1)
            for b2 in (0, 1)
        }
        for c in centers:
            assert min(abs(c - p) for p in points) < 1e-6

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.complex_numbers(max_magnitude=3.0, allow_nan=False, allow_infinity=False),
            min_size=4,
            max_size=4,
            unique=True,
        )
    )
    def test_fit_never_crashes_and_labels_are_valid(self, centers):
        from repro.ext.parallel import fit_lattice

        fit = fit_lattice(centers)
        if fit is not None:
            for c in centers:
                b1, b2 = fit.label(c)
                assert b1 in (0, 1) and b2 in (0, 1)


class TestMarkovProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(st.sampled_from([2, 4]), min_size=1, max_size=3).filter(
            lambda ps: sum(1.0 / p for p in ps) <= 1.0
        )
    )
    def test_transitions_always_stochastic(self, periods):
        from repro.analysis.markov import SlotAllocationChain

        chain = SlotAllocationChain(periods)
        states, trans = chain.explore()
        for s in states[:200]:
            assert sum(trans[s].values()) == pytest.approx(1.0, abs=1e-9)


class TestWaveformRoundtripFuzz:
    """Fuzz the full uplink waveform path with random frames."""

    @settings(max_examples=5, deadline=None)
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=4095),
        st.floats(min_value=0.0, max_value=6.28),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_any_frame_roundtrips_at_default_rate(self, tid, payload, phase, seed):
        from repro.phy.modem import BackscatterUplink
        from repro.phy.packets import UplinkPacket
        from repro.phy.reader_dsp import ReaderReceiveChain

        rng = np.random.default_rng(seed)
        uplink = BackscatterUplink()
        chain = ReaderReceiveChain()
        packet = UplinkPacket(tid, payload)
        component = uplink.tag_component(
            packet.to_bits(), 375.0, 0.02, phase_rad=phase, lead_in_s=0.03
        )
        capture = uplink.capture([component], 2.673e-10, rng, extra_samples=2000)
        assert packet in chain.decode(capture, 375.0).packets


class TestFdmaProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.sampled_from([4, 8, 16, 32]), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=4),
    )
    def test_channel_assignment_is_balanced_partition(self, periods, n_channels):
        from fractions import Fraction

        from repro.core.slot_schedule import slot_utilization
        from repro.ext.fdma import assign_channels

        mapping = {f"t{i}": p for i, p in enumerate(periods)}
        groups = assign_channels(mapping, n_channels)
        # Partition: every tag exactly once.
        seen = sorted(t for g in groups for t in g)
        assert seen == sorted(mapping)
        # LPT balance bound: max load <= min load + the largest share.
        loads = [float(slot_utilization(g.values())) if g else 0.0 for g in groups]
        largest_share = max(1.0 / p for p in periods)
        assert max(loads) <= min(loads) + largest_share + 1e-12
