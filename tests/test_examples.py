"""Every shipped example must run cleanly end to end.

Each example is executed in a subprocess (its own interpreter, like a
user would run it) and must exit 0 with the expected headline output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize(
    "name,expected",
    [
        ("quickstart.py", "Converged to a collision-free schedule"),
        # "all settled" is a transient property under realistic beacon
        # loss (a tag may be mid-re-migration at the snapshot instant);
        # the stable deliverable is the long-run ratio line.
        ("suv_deployment.py", "mean non-empty ratio"),
        ("battery_pack_monitoring.py", "all settled again: True"),
        ("strain_workbench.py", "correlation"),
        ("aloha_comparison.py", "clean-delivery improvement"),
        ("extensions_tour.py", "Parallel collision decoding"),
        ("shm_monitoring.py", "sustainable"),
    ],
)
def test_example_runs(name, expected):
    stdout = run_example(name)
    assert expected in stdout


def test_cli_module_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "table2"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "51.0" in result.stdout
