"""Unit tests for the fleet package's building blocks."""

import numpy as np
import pytest

from repro.core.network import NetworkConfig
from repro.fleet import (
    FleetEngine,
    FleetSpec,
    OffsetBank,
    UniformBank,
    specs_for_seeds,
)

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8}


class TestUniformBank:
    def _bank(self, n=3, block=16):
        gens = [np.random.Generator(np.random.PCG64(s)) for s in range(n)]
        return UniformBank(gens, block=block)

    def test_grid_matches_scalar_draw_order(self):
        bank = self._bank()
        reference = [
            np.random.Generator(np.random.PCG64(s)).random(10) for s in range(3)
        ]
        got = np.concatenate(
            [bank.take_grid(4), bank.take_grid(6)], axis=1
        )
        assert (got == np.stack(reference)).all()

    def test_refill_preserves_stream_order(self):
        bank = self._bank(block=16)
        reference = [
            np.random.Generator(np.random.PCG64(s)).random(40) for s in range(3)
        ]
        chunks = []
        for _ in range(10):
            bank.ensure(4)
            chunks.append(bank.take_grid(4))
        assert (np.concatenate(chunks, axis=1) == np.stack(reference)).all()

    def test_take_ranked_consumes_per_stream_counts(self):
        bank = self._bank()
        reference = [
            np.random.Generator(np.random.PCG64(s)).random(4) for s in range(3)
        ]
        ranks = np.array([[0, 1], [-1, -1], [0, -1]])
        counts = np.array([2, 0, 1])
        out = bank.take_ranked(ranks, counts)
        assert out[0, 0] == reference[0][0] and out[0, 1] == reference[0][1]
        assert out[2, 0] == reference[2][0]
        # Stream 1 consumed nothing; its next draw is still its first.
        assert bank.take_scalar(1) == reference[1][0]

    def test_ensure_rejects_oversized_requests(self):
        with pytest.raises(ValueError):
            self._bank(block=16).ensure(17)


class TestOffsetBank:
    def test_masked_draws_match_scalar_sequence(self):
        periods = [4, 8]
        grid = [
            [np.random.Generator(np.random.PCG64(100 * i + j)) for j in range(2)]
            for i in range(3)
        ]
        bank = OffsetBank(grid, periods, block=8)
        reference = {
            (i, j): np.random.Generator(
                np.random.PCG64(100 * i + j)
            ).integers(0, periods[j], size=20)
            for i in range(3)
            for j in range(2)
        }
        out = np.zeros((3, 2), dtype=np.int64)
        mask = np.ones((3, 2), dtype=bool)
        for k in range(20):
            bank.ensure(1)
            bank.take_masked(mask, out)
            for (i, j), ref in reference.items():
                assert out[i, j] == ref[k]

    def test_unselected_streams_keep_alignment(self):
        grid = [[np.random.Generator(np.random.PCG64(5))]]
        bank = OffsetBank(grid, [8], block=8)
        ref = np.random.Generator(np.random.PCG64(5)).integers(0, 8, size=3)
        out = np.zeros((1, 1), dtype=np.int64)
        bank.take_masked(np.array([[True]]), out)
        bank.take_masked(np.array([[False]]), out)  # no-op
        first = out[0, 0]
        bank.take_masked(np.array([[True]]), out)
        assert (first, out[0, 0]) == (ref[0], ref[1])


class TestFleetSpec:
    def test_specs_for_seeds_names_in_order(self):
        specs = specs_for_seeds([9, 8, 7])
        assert [s.name for s in specs] == ["net0", "net1", "net2"]
        assert [s.seed for s in specs] == [9, 8, 7]
        assert all(s.vectorizable for s in specs)

    def test_faulted_spec_is_not_vectorizable(self):
        from repro.faults.schedule import FaultEvent, FaultSchedule

        schedule = FaultSchedule(
            [FaultEvent(slot=1, duration=1, kind="beacon_loss")]
        )
        assert not FleetSpec(name="x", seed=0, faults=schedule).vectorizable


class TestFleetEngineValidation:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetEngine(
                PERIODS,
                [FleetSpec(name="a", seed=0), FleetSpec(name="a", seed=1)],
            )

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetEngine(PERIODS, [])

    def test_rejects_empty_topology(self):
        with pytest.raises(ValueError):
            FleetEngine({}, specs_for_seeds([0]))

    def test_energy_mode_rejects_activation_schedule(self):
        with pytest.raises(ValueError):
            FleetEngine(
                PERIODS,
                specs_for_seeds([0]),
                energy=True,
                activation_slot={"tag1": 5},
            )

    def test_reset_of_unknown_network_raises(self):
        engine = FleetEngine(PERIODS, specs_for_seeds([0, 1]))
        with pytest.raises(KeyError):
            engine.request_reset(["nope"])


class TestFleetEngineQueries:
    def test_summaries_follow_spec_order_and_slot_count(self):
        engine = FleetEngine(PERIODS, specs_for_seeds([3, 1, 2]))
        for _ in range(60):
            engine.step_all()
        summaries = engine.summaries()
        assert [s["network"] for s in summaries] == ["net0", "net1", "net2"]
        assert all(s["slots"] == 60 for s in summaries)
        assert engine.slots_elapsed == 60
        assert engine.aggregate_tag_slots() == 3 * 60 * len(PERIODS)

    def test_settled_fraction_reaches_one_on_ideal_channel(self):
        engine = FleetEngine(
            PERIODS,
            specs_for_seeds([0, 1, 2, 3]),
            config=NetworkConfig(ideal_channel=True),
        )
        for _ in range(200):
            engine.step_all()
        for spec in engine.specs:
            assert engine.settled_fraction(spec.name) == 1.0

    def test_telemetry_counters_match_record_tallies(self):
        from repro import telemetry

        with telemetry.collecting() as registry:
            engine = FleetEngine(PERIODS, specs_for_seeds([0, 1]))
            for _ in range(80):
                engine.step_all()
        metrics = registry.snapshot().to_jsonable()["metrics"]
        records = [engine.records(s.name) for s in engine.specs]
        decodes = sum(
            1 for recs in records for r in recs if r.decoded is not None
        )
        collisions = sum(
            1 for recs in records for r in recs if r.collision_detected
        )

        def total(name):
            return sum(
                entry["value"] for entry in metrics.get(name, {}).values()
            )

        assert total("mac.slots") == 2 * 80
        assert total("mac.decodes") == decodes
        assert total("mac.collisions") == collisions
