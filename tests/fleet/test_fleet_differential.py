"""Differential suite: the batch engine's correctness contract.

Every per-network slot log the fleet engine emits must be
*byte-identical* to the log of a sequential
:class:`~repro.core.network.SlottedNetwork` run under the same seed —
across dense and sparse topologies, real and ideal channels, protocol
ablations, staggered activation, mid-run RESET, fault injection,
supervised recovery, and the energy tier's supercapacitor physics.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.energy_network import EnergyAwareNetwork
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.fleet import FleetEngine, FleetSpec, specs_for_seeds

SEEDS = [1, 7, 23]

DENSE_PERIODS = {
    "tag1": 4,
    "tag2": 4,
    "tag3": 8,
    "tag4": 8,
    "tag5": 16,
    "tag6": 16,
}
SPARSE_PERIODS = {"tag1": 16, "tag2": 32, "tag3": 32}


def sequential_records(periods, seed, n_slots, config=None, **net_kwargs):
    cfg = replace(config or NetworkConfig(), seed=seed)
    net = SlottedNetwork(periods, config=cfg, **net_kwargs)
    net.run(n_slots)
    return net.records


def fleet_records(periods, seeds, n_slots, config=None, **engine_kwargs):
    engine = FleetEngine(
        periods, specs_for_seeds(seeds), config=config, **engine_kwargs
    )
    for _ in range(n_slots):
        engine.step_all()
    return [engine.records(spec.name) for spec in engine.specs]


class TestPlainScenarios:
    @pytest.mark.parametrize("periods", [DENSE_PERIODS, SPARSE_PERIODS])
    def test_real_channel_matches_sequential(self, periods):
        batch = fleet_records(periods, SEEDS, 400)
        for seed, records in zip(SEEDS, batch):
            assert records == sequential_records(periods, seed, 400)

    @pytest.mark.parametrize("periods", [DENSE_PERIODS, SPARSE_PERIODS])
    def test_ideal_channel_matches_sequential(self, periods):
        cfg = NetworkConfig(ideal_channel=True)
        batch = fleet_records(periods, SEEDS, 400, config=cfg)
        for seed, records in zip(SEEDS, batch):
            assert records == sequential_records(periods, seed, 400, config=cfg)

    @pytest.mark.parametrize(
        "config",
        [
            NetworkConfig(enable_empty_flag=False),
            NetworkConfig(enable_future_avoidance=False),
            NetworkConfig(enable_beacon_loss_timer=False),
            NetworkConfig(beacon_loss_probability=0.05),
        ],
        ids=["no-empty-flag", "no-future-avoidance", "no-loss-timer", "lossy"],
    )
    def test_ablations_match_sequential(self, config):
        batch = fleet_records(DENSE_PERIODS, SEEDS, 300, config=config)
        for seed, records in zip(SEEDS, batch):
            assert records == sequential_records(
                DENSE_PERIODS, seed, 300, config=config
            )

    def test_staggered_activation_matches_sequential(self):
        activation = {"tag2": 50, "tag5": 120, "tag6": 200}
        batch = fleet_records(
            DENSE_PERIODS, SEEDS, 400, activation_slot=activation
        )
        for seed, records in zip(SEEDS, batch):
            assert records == sequential_records(
                DENSE_PERIODS, seed, 400, activation_slot=activation
            )

    def test_mid_run_reset_matches_sequential(self):
        engine = FleetEngine(DENSE_PERIODS, specs_for_seeds(SEEDS))
        for slot in range(400):
            if slot == 150:
                engine.request_reset()
            engine.step_all()
        for seed, spec in zip(SEEDS, engine.specs):
            net = SlottedNetwork(
                DENSE_PERIODS, config=NetworkConfig(seed=seed)
            )
            for slot in range(400):
                if slot == 150:
                    net.reset()
                net.step()
            assert engine.records(spec.name) == net.records

    def test_selective_reset_hits_only_named_networks(self):
        engine = FleetEngine(DENSE_PERIODS, specs_for_seeds(SEEDS))
        for slot in range(300):
            if slot == 100:
                engine.request_reset([engine.specs[1].name])
            engine.step_all()
        for i, (seed, spec) in enumerate(zip(SEEDS, engine.specs)):
            net = SlottedNetwork(
                DENSE_PERIODS, config=NetworkConfig(seed=seed)
            )
            for slot in range(300):
                if slot == 100 and i == 1:
                    net.reset()
                net.step()
            assert engine.records(spec.name) == net.records


class TestFaultedAndSupervised:
    @staticmethod
    def _schedule():
        from repro.faults.schedule import FaultEvent, FaultSchedule

        return FaultSchedule(
            [
                FaultEvent(
                    slot=40,
                    duration=20,
                    kind="beacon_loss",
                    target="tag1",
                    magnitude=0.5,
                ),
                FaultEvent(
                    slot=80, duration=10, kind="noise_burst", magnitude=12.0
                ),
                FaultEvent(slot=120, duration=5, kind="brownout", target="tag3"),
                FaultEvent(slot=160, duration=1, kind="reader_restart"),
            ]
        )

    def test_mixed_fleet_matches_sequential(self):
        """Vector-lane, faulted, and supervised specs interleaved in one
        engine each reproduce their sequential twin exactly."""
        from repro.resilience import NetworkSupervisor

        specs = [
            FleetSpec(name="plain0", seed=SEEDS[0]),
            FleetSpec(name="faulted", seed=SEEDS[1], faults=self._schedule()),
            FleetSpec(name="plain1", seed=SEEDS[2]),
            FleetSpec(
                name="supervised",
                seed=SEEDS[0],
                supervisor_factory=NetworkSupervisor,
            ),
        ]
        engine = FleetEngine(DENSE_PERIODS, specs)
        for _ in range(240):
            engine.step_all()

        plain0 = sequential_records(DENSE_PERIODS, SEEDS[0], 240)
        assert engine.records("plain0") == plain0
        assert engine.records("plain1") == sequential_records(
            DENSE_PERIODS, SEEDS[2], 240
        )
        faulted = SlottedNetwork(
            DENSE_PERIODS,
            config=NetworkConfig(seed=SEEDS[1]),
            faults=self._schedule(),
        )
        faulted.run(240)
        assert engine.records("faulted") == faulted.records
        supervised = NetworkSupervisor(
            SlottedNetwork(DENSE_PERIODS, config=NetworkConfig(seed=SEEDS[0]))
        )
        supervised.run(240)
        assert engine.records("supervised") == supervised.network.records
        # And the faults did change the story vs the plain twin.
        assert engine.records("faulted") != plain0


class TestEnergyFaultedTier:
    """Fault schedules on the energy tier: the scalar lane must carry
    faulted :class:`EnergyAwareNetwork` twins byte-identically while
    plain specs in the same engine stay on the vector lane."""

    @staticmethod
    def _schedule():
        from repro.faults.schedule import FaultEvent, FaultSchedule

        return FaultSchedule(
            [
                FaultEvent(slot=60, duration=30, kind="brownout", target="tag2"),
                FaultEvent(
                    slot=120,
                    duration=40,
                    kind="harvester_collapse",
                    target="tag4",
                ),
                FaultEvent(
                    slot=200, duration=15, kind="noise_burst", magnitude=12.0
                ),
                FaultEvent(slot=260, duration=25, kind="brownout", target="tag5"),
            ]
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"sensor_samples_per_slot": 40.0},
            {"initial_capacitor_v": 2.4},
        ],
        ids=["default", "sensing", "precharged"],
    )
    def test_faulted_energy_spec_matches_sequential(self, kwargs):
        """A mixed energy fleet: two plain vector-lane specs bracket a
        faulted scalar-lane spec; every slot log matches its sequential
        twin and the plain specs keep their DeviceArrays physics."""
        names = sorted(DENSE_PERIODS)
        specs = [
            FleetSpec(name="plain0", seed=SEEDS[0]),
            FleetSpec(name="faulted", seed=SEEDS[1], faults=self._schedule()),
            FleetSpec(name="plain1", seed=SEEDS[2]),
        ]
        engine = FleetEngine(DENSE_PERIODS, specs, energy=True, **kwargs)
        for _ in range(400):
            engine.step_all()

        for name, seed in (("plain0", SEEDS[0]), ("plain1", SEEDS[2])):
            net = EnergyAwareNetwork(
                DENSE_PERIODS, config=NetworkConfig(seed=seed), **kwargs
            )
            net.run(400)
            assert engine.records(name) == net.records
        faulted = EnergyAwareNetwork(
            DENSE_PERIODS,
            config=NetworkConfig(seed=SEEDS[1]),
            faults=self._schedule(),
            **kwargs,
        )
        faulted.run(400)
        assert engine.records("faulted") == faulted.records

        # Energy-ledger parity for the scalar lane, bit for bit.
        scalar = engine.scalar_network("faulted")
        for t in names:
            assert (
                scalar.devices[t].capacitor_v == faulted.devices[t].capacitor_v
            )
            for field in ("activations", "brownouts", "slots_dark", "slots_lit"):
                assert getattr(scalar.energy_log[t], field) == getattr(
                    faulted.energy_log[t], field
                )

        # Plain specs stayed on the vector lane with DeviceArrays physics.
        with pytest.raises(KeyError):
            engine.scalar_network("plain0")
        plain0 = EnergyAwareNetwork(
            DENSE_PERIODS, config=NetworkConfig(seed=SEEDS[0]), **kwargs
        )
        plain0.run(400)
        voltages = np.asarray([plain0.devices[t].capacitor_v for t in names])
        assert (engine.devices.capacitor_v[0] == voltages).all()

        # And the injected energy faults changed the story.
        assert engine.records("faulted") != sequential_energy_records(
            DENSE_PERIODS, SEEDS[1], 400, **kwargs
        )

    def test_injected_brownout_counts_dark_slots(self):
        """The injected-brownout window shows up in the energy ledger:
        the targeted tag rides harvest-only physics while dark."""
        engine = FleetEngine(
            DENSE_PERIODS,
            [FleetSpec(name="faulted", seed=SEEDS[0], faults=self._schedule())],
            energy=True,
        )
        for _ in range(400):
            engine.step_all()
        scalar = engine.scalar_network("faulted")
        plain = EnergyAwareNetwork(
            DENSE_PERIODS, config=NetworkConfig(seed=SEEDS[0])
        )
        plain.run(400)
        assert (
            scalar.energy_log["tag2"].slots_dark
            > plain.energy_log["tag2"].slots_dark
        )

    def test_empty_schedule_is_zero_cost_off(self):
        """An empty FaultSchedule leaves the energy tier's log
        byte-identical to the unfaulted network — the controller seam
        adds no observable behaviour of its own."""
        from repro.faults.schedule import FaultSchedule

        for seed in SEEDS:
            faulted = EnergyAwareNetwork(
                DENSE_PERIODS,
                config=NetworkConfig(seed=seed),
                faults=FaultSchedule([]),
            )
            faulted.run(300)
            assert faulted.records == sequential_energy_records(
                DENSE_PERIODS, seed, 300
            )


def sequential_energy_records(periods, seed, n_slots, **kwargs):
    net = EnergyAwareNetwork(
        periods, config=NetworkConfig(seed=seed), **kwargs
    )
    net.run(n_slots)
    return net.records


class TestEnergyTier:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"sensor_samples_per_slot": 40.0},
            {"initial_capacitor_v": 2.4},
        ],
        ids=["default", "sensing", "precharged"],
    )
    def test_energy_mode_matches_sequential(self, kwargs):
        names = sorted(DENSE_PERIODS)
        engine = FleetEngine(
            DENSE_PERIODS, specs_for_seeds(SEEDS), energy=True, **kwargs
        )
        for _ in range(400):
            engine.step_all()
        for i, (seed, spec) in enumerate(zip(SEEDS, engine.specs)):
            net = EnergyAwareNetwork(
                DENSE_PERIODS, config=NetworkConfig(seed=seed), **kwargs
            )
            net.run(400)
            assert engine.records(spec.name) == net.records
            # Bit-identical physics, not just matching outcomes.
            voltages = np.asarray(
                [net.devices[t].capacitor_v for t in names]
            )
            assert (engine.devices.capacitor_v[i] == voltages).all()
            for j, t in enumerate(names):
                log = net.energy_log[t]
                assert engine.devices.activations[i, j] == log.activations
                assert engine.devices.brownouts[i, j] == log.brownouts
                assert engine.devices.slots_dark[i, j] == log.slots_dark
                assert engine.devices.slots_lit[i, j] == log.slots_lit
