"""FleetRunner: sharded sweeps must be byte-identical however executed."""

import json
import os

import pytest

from repro.experiments.runner import (
    FleetRunner,
    ResultsError,
    _run_fleet_shard,
)

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8}
SEEDS = list(range(13))
SLOTS = 150


def doc_bytes(document):
    return json.dumps(document, sort_keys=True)


@pytest.fixture(scope="module")
def reference_doc():
    return FleetRunner(PERIODS, SEEDS, SLOTS, shard_size=4).run()


class TestShardingInvariance:
    def test_shard_size_does_not_change_bytes(self, reference_doc):
        for shard_size in (1, 5, 64):
            doc = FleetRunner(PERIODS, SEEDS, SLOTS, shard_size=shard_size).run()
            assert doc_bytes(doc) == doc_bytes(reference_doc)

    def test_pool_matches_serial(self, reference_doc):
        doc = FleetRunner(PERIODS, SEEDS, SLOTS, shard_size=3).run(jobs=3)
        assert doc_bytes(doc) == doc_bytes(reference_doc)

    def test_shm_seam_matches_pickled_returns(self, reference_doc):
        doc = FleetRunner(PERIODS, SEEDS, SLOTS, shard_size=4).run(
            jobs=2, use_shm=True
        )
        assert doc_bytes(doc) == doc_bytes(reference_doc)

    def test_rows_match_direct_engine_summaries(self, reference_doc):
        from repro.fleet import FleetEngine, specs_for_seeds

        engine = FleetEngine(PERIODS, specs_for_seeds(SEEDS))
        for _ in range(SLOTS):
            engine.step_all()
        for row, summary in zip(
            reference_doc["networks"], engine.summaries()
        ):
            for key in ("decodes", "acks", "collisions", "idle_slots"):
                assert row[key] == summary[key]
            assert row["settled_fraction"] == summary["settled_fraction"]

    def test_telemetry_signature_stable_across_grouping(self):
        serial = FleetRunner(PERIODS, SEEDS[:8], 100, shard_size=3).run(
            telemetry=True
        )
        pooled = FleetRunner(PERIODS, SEEDS[:8], 100, shard_size=5).run(
            jobs=2, telemetry=True, use_shm=True
        )
        assert (
            serial["telemetry"]["signature"] == pooled["telemetry"]["signature"]
        )


class TestCheckpointing:
    def test_resume_completes_partial_run(self, tmp_path, reference_doc):
        ckpt = str(tmp_path / "fleet.ckpt")
        runner = FleetRunner(PERIODS, SEEDS, SLOTS, shard_size=4)
        shard = runner.shards()[0]
        index, rows, _, _ = _run_fleet_shard(
            shard[0],
            sorted(PERIODS.items()),
            shard[2],
            shard[3],
            SLOTS,
            None,
            False,
            False,
            None,
            shard[1],
            runner.n_networks,
        )
        runner._write_fleet_checkpoint(ckpt, {str(index): rows}, {})
        resumed = runner.run(checkpoint=ckpt, resume=True)
        assert doc_bytes(resumed) == doc_bytes(reference_doc)
        assert not os.path.exists(ckpt)  # deleted on completion

    def test_checkpoint_written_during_run(self, tmp_path):
        ckpt = str(tmp_path / "fleet.ckpt")
        runner = FleetRunner(PERIODS, SEEDS[:6], 50, shard_size=2)
        runner.run(checkpoint=ckpt)
        assert not os.path.exists(ckpt)

    def test_mismatched_checkpoint_refused(self, tmp_path):
        ckpt = str(tmp_path / "fleet.ckpt")
        FleetRunner(PERIODS, SEEDS, SLOTS + 1, shard_size=4)._write_fleet_checkpoint(
            ckpt, {}, {}
        )
        with pytest.raises(ResultsError, match="refusing to mix"):
            FleetRunner(PERIODS, SEEDS, SLOTS, shard_size=4).run(
                checkpoint=ckpt, resume=True
            )

    def test_resume_without_checkpoint_path_rejected(self):
        with pytest.raises(ResultsError, match="resume"):
            FleetRunner(PERIODS, SEEDS, SLOTS).run(resume=True)


class TestValidation:
    def test_rejects_empty_sweep(self):
        with pytest.raises(ResultsError):
            FleetRunner(PERIODS, [], SLOTS)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ResultsError):
            FleetRunner(PERIODS, SEEDS, SLOTS, shard_size=0)

    def test_document_shape(self, reference_doc):
        assert reference_doc["schema"] == "fleet-sweep/1"
        assert reference_doc["n_networks"] == len(SEEDS)
        assert len(reference_doc["networks"]) == len(SEEDS)
        assert [n["seed"] for n in reference_doc["networks"]] == SEEDS
        agg = reference_doc["aggregate"]
        assert agg["tag_slots"] == len(SEEDS) * SLOTS * len(PERIODS)
        assert agg["decodes"] == sum(
            n["decodes"] for n in reference_doc["networks"]
        )
