"""Robustness and edge-case scenarios across the stack.

Adversarial-but-legal configurations: capacity saturation, the 16-tag
TID limit, RESET storms, extreme beacon loss, degenerate periods —
things a deployment could plausibly hit that the example-based tests do
not cover.
"""

import numpy as np
import pytest

from repro.channel.medium import AcousticMedium
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.state_machine import TagState
from repro.experiments.configs import pattern
from repro.phy.packets import MAX_TID, UplinkPacket


class TestCapacityEdges:
    def test_period_one_tag_owns_the_channel(self):
        # p=1 is permissible (P = {2^k}, k=0): the tag transmits every
        # slot and nothing else can fit.
        net = SlottedNetwork(
            {"tag8": 1}, config=NetworkConfig(seed=0, ideal_channel=True)
        )
        t = net.run_until_converged(streak=8)
        assert t is not None
        records = net.run(20)
        assert all(r.decoded == "tag8" for r in records)

    def test_two_period_one_tags_never_converge(self):
        # Utilisation 2.0: they collide in every slot, forever.
        net = SlottedNetwork(
            {"tag5": 1, "tag8": 1},
            config=NetworkConfig(seed=0, ideal_channel=True),
        )
        result = net.run_until_converged(streak=8, max_slots=500)
        assert result is None

    def test_twelve_tags_at_full_capacity_eventually_converge(self):
        net = SlottedNetwork(
            pattern("c5").tag_periods(),
            config=NetworkConfig(seed=4, ideal_channel=True),
        )
        assert net.run_until_converged(max_slots=150_000) is not None

    def test_oversubscription_keeps_running_without_converging(self):
        # Demand 1.5x capacity: the protocol must stay live (no crash,
        # no livelock exception), merely never settle everyone.
        periods = {f"tag{i}": 4 for i in range(1, 7)}  # U = 1.5
        net = SlottedNetwork(
            periods, config=NetworkConfig(seed=1, ideal_channel=True)
        )
        net.run(2000)
        assert net.settled_fraction() < 1.0
        assert len(net.records) == 2000


class TestResetStorms:
    def test_repeated_resets_always_reconverge(self):
        net = SlottedNetwork(
            pattern("c9").tag_periods(),
            config=NetworkConfig(seed=2, ideal_channel=True),
        )
        for round_ in range(4):
            assert net.run_until_converged(max_slots=50_000) is not None
            net.reset()
            net.step()
            assert all(
                t.state is TagState.MIGRATE for t in net.tags.values()
            ), f"round {round_}: tags kept state through RESET"

    def test_reset_mid_convergence_is_harmless(self):
        net = SlottedNetwork(
            pattern("c2").tag_periods(),
            config=NetworkConfig(seed=3, ideal_channel=True),
        )
        net.run(10)
        net.reset()
        assert net.run_until_converged(max_slots=50_000) is not None


class TestExtremeChannel:
    def test_fifty_percent_beacon_loss_survival(self):
        # Half of all beacons lost: the network cannot hold a settled
        # state, but it must keep operating and occasionally deliver.
        net = SlottedNetwork(
            {"tag5": 4, "tag8": 4},
            config=NetworkConfig(seed=5, beacon_loss_probability=0.5),
        )
        records = net.run(2000)
        delivered = sum(1 for r in records if r.decoded is not None)
        assert delivered > 50
        assert len(records) == 2000

    def test_total_beacon_loss_means_total_silence(self):
        net = SlottedNetwork(
            {"tag5": 4, "tag8": 4},
            config=NetworkConfig(seed=5, beacon_loss_probability=1.0),
        )
        records = net.run(100)
        # Reader-talks-first: no beacons received, no transmissions ever.
        assert all(r.n_transmitters == 0 for r in records)

    def test_single_tag_with_loss_recovers_repeatedly(self):
        net = SlottedNetwork(
            {"tag8": 4},
            config=NetworkConfig(seed=6, beacon_loss_probability=0.1),
        )
        records = net.run(2000)
        tail = records[-200:]
        decoded = sum(1 for r in tail if r.decoded is not None)
        # One tag, period 4: ideal 50 decodes per 200 slots; with 10%
        # beacon loss and re-migrations, still a solid majority arrive.
        assert decoded > 25


class TestTidLimits:
    def test_sixteen_tags_supported_by_tid_field(self):
        assert MAX_TID == 15  # 4-bit TID: up to 16 tags (Sec. 4.2)
        for tid in range(16):
            UplinkPacket(tid, 0)

    def test_network_assigns_distinct_tids(self, medium):
        net = SlottedNetwork(
            pattern("c3").tag_periods(),
            medium=medium,
            config=NetworkConfig(seed=0, ideal_channel=True),
        )
        tids = [t.tid for t in net.tags.values()]
        assert len(set(tids)) == len(tids)
        assert max(tids) <= MAX_TID


class TestDeterminism:
    def test_experiments_reproduce_exactly_per_seed(self, medium):
        from repro.experiments.fig16_longrun import run_fig16

        a = run_fig16(n_slots=1500, seed=7, medium=medium)
        b = run_fig16(n_slots=1500, seed=7, medium=medium)
        assert a.mean_non_empty == b.mean_non_empty
        assert a.mean_collision == b.mean_collision

    def test_aloha_reproduces_exactly_per_seed(self, medium):
        from repro.experiments.fig19_aloha import run_fig19

        a = run_fig19(duration_s=1000.0, seed=9, medium=medium)
        b = run_fig19(duration_s=1000.0, seed=9, medium=medium)
        assert a.total_tx == b.total_tx
        assert a.total_collided == b.total_collided

    def test_different_seeds_differ(self, medium):
        from repro.experiments.fig16_longrun import run_fig16

        a = run_fig16(n_slots=1500, seed=1, medium=medium)
        b = run_fig16(n_slots=1500, seed=2, medium=medium)
        assert (a.mean_non_empty, a.mean_collision) != (
            b.mean_non_empty,
            b.mean_collision,
        )
