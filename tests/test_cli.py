"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_is_a_choice(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(["fig15", "--trials", "3", "--seed", "9"])
        assert args.trials == 3
        assert args.seed == 9

    def test_profile_flag(self):
        args = build_parser().parse_args(["results", "--profile"])
        assert args.profile is True
        assert build_parser().parse_args(["results"]).profile is False


class TestExecution:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "table2" in out

    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "slot" in out

    def test_table2_output(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "24.8" in out and "51.0" in out

    def test_fig11_output(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "tag11" in out

    def test_appc_output(self, capsys):
        assert main(["appc"]) == 0
        out = capsys.readouterr().out
        assert "absorbing=True" in out

    def test_fig16_respects_seed(self, capsys):
        assert main(["fig16", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "non-empty ratio" in out

    def test_fleet_writes_document(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "fleet.json"
        assert (
            main(
                [
                    "fleet",
                    "--fleet-size",
                    "6",
                    "--slots",
                    "80",
                    "--shard-size",
                    "4",
                    "--serial",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        assert "fleet sweep: 6 networks x 80 slots" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "fleet-sweep/1"
        assert document["n_networks"] == 6
        assert len(document["networks"]) == 6

    def test_fleet_stdout_and_parser_defaults(self, capsys):
        args = build_parser().parse_args(["fleet"])
        assert args.fleet_size == 256
        assert args.shard_size == 64
        assert not args.shm
        assert main(["fleet", "--fleet-size", "2", "--slots", "40", "--serial"]) == 0
        out = capsys.readouterr().out
        assert '"schema": "fleet-sweep/1"' in out
