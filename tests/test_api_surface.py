"""Guards on the public API surface.

Every exported item must exist, be importable from its subpackage, and
carry a docstring; the generated API index must be rebuildable.
"""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.sim",
    "repro.perf",
    "repro.telemetry",
    "repro.channel",
    "repro.hardware",
    "repro.phy",
    "repro.phy.kernels",
    "repro.phy.modulation",
    "repro.phy.cook",
    "repro.phy.fsk",
    "repro.phy.rate",
    "repro.core",
    "repro.faults",
    "repro.resilience",
    "repro.baselines",
    "repro.analysis",
    "repro.experiments",
    "repro.ext",
    "repro.app",
    "repro.fleet",
    "repro.multireader",
    "repro.relay",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for item in getattr(module, "__all__", []):
        assert hasattr(module, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_exported_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for item_name in getattr(module, "__all__", []):
        item = getattr(module, item_name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not inspect.getdoc(item):
                undocumented.append(item_name)
    assert undocumented == [], f"{name}: undocumented exports {undocumented}"


def test_api_index_generator_runs():
    import sys
    sys.path.insert(0, "tools")
    try:
        from gen_api_index import render

        text = render()
    finally:
        sys.path.pop(0)
    assert "## `repro.core`" in text
    assert "SlottedNetwork" in text


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
