"""Fault subsystem integration: zero-cost-when-off equivalence, layer
hooks (channel penalties, hardware transitions, reader restart), the
recovery metric, the figR experiment, and the CLI entry points."""

import pytest

from repro.analysis.recovery import recovery_report, slots_to_reconverge
from repro.cli import main
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.core.reader_protocol import SlotRecord
from repro.core.waveform_network import WaveformNetwork
from repro.faults import FaultEvent, FaultSchedule
from repro.hardware.supercap import Supercapacitor
from repro.hardware.tag_device import TagDevice

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8}


class TestZeroImpactWhenOff:
    """Attaching the fault layer with nothing scheduled must leave every
    simulation byte-identical — the non-fault path pays one branch."""

    def test_slot_network_identical_with_empty_schedule(self, medium):
        base = SlottedNetwork(PERIODS, medium=medium,
                              config=NetworkConfig(seed=5))
        base.run(300)
        hooked = SlottedNetwork(PERIODS, medium=medium,
                                config=NetworkConfig(seed=5),
                                faults=FaultSchedule([]))
        hooked.run(300)
        assert hooked.records == base.records
        assert hooked.tag_offsets() == base.tag_offsets()
        # The controller existed, observed every slot, injected nothing.
        assert hooked.faults is not None
        assert hooked.faults.trace.count("slot") == 300
        assert hooked.faults.trace.count("fault.apply") == 0
        assert base.faults is None

    def test_waveform_network_identical_with_empty_schedule(self, medium):
        config = NetworkConfig(seed=2)
        base = WaveformNetwork({"tag8": 2, "tag4": 4}, medium=medium,
                               config=config)
        base.run(8)
        hooked = WaveformNetwork({"tag8": 2, "tag4": 4}, medium=medium,
                                 config=config, faults=FaultSchedule([]))
        hooked.run(8)
        assert hooked.records == base.records
        assert [
            (log.slot, log.transmitters, log.decoded_tids, log.n_clusters)
            for log in hooked.slot_logs
        ] == [
            (log.slot, log.transmitters, log.decoded_tids, log.n_clusters)
            for log in base.slot_logs
        ]


class TestChannelPenaltyThreading:
    def test_snr_penalty_is_exactly_subtractive(self, medium):
        clean = medium.uplink_snr_db("tag8", 375.0)
        assert medium.uplink_snr_db("tag8", 375.0, penalty_db=7.5) == clean - 7.5
        assert medium.uplink_snr_db("tag8", 375.0, penalty_db=0.0) == clean

    def test_packet_success_degrades_monotonically(self, medium):
        succ = [
            medium.uplink_packet_success("tag4", 3000.0, penalty_db=p)
            for p in (0.0, 10.0, 20.0, 30.0)
        ]
        assert all(a >= b for a, b in zip(succ, succ[1:]))
        assert succ[0] > 0.9
        assert succ[-1] < 0.5

    def test_observe_slot_penalty_kills_the_decode(self, medium, rng):
        obs = medium.observe_slot(["tag8"], rng, penalty_db={"tag8": 60.0})
        assert obs.decoded_tag is None
        assert obs.transmitters == ("tag8",)

    def test_observe_slot_none_and_empty_penalties_agree(self, medium):
        import numpy as np

        a = medium.observe_slot(["tag8"], np.random.default_rng(7))
        b = medium.observe_slot(["tag8"], np.random.default_rng(7),
                                penalty_db={})
        assert a == b

    def test_invalidate_channel_cache_tracks_biw_mutation(self):
        from repro.channel.medium import AcousticMedium

        medium = AcousticMedium()
        before = medium.backscatter_amplitude_v("tag4")
        medium.biw.set_joint_loss_offset_db(3.0)
        medium.invalidate_channel_cache()
        after = medium.backscatter_amplitude_v("tag4")
        assert after != before
        medium.biw.set_joint_loss_offset_db(0.0)
        medium.invalidate_channel_cache()
        assert medium.backscatter_amplitude_v("tag4") == before


class TestHardwareFaultSurface:
    def test_discharge_time_mirrors_charge_time(self):
        cap = Supercapacitor()
        assert cap.discharge_time_s(2.3, 1.95, 1e-3) == pytest.approx(
            cap.charge_time_s(1.95, 2.3, 1e-3)
        )
        with pytest.raises(ValueError):
            cap.discharge_time_s(1.0, 2.0, 1e-3)
        with pytest.raises(ValueError):
            cap.discharge_time_s(2.0, 1.0, 0.0)

    def test_derated_harvester_scales_net_power(self, harvester):
        vp = 2.0
        full = harvester.net_charging_power_w(vp)
        assert full > 0
        assert harvester.derated(1.0).net_charging_power_w(vp) == full
        half = harvester.derated(0.5).net_charging_power_w(vp)
        assert 0 < half < full
        assert harvester.derated(0.0).net_charging_power_w(vp) == 0.0
        with pytest.raises(ValueError):
            harvester.derated(1.5)

    def test_tag_device_brownout_and_power_cycle(self):
        device = TagDevice(pzt_voltage_v=2.0, initial_capacitor_v=2.4)
        assert device.powered
        device.brownout()
        assert not device.powered
        assert device.capacitor_v == 0.0
        device.power_cycle()
        assert device.powered
        assert device.capacitor_v == device.thresholds.high_v

    def test_tag_device_derate_harvester(self):
        device = TagDevice(pzt_voltage_v=2.0)
        nominal = device.harvester
        full = device.harvester.net_charging_power_w(2.0)
        device.derate_harvester(0.25)
        assert device.harvester.net_charging_power_w(2.0) < full
        device.harvester = nominal  # exact restoration path
        assert device.harvester.net_charging_power_w(2.0) == full


class TestRecoveryMetric:
    @staticmethod
    def records_from(collision_slots, n):
        return [
            SlotRecord(slot=s, n_transmitters=1, decoded="tag1",
                       collision_detected=s in collision_slots, acked=True,
                       empty_flag=False)
            for s in range(n)
        ]

    def test_undisturbed_run_reports_zero(self):
        records = self.records_from(set(), 100)
        assert slots_to_reconverge(records, clear_slot=20, streak=16) == 0

    def test_disturbed_run_counts_to_stability(self):
        records = self.records_from({22, 25, 31}, 100)
        assert slots_to_reconverge(records, clear_slot=20, streak=16) == 12

    def test_quiet_fault_window_gets_no_credit(self):
        # Collisions only AFTER the clear: pre-clear quiet must not count.
        records = self.records_from({40}, 100)
        assert slots_to_reconverge(records, clear_slot=30, streak=16) == 11

    def test_none_when_records_end_early(self):
        records = self.records_from({50}, 60)
        assert slots_to_reconverge(records, clear_slot=40, streak=32) is None
        with pytest.raises(ValueError):
            slots_to_reconverge(records, clear_slot=0, streak=0)

    def test_report_aggregates(self):
        records = self.records_from({5, 25}, 80)
        report = recovery_report(records, clear_slot=20, streak=16)
        assert report.collisions_during_faults == 1
        assert report.collisions_after_clear == 1
        assert report.slots_to_reconverge == 6
        assert report.decoded_fraction_after_clear == 1.0
        assert report.to_jsonable()["clear_slot"] == 20


class TestFigRecovery:
    def test_smoke_run_recovers_and_replays(self):
        from repro.experiments.figR_recovery import format_figR, run_figR

        trials = run_figR(seed=1, bursts=(2, 8), warmup_slots=400,
                          measure_slots=2000)
        assert [t.burst_slots for t in trials] == [2, 8]
        for t in trials:
            assert t.slots_to_reconverge is not None
            assert t.replay_identical
        text = format_figR(trials)
        assert "burst" in text and "ok" in text


class TestCli:
    def test_faults_command_runs(self, capsys):
        assert main(["faults", "--slots", "600", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault schedule" in out
        assert "trace signature" in out

    def test_figR_command_runs(self, capsys):
        assert main(["figR"]) == 0
        out = capsys.readouterr().out
        assert "reconverge" in out

    def test_all_excludes_the_faults_demo(self):
        from repro.cli import EXPERIMENTS

        assert "faults" in EXPERIMENTS
        assert "figR" in EXPERIMENTS


class TestFaultedWaveform:
    def test_noise_burst_reaches_the_dsp(self, medium):
        """A large SNR penalty must make the real receive chain fail on
        slots it decoded cleanly without the fault."""
        config = NetworkConfig(seed=2)
        schedule = FaultSchedule(
            [FaultEvent(slot=2, duration=3, kind="attenuation",
                        target="tag8", magnitude=60.0)]
        )
        clean = WaveformNetwork({"tag8": 2}, medium=medium, config=config)
        clean.run(5)
        faulted = WaveformNetwork({"tag8": 2}, medium=medium, config=config,
                                  faults=schedule)
        faulted.run(5)
        decoded_clean = sum(1 for r in clean.records if r.decoded == "tag8")
        decoded_faulted = sum(1 for r in faulted.records if r.decoded == "tag8")
        assert decoded_clean > decoded_faulted
