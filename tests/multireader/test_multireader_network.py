"""MultiReaderNetwork behaviour: the single-reader zero-cost-off
contract (byte-identical slot logs across seeds, topologies, and fault
schedules), frequency-space division beating the shared carrier,
overlap-zone handoff, and reader-tier fault injection."""

import pytest

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.multireader import (
    CarrierPlan,
    MultiReaderFaultEvent,
    MultiReaderFaultSchedule,
    MultiReaderNetwork,
    deployment_for,
)

SEEDS = [1, 7, 23]

DENSE_PERIODS = {
    "tag1": 4,
    "tag2": 4,
    "tag3": 8,
    "tag4": 8,
    "tag5": 16,
    "tag6": 16,
}
SPARSE_PERIODS = {"tag1": 16, "tag2": 32, "tag3": 32}

#: The over-subscribed figT population: three readers' worth of load.
SATURATED_PERIODS = {f"tag{i}": 4 for i in range(1, 13)}


def fault_schedule():
    return FaultSchedule(
        [
            FaultEvent(
                slot=40, duration=20, kind="beacon_loss", target="tag1",
                magnitude=0.5,
            ),
            FaultEvent(slot=80, duration=10, kind="noise_burst", magnitude=12.0),
            FaultEvent(slot=120, duration=5, kind="brownout", target="tag3"),
            FaultEvent(slot=160, duration=1, kind="reader_restart"),
        ]
    )


class TestSingleReaderZeroCostOff:
    """With one reader the wrapper must be invisible: every slot record
    byte-identical to a plain SlottedNetwork under the same seed."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "periods",
        [DENSE_PERIODS, SPARSE_PERIODS],
        ids=["dense", "sparse"],
    )
    def test_matches_sequential(self, seed, periods):
        multi = MultiReaderNetwork(
            periods,
            deployment=deployment_for(1),
            config=NetworkConfig(seed=seed),
        )
        multi.run(400)
        plain = SlottedNetwork(periods, config=NetworkConfig(seed=seed))
        plain.run(400)
        assert multi.records_for("reader") == plain.records

    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulted_matches_sequential(self, seed):
        multi = MultiReaderNetwork(
            DENSE_PERIODS,
            deployment=deployment_for(1),
            config=NetworkConfig(seed=seed),
            faults=fault_schedule(),
        )
        multi.run(400)
        plain = SlottedNetwork(
            DENSE_PERIODS,
            config=NetworkConfig(seed=seed),
            faults=fault_schedule(),
        )
        plain.run(400)
        assert multi.records_for("reader") == plain.records

    def test_single_reader_has_no_handoff_machinery(self):
        multi = MultiReaderNetwork(
            DENSE_PERIODS,
            deployment=deployment_for(1),
            config=NetworkConfig(seed=1),
        )
        assert multi.overlap_tags == ()
        multi.run(100)
        assert multi.handoffs == 0
        assert multi.slots_elapsed == 100


class TestFrequencySpaceDivision:
    def test_planner_beats_shared_carrier_at_two_readers(self):
        def goodput(plan):
            net = MultiReaderNetwork(
                SATURATED_PERIODS,
                deployment=deployment_for(2, spacing="near"),
                config=NetworkConfig(seed=3),
                plan=plan,
            )
            net.run(600)
            return net.aggregate_goodput(last_n_slots=400)

        dep = deployment_for(2, spacing="near")
        planned = goodput(None)
        shared = goodput(CarrierPlan.shared(dep))
        assert planned > shared

    def test_shared_carrier_collapses_worst_sir(self):
        dep = deployment_for(2, spacing="near")
        shared = MultiReaderNetwork(
            SATURATED_PERIODS,
            deployment=dep,
            config=NetworkConfig(seed=3),
            plan=CarrierPlan.shared(dep),
        )
        planned = MultiReaderNetwork(
            SATURATED_PERIODS,
            deployment=deployment_for(2, spacing="near"),
            config=NetworkConfig(seed=3),
        )
        assert shared.worst_sir_db() < 0 < planned.worst_sir_db()

    def test_sir_report_covers_every_homed_tag(self):
        net = MultiReaderNetwork(
            DENSE_PERIODS,
            deployment=deployment_for(2),
            config=NetworkConfig(seed=1),
        )
        report = net.sir_report()
        reported = sorted(t for per_tag in report.values() for t in per_tag)
        assert reported == sorted(DENSE_PERIODS)


class TestHandoff:
    def overlap_network(self, **kwargs):
        periods = dict(DENSE_PERIODS, tag9=8, tag10=8)
        return MultiReaderNetwork(
            periods,
            deployment=deployment_for(2),
            config=NetworkConfig(seed=3),
            **kwargs,
        )

    def test_overlap_tag_is_provisioned_on_both_readers(self):
        net = self.overlap_network()
        assert net.overlap_tags, "expected an overlap-zone tag"
        tag = net.overlap_tags[0]
        for reader in net.coverage[tag]:
            assert tag in net.cells[reader].tags
        home = net.home[tag]
        for reader in net.coverage[tag]:
            parked = net.cells[reader].parked_tags
            assert (tag in parked) == (reader != home)

    def test_force_handoff_re_homes_and_cold_boots(self):
        net = self.overlap_network()
        tag = net.overlap_tags[0]
        old = net.home[tag]
        target = next(r for r in net.coverage[tag] if r != old)
        net.run(50)
        net.force_handoff(tag, target)
        assert net.home[tag] == target
        assert tag in net.cells[old].parked_tags
        assert tag not in net.cells[target].parked_tags
        assert net.handoffs == 1
        assert net.handoff_log[-1][1:] == (tag, old, target)
        mac = net.cells[target].tags[tag]
        assert mac.late_arrival is True
        assert mac.ever_settled is False
        # The old reader's scheduler forgot the lease.
        assert tag not in net.cells[old].reader.committed_assignments

    def test_force_handoff_to_current_home_is_a_noop(self):
        net = self.overlap_network()
        tag = net.overlap_tags[0]
        net.force_handoff(tag, net.home[tag])
        assert net.handoffs == 0

    def test_force_handoff_rejects_uncovered_tag(self):
        net = self.overlap_network()
        uncovered = next(
            t for t in sorted(net.home) if len(net.coverage[t]) == 1
        )
        other = next(r for r in net.cells if r != net.home[uncovered])
        with pytest.raises(KeyError):
            net.force_handoff(uncovered, other)

    def test_interference_pressure_triggers_organic_handoffs(self):
        # "near" spacing under load: home links of overlap tags degrade
        # and the monitor-driven path re-homes them (deterministic for
        # a fixed seed).
        net = MultiReaderNetwork(
            SATURATED_PERIODS,
            deployment=deployment_for(2, spacing="near"),
            config=NetworkConfig(seed=3),
        )
        net.run(600)
        assert net.handoffs > 0
        for slot, tag, src, dst in net.handoff_log:
            assert tag in net.overlap_tags
            assert src != dst


class TestReaderFaults:
    def two_reader_network(self, schedule):
        return MultiReaderNetwork(
            dict(DENSE_PERIODS, tag9=8),
            deployment=deployment_for(2),
            config=NetworkConfig(seed=3),
            reader_faults=schedule,
        )

    def test_planner_stale_forces_cochannel_then_reverts(self):
        schedule = MultiReaderFaultSchedule(
            [
                MultiReaderFaultEvent(
                    slot=10, duration=20, kind="planner_stale", reader="reader2"
                )
            ]
        )
        net = self.two_reader_network(schedule)
        planned = net.planned_frequency_hz("reader2")
        assert planned != net.primary_frequency_hz
        net.run(15)
        assert net.actual_frequency_hz("reader2") == net.primary_frequency_hz
        net.run(25)
        assert net.actual_frequency_hz("reader2") == planned

    def test_carrier_drift_shifts_and_degrades_sir(self):
        schedule = MultiReaderFaultSchedule(
            [
                MultiReaderFaultEvent(
                    slot=5,
                    duration=30,
                    kind="carrier_drift",
                    reader="reader2",
                    magnitude=4_000.0,
                )
            ]
        )
        net = self.two_reader_network(schedule)
        healthy = net.worst_sir_db()
        planned = net.planned_frequency_hz("reader2")
        net.run(10)
        # 84.5 kHz drifts up to 88.5 kHz: toward the primary carrier.
        assert net.actual_frequency_hz("reader2") == planned + 4_000.0
        # Drift toward the primary carrier eats spacing margin.
        assert net.worst_sir_db() < healthy
        net.run(30)
        assert net.actual_frequency_hz("reader2") == planned
        assert net.worst_sir_db() == pytest.approx(healthy)

    def test_fault_schedule_validates_readers(self):
        schedule = MultiReaderFaultSchedule(
            [
                MultiReaderFaultEvent(
                    slot=0, duration=5, kind="planner_stale", reader="ghost"
                )
            ]
        )
        with pytest.raises(KeyError):
            self.two_reader_network(schedule)


class TestParking:
    def test_parked_tag_never_transmits(self):
        net = SlottedNetwork(DENSE_PERIODS, config=NetworkConfig(seed=1))
        net.park_tag("tag1")
        net.run(200)
        assert "tag1" not in {r.decoded for r in net.records}
        assert net.tags["tag1"].transmitted_last_slot is False

    def test_unpark_resumes_participation(self):
        net = SlottedNetwork(DENSE_PERIODS, config=NetworkConfig(seed=1))
        net.park_tag("tag1")
        net.run(100)
        net.unpark_tag("tag1")
        net.run(300)
        assert "tag1" in {r.decoded for r in net.records}

    def test_parking_unknown_tag_raises(self):
        net = SlottedNetwork(DENSE_PERIODS, config=NetworkConfig(seed=1))
        with pytest.raises(KeyError):
            net.park_tag("ghost")
        with pytest.raises(KeyError):
            net.unpark_tag("ghost")
