"""The repro.ext.fdma / repro.ext.multireader shims: same objects as
the real homes, one DeprecationWarning per process, and `import
repro.ext` itself stays warning-free."""

import importlib
import sys
import warnings

import pytest


def reimport(module_name: str):
    """Force the shim's module-level warning to fire again."""
    module = importlib.import_module(module_name)
    module._DEPRECATION_EMITTED = False
    sys.modules.pop(module_name, None)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fresh = importlib.import_module(module_name)
    finally:
        sys.modules[module_name] = fresh
    return fresh, caught


class TestShimWarnings:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.ext.fdma", "repro.ext.multireader"],
    )
    def test_import_warns_deprecation(self, module_name):
        _, caught = reimport(module_name)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.multireader" in str(deprecations[0].message)

    @pytest.mark.parametrize(
        "module_name",
        ["repro.ext.fdma", "repro.ext.multireader"],
    )
    def test_warning_fires_once_per_process(self, module_name):
        module, _ = reimport(module_name)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module._warn_once()
        assert not caught


class TestShimReExports:
    def test_fdma_shim_exports_the_real_objects(self):
        import repro.ext.fdma as shim
        import repro.multireader.fdma as real

        assert shim.FdmaChannelPlan is real.FdmaChannelPlan
        assert shim.FdmaNetwork is real.FdmaNetwork
        assert shim.assign_channels is real.assign_channels

    def test_multireader_shim_exports_the_real_objects(self):
        import repro.ext.multireader as shim
        import repro.multireader.deployment as real

        assert shim.MultiReaderDeployment is real.MultiReaderDeployment
        assert shim.ReaderPlacement is real.ReaderPlacement
        assert shim.DEFAULT_SECOND_READER is real.DEFAULT_SECOND_READER

    def test_repro_ext_package_import_is_warning_free(self):
        # The package pulls from the real homes, not the shims.
        sys.modules.pop("repro.ext", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.ext")
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
