"""Unit coverage for the cross-reader interference model: the
co-channel rejection curve, the medium's foreign-carrier terms, and
their zero-cost-off contract (unchanged setters bump nothing)."""

import math

import pytest

from repro.channel import acoustics
from repro.channel.acoustics import (
    CO_CHANNEL_CARRIER_REJECTION_DB,
    carrier_rejection_db,
)
from repro.channel.medium import AcousticMedium, ForeignCarrier

BIT_RATE = 375.0


def fresh_medium(**kwargs) -> AcousticMedium:
    return AcousticMedium(**kwargs)


class TestCarrierRejection:
    def test_cochannel_sits_on_the_floor(self):
        assert carrier_rejection_db(0.0, BIT_RATE) == (
            CO_CHANNEL_CARRIER_REJECTION_DB
        )

    def test_within_one_bit_rate_still_floor(self):
        assert carrier_rejection_db(BIT_RATE, BIT_RATE) == (
            CO_CHANNEL_CARRIER_REJECTION_DB
        )

    def test_rolloff_is_20db_per_decade(self):
        one_decade = carrier_rejection_db(10 * BIT_RATE, BIT_RATE)
        two_decades = carrier_rejection_db(100 * BIT_RATE, BIT_RATE)
        assert one_decade == pytest.approx(
            CO_CHANNEL_CARRIER_REJECTION_DB + 20.0
        )
        assert two_decades == pytest.approx(
            CO_CHANNEL_CARRIER_REJECTION_DB + 40.0
        )

    def test_planned_mode_spacing_clears_50db(self):
        # The closest palette pair (90 kHz vs 84.5 kHz) at the paper's
        # 375 bps: spacing buys well over the co-channel floor.
        assert carrier_rejection_db(5_500.0, BIT_RATE) > 50.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            carrier_rejection_db(-1.0, BIT_RATE)
        with pytest.raises(ValueError):
            carrier_rejection_db(100.0, 0.0)


class TestForeignCarrierValidation:
    def test_requires_positive_frequency(self):
        with pytest.raises(ValueError):
            ForeignCarrier(source="reader2", frequency_hz=0.0)

    def test_requires_positive_response(self):
        with pytest.raises(ValueError):
            ForeignCarrier(
                source="reader2", frequency_hz=90_000.0, response=0.0
            )

    def test_source_must_be_mounted(self):
        medium = fresh_medium()
        with pytest.raises(KeyError):
            medium.set_foreign_carriers(
                (ForeignCarrier(source="ghost", frequency_hz=90_000.0),)
            )

    def test_source_must_not_be_the_medium_itself(self):
        medium = fresh_medium()
        with pytest.raises(ValueError):
            medium.set_foreign_carriers(
                (ForeignCarrier(source="reader", frequency_hz=90_000.0),)
            )


class TestMediumCarrierState:
    def test_defaults_are_clean(self):
        medium = fresh_medium()
        assert medium.carrier_frequency_hz == acoustics.CARRIER_FREQUENCY_HZ
        assert medium.carrier_response == 1.0
        assert medium.foreign_carriers == ()
        assert medium.foreign_interference_power(BIT_RATE) == 0.0

    def test_unchanged_set_carrier_is_a_noop(self):
        medium = fresh_medium()
        gen = medium.channel_generation
        assert medium.set_carrier(acoustics.CARRIER_FREQUENCY_HZ, 1.0) is False
        assert medium.channel_generation == gen

    def test_changed_carrier_bumps_generation(self):
        medium = fresh_medium()
        gen = medium.channel_generation
        assert medium.set_carrier(84_500.0, 0.72) is True
        assert medium.channel_generation == gen + 1
        assert medium.carrier_frequency_hz == 84_500.0
        assert medium.carrier_response == 0.72

    def test_unchanged_foreign_carriers_is_a_noop(self):
        from repro.multireader import deployment_for

        medium = deployment_for(2).medium_for("reader")
        gen = medium.channel_generation
        assert medium.set_foreign_carriers(()) is False
        assert medium.channel_generation == gen
        foreign = (
            ForeignCarrier(source="reader2", frequency_hz=84_500.0, response=0.72),
        )
        assert medium.set_foreign_carriers(foreign) is True
        gen = medium.channel_generation
        assert medium.set_foreign_carriers(foreign) is False
        assert medium.channel_generation == gen


class TestForeignInterference:
    def biw_with_reader2(self):
        from repro.multireader import deployment_for

        return deployment_for(2)

    def test_cochannel_interference_dwarfs_spaced(self):
        dep = self.biw_with_reader2()
        medium = dep.medium_for("reader")
        medium.set_foreign_carriers(
            (ForeignCarrier(source="reader2", frequency_hz=90_000.0),)
        )
        cochannel = medium.foreign_interference_power(BIT_RATE)
        medium.set_foreign_carriers(
            (ForeignCarrier(source="reader2", frequency_hz=84_500.0),)
        )
        spaced = medium.foreign_interference_power(BIT_RATE)
        assert cochannel > 0 and spaced > 0
        # Δf = 5.5 kHz at 375 bps buys >23 dB of extra rejection.
        assert cochannel / spaced > 10 ** (23.0 / 10.0)

    def test_uplink_sir_inf_when_clean(self):
        dep = self.biw_with_reader2()
        medium = dep.medium_for("reader")
        medium.set_foreign_carriers(())
        assert math.isinf(medium.uplink_sir_db("tag8", BIT_RATE))

    def test_cochannel_sir_collapses(self):
        dep = self.biw_with_reader2()
        medium = dep.medium_for("reader")
        medium.set_foreign_carriers(
            (ForeignCarrier(source="reader2", frequency_hz=90_000.0),)
        )
        cochannel = medium.uplink_sir_db("tag8", BIT_RATE)
        medium.set_foreign_carriers(
            (ForeignCarrier(source="reader2", frequency_hz=84_500.0),)
        )
        spaced = medium.uplink_sir_db("tag8", BIT_RATE)
        # The strongest tag keeps a workable margin under spacing but
        # not against a co-channel carrier.
        assert cochannel < 10.0 < spaced

    def test_foreign_carriers_depress_uplink_snr(self):
        dep = self.biw_with_reader2()
        medium = dep.medium_for("reader")
        medium.set_foreign_carriers(())
        clean = medium.uplink_snr_db("tag8", BIT_RATE)
        medium.set_foreign_carriers(
            (ForeignCarrier(source="reader2", frequency_hz=90_000.0),)
        )
        jammed = medium.uplink_snr_db("tag8", BIT_RATE)
        assert jammed < clean

    def test_interference_power_scales_with_response(self):
        dep = self.biw_with_reader2()
        medium = dep.medium_for("reader")
        medium.set_foreign_carriers(
            (
                ForeignCarrier(
                    source="reader2", frequency_hz=90_000.0, response=1.0
                ),
            )
        )
        full = medium.foreign_interference_power(BIT_RATE)
        medium.set_foreign_carriers(
            (
                ForeignCarrier(
                    source="reader2", frequency_hz=90_000.0, response=0.5
                ),
            )
        )
        derated = medium.foreign_interference_power(BIT_RATE)
        assert derated == pytest.approx(full / 4.0)
