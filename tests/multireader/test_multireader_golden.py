"""Golden-trace regression for the multi-reader tier: the canonical
two-reader scenario under fixed seeds must replay byte-for-byte
against a checked-in JSON document.

Regenerate (after an intentional behaviour change) with::

    PYTHONPATH=src python -m pytest tests/multireader/test_golden.py --regen-golden

and review the golden diff like any other code change.
"""

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.core.network import NetworkConfig
from repro.multireader import MultiReaderNetwork, deployment_for

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "multireader.json"

#: The pinned scenario: the default two-reader geometry over a mixed
#: population that includes the overlap-zone tag (tag9) and reader2's
#: strong cargo-bay neighbours.
SCENARIO_SEEDS = (1, 7, 23)
SCENARIO_SLOTS = 300
SCENARIO_SPACING = "far"
SCENARIO_PERIODS = {
    "tag1": 4,
    "tag2": 4,
    "tag3": 8,
    "tag4": 8,
    "tag5": 16,
    "tag6": 16,
    "tag9": 8,
    "tag10": 8,
}

_RUN_CACHE = {}


def scenario_run(seed):
    """Each seed's network executes once per test session."""
    if seed not in _RUN_CACHE:
        net = MultiReaderNetwork(
            SCENARIO_PERIODS,
            deployment=deployment_for(2, spacing=SCENARIO_SPACING),
            config=NetworkConfig(seed=seed),
        )
        net.run(SCENARIO_SLOTS)
        _RUN_CACHE[seed] = net
    return _RUN_CACHE[seed]


def per_reader_log(net) -> dict:
    """Canonical JSON-able form of every cell's slot log."""
    return {
        reader: [asdict(r) for r in net.records_for(reader)]
        for reader in sorted(net.cells)
    }


def log_signature(per_reader: dict) -> str:
    blob = json.dumps(per_reader, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_doc(seed) -> dict:
    net = scenario_run(seed)
    per_reader = per_reader_log(net)
    return {
        "per_reader": per_reader,
        "signature": log_signature(per_reader),
        "handoffs": net.handoffs,
        "plan": {
            reader: net.plan.frequency_for(reader) for reader in sorted(net.cells)
        },
    }


def full_doc() -> dict:
    return {
        "scenario": "multireader",
        "n_readers": 2,
        "spacing": SCENARIO_SPACING,
        "n_slots": SCENARIO_SLOTS,
        "tag_periods": SCENARIO_PERIODS,
        "runs": {str(seed): run_doc(seed) for seed in SCENARIO_SEEDS},
    }


def load_or_regen(regen: bool) -> dict:
    if regen:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        doc = full_doc()
        GOLDEN_PATH.write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        return doc
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} missing — run pytest with --regen-golden"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
class TestGoldenMultiReader:
    def test_signature_matches_golden(self, seed, regen_golden):
        doc = load_or_regen(regen_golden)
        got = log_signature(per_reader_log(scenario_run(seed)))
        assert got == doc["runs"][str(seed)]["signature"], (
            f"seed {seed} drifted from its golden two-reader trace; if the "
            "change is intentional, regenerate with --regen-golden"
        )

    def test_full_slot_logs_match_golden(self, seed, regen_golden):
        doc = load_or_regen(regen_golden)
        assert per_reader_log(scenario_run(seed)) == (
            doc["runs"][str(seed)]["per_reader"]
        )

    def test_plan_and_handoffs_match_golden(self, seed, regen_golden):
        doc = load_or_regen(regen_golden)
        net = scenario_run(seed)
        run = doc["runs"][str(seed)]
        assert net.handoffs == run["handoffs"]
        assert {
            reader: net.plan.frequency_for(reader) for reader in sorted(net.cells)
        } == run["plan"]


class TestGoldenMachinery:
    def test_metadata_pins_the_setup(self, regen_golden):
        doc = load_or_regen(regen_golden)
        assert doc["scenario"] == "multireader"
        assert doc["n_readers"] == 2
        assert doc["spacing"] == SCENARIO_SPACING
        assert doc["n_slots"] == SCENARIO_SLOTS
        assert doc["tag_periods"] == SCENARIO_PERIODS

    def test_repeat_runs_are_byte_identical(self):
        a = MultiReaderNetwork(
            SCENARIO_PERIODS,
            deployment=deployment_for(2, spacing=SCENARIO_SPACING),
            config=NetworkConfig(seed=SCENARIO_SEEDS[0]),
        )
        a.run(SCENARIO_SLOTS)
        assert per_reader_log(a) == per_reader_log(
            scenario_run(SCENARIO_SEEDS[0])
        )

    def test_carriers_actually_split(self, regen_golden):
        # The pinned plan is the planner's, not the shared fallback.
        doc = load_or_regen(regen_golden)
        for run in doc["runs"].values():
            assert len(set(run["plan"].values())) == 2
