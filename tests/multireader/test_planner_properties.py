"""Property suite for the carrier-allocation planner.

Derandomized (CI-stable) hypothesis sweep over reader geometries drawn
from the preset vertex pool: the planner must color every
conflict-adjacent pair apart, be a pure function of the deployment
hash, and not care how the reader list was ordered.
"""

from hypothesis import given, settings, strategies as st

from repro.multireader import (
    MultiReaderDeployment,
    ReaderPlacement,
    build_conflict_graph,
    default_carriers,
    deployment_hash,
    plan_carriers,
)
from repro.multireader.deployment import READER_SPACING_PRESETS

PROP = settings(max_examples=20, deadline=None, derandomize=True)

#: Every vertex the figT presets mount readers on — the pool the
#: geometry strategy draws from.
VERTICES = tuple(
    sorted({v for vs in READER_SPACING_PRESETS.values() for v in vs})
)

#: Up to 4 extra readers: 5 total stays within the 5-carrier palette,
#: so a proper coloring always exists and the distinctness property is
#: unconditional.
extra_vertices = st.lists(
    st.sampled_from(VERTICES), unique=True, min_size=0, max_size=4
)


def placements(vertices):
    return [
        ReaderPlacement(f"reader{i + 2}", v) for i, v in enumerate(vertices)
    ]


def build(placement_list):
    return MultiReaderDeployment(extra_readers=placement_list)


class TestPlannerProperties:
    @PROP
    @given(vertices=extra_vertices)
    def test_conflict_adjacent_readers_get_distinct_carriers(self, vertices):
        deployment = build(placements(vertices))
        graph = build_conflict_graph(deployment)
        plan = plan_carriers(deployment)
        assert len(deployment.readers) <= len(default_carriers())
        for reader, neighbours in graph.items():
            for other in neighbours:
                assert plan.channel_for(reader) != plan.channel_for(other), (
                    f"{reader} and {other} conflict but share carrier "
                    f"{plan.frequency_for(reader)} Hz"
                )

    @PROP
    @given(vertices=extra_vertices)
    def test_plan_is_deterministic_in_the_deployment_hash(self, vertices):
        a = build(placements(vertices))
        b = build(placements(vertices))
        assert deployment_hash(a) == deployment_hash(b)
        plan_a, plan_b = plan_carriers(a), plan_carriers(b)
        assert plan_a.assignment == plan_b.assignment
        assert plan_a.carriers == plan_b.carriers

    @PROP
    @given(
        vertices=extra_vertices,
        data=st.data(),
    )
    def test_plan_is_stable_under_reader_list_permutation(self, vertices, data):
        original = placements(vertices)
        shuffled = data.draw(st.permutations(original))
        a, b = build(original), build(shuffled)
        # Same (name, vertex) mounts in any order: same identity...
        assert deployment_hash(a) == deployment_hash(b)
        # ...and the same plan, reader by reader.
        assert plan_carriers(a).assignment == plan_carriers(b).assignment

    @PROP
    @given(vertices=extra_vertices)
    def test_primary_mode_is_always_in_service(self, vertices):
        # The strongest plate mode never goes unused: Welsh–Powell
        # hands palette index 0 to the first reader it colors.
        plan = plan_carriers(build(placements(vertices)))
        assert 0 in set(plan.assignment.values())
