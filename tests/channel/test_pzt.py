"""Tests for the PZT transducer model."""

import numpy as np
import pytest

from repro.channel.pzt import PZTState, PZTTransducer


@pytest.fixture()
def pzt():
    return PZTTransducer()


class TestStates:
    def test_reflective_exceeds_absorptive(self, pzt):
        r = pzt.reflection_coefficient(PZTState.REFLECTIVE)
        a = pzt.reflection_coefficient(PZTState.ABSORPTIVE)
        assert r > a

    def test_modulation_depth(self, pzt):
        assert pzt.modulation_depth == pytest.approx(
            pzt.reflective_coefficient - pzt.absorptive_coefficient
        )

    def test_invalid_coefficient_ordering_raises(self):
        with pytest.raises(ValueError):
            PZTTransducer(reflective_coefficient=0.2, absorptive_coefficient=0.5)

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            PZTTransducer(q_factor=0.0)


class TestResonance:
    def test_unity_response_at_resonance(self, pzt):
        assert pzt.frequency_response(pzt.resonant_frequency_hz) == pytest.approx(1.0)

    def test_response_attenuates_off_resonance(self, pzt):
        assert pzt.frequency_response(78_000.0) < 0.5
        assert pzt.frequency_response(110_000.0) < 0.5

    def test_response_symmetric_falloff(self, pzt):
        below = pzt.frequency_response(80_000.0)
        above = pzt.frequency_response(100_000.0)
        assert below < 1.0 and above < 1.0

    def test_nonpositive_frequency_raises(self, pzt):
        with pytest.raises(ValueError):
            pzt.frequency_response(0.0)


class TestRingEffect:
    def test_ring_time_constant_formula(self, pzt):
        expected = pzt.q_factor / (np.pi * pzt.resonant_frequency_hz)
        assert pzt.ring_time_constant_s == pytest.approx(expected)

    def test_ring_tail_decays_exponentially(self, pzt):
        tail = pzt.ring_tail(1.0, duration_s=5 * pzt.ring_time_constant_s)
        # Envelope at the end should be under e^-4 ~ 2% of the start.
        end_peak = np.max(np.abs(tail[-50:]))
        assert end_peak < 0.05

    def test_ring_tail_starts_at_amplitude(self, pzt):
        tail = pzt.ring_tail(0.7, duration_s=1e-4)
        assert abs(tail[0]) == pytest.approx(0.7, rel=1e-6)

    def test_ring_tail_duration_controls_length(self, pzt):
        tail = pzt.ring_tail(1.0, duration_s=1e-3, sample_rate_hz=500_000.0)
        assert len(tail) == 500

    def test_negative_duration_raises(self, pzt):
        with pytest.raises(ValueError):
            pzt.ring_tail(1.0, duration_s=-1.0)

    def test_fsk_off_level_is_small(self, pzt):
        # The FSK-in-OOK-out OFF level rides the attenuated resonance
        # response, so it stays well below the ON level.
        assert pzt.effective_off_amplitude(78_000.0) < 0.3
