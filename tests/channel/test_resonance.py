"""Tests for the resonance-calibration sweep."""

import numpy as np
import pytest

from repro.channel.resonance import (
    DEFAULT_MODES,
    PlateMode,
    ResonanceCalibrator,
)


class TestPlateMode:
    def test_peak_at_mode_frequency(self):
        mode = PlateMode(90_000.0, 1.0)
        freqs = np.linspace(80_000, 100_000, 2001)
        response = mode.response(freqs)
        peak = freqs[np.argmax(response)]
        assert peak == pytest.approx(90_000.0, abs=50)

    def test_amplitude_scales_response(self):
        weak = PlateMode(90_000.0, 0.5)
        strong = PlateMode(90_000.0, 1.0)
        f = np.array([90_000.0])
        assert strong.response(f)[0] == pytest.approx(2 * weak.response(f)[0])


class TestCalibration:
    def test_finds_90khz_carrier(self):
        cal = ResonanceCalibrator()
        carrier = cal.calibrate_carrier_hz()
        assert carrier == pytest.approx(90_000.0, abs=200)

    def test_noisy_sweep_still_converges(self, rng):
        cal = ResonanceCalibrator(noise_floor=0.02)
        carrier = cal.calibrate_carrier_hz(rng)
        assert carrier == pytest.approx(90_000.0, abs=500)

    def test_mode_discovery_matches_fdma_plan(self):
        # The secondary modes the sweep finds are the FDMA subcarriers.
        from repro.ext.fdma import FdmaChannelPlan

        sweep = ResonanceCalibrator().sweep(n_points=1601)
        modes = sweep.find_modes()
        plan = FdmaChannelPlan()
        for f in plan.frequencies_hz:
            assert any(abs(m - f) < 600 for m in modes), f"mode {f} missing"

    def test_sweep_resolution_affects_only_precision(self):
        coarse = ResonanceCalibrator().sweep(n_points=51).peak_frequency_hz()
        fine = ResonanceCalibrator().sweep(n_points=2001).peak_frequency_hz()
        assert coarse == pytest.approx(fine, abs=1000)

    def test_dominant_mode_wins_even_when_others_present(self):
        # Swap amplitudes: make 84.5 kHz dominant and verify the
        # calibration follows the structure, not a hard-coded constant.
        modes = (PlateMode(90_000.0, 0.4), PlateMode(84_500.0, 1.0))
        cal = ResonanceCalibrator(modes=modes)
        assert cal.calibrate_carrier_hz() == pytest.approx(84_500.0, abs=300)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResonanceCalibrator(modes=())
        with pytest.raises(ValueError):
            ResonanceCalibrator().sweep(f_lo_hz=0.0)
        with pytest.raises(ValueError):
            ResonanceCalibrator().sweep(n_points=2)
        with pytest.raises(ValueError):
            ResonanceCalibrator().response_at(np.array([-1.0]))
