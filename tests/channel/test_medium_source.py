"""Tests for multi-source media (the ``source`` mount parameter)."""

import pytest

from repro.channel.biw import onvo_l60
from repro.channel.medium import AcousticMedium
from repro.channel.propagation import PropagationModel


@pytest.fixture(scope="module")
def cargo_medium():
    biw = onvo_l60()
    biw.add_mount("reader2", "cargo_front")
    return AcousticMedium(
        biw=biw,
        propagation=PropagationModel(biw),
        reference_tag="tag10",
        source="reader2",
    )


class TestAlternateSource:
    def test_source_property(self, cargo_medium):
        assert cargo_medium.source == "reader2"

    def test_tag_names_exclude_all_readers(self, cargo_medium):
        names = cargo_medium.tag_names()
        assert "reader" not in names and "reader2" not in names
        assert len(names) == 12

    def test_cargo_tags_hear_the_cargo_reader_better(self, cargo_medium, medium):
        for tag in ("tag10", "tag11", "tag12"):
            assert cargo_medium.carrier_amplitude_v(tag) > medium.carrier_amplitude_v(tag)

    def test_front_tags_hear_it_worse(self, cargo_medium, medium):
        for tag in ("tag1", "tag2", "tag5"):
            assert cargo_medium.carrier_amplitude_v(tag) < medium.carrier_amplitude_v(tag)

    def test_delays_measured_from_the_new_source(self, cargo_medium):
        assert cargo_medium.propagation_delay_s("tag10") < cargo_medium.propagation_delay_s("tag1")

    def test_backscatter_reference_is_local(self, cargo_medium):
        # tag10 (the reference) has the strongest backscatter at reader2.
        amps = {
            t: cargo_medium.backscatter_amplitude_v(t)
            for t in cargo_medium.tag_names()
        }
        assert max(amps, key=amps.get) in ("tag10", "tag11")

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            AcousticMedium(source="reader9")

    def test_slot_observation_works_from_alternate_source(self, cargo_medium, rng):
        obs = cargo_medium.observe_slot(["tag11"], rng)
        assert obs.n_transmitters == 1
