"""Tests for acoustic physics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.channel import acoustics


class TestDbConversions:
    def test_amplitude_roundtrip(self):
        assert acoustics.db_to_amplitude_ratio(20.0) == pytest.approx(10.0)
        assert acoustics.amplitude_ratio_to_db(10.0) == pytest.approx(20.0)

    def test_power_roundtrip(self):
        assert acoustics.db_to_power_ratio(10.0) == pytest.approx(10.0)
        assert acoustics.power_ratio_to_db(100.0) == pytest.approx(20.0)

    def test_zero_db_is_unity(self):
        assert acoustics.db_to_amplitude_ratio(0.0) == 1.0
        assert acoustics.db_to_power_ratio(0.0) == 1.0

    def test_nonpositive_ratio_raises(self):
        with pytest.raises(ValueError):
            acoustics.amplitude_ratio_to_db(0.0)
        with pytest.raises(ValueError):
            acoustics.power_ratio_to_db(-1.0)

    @given(st.floats(min_value=-100, max_value=100))
    def test_amplitude_db_roundtrip_property(self, db):
        ratio = acoustics.db_to_amplitude_ratio(db)
        assert acoustics.amplitude_ratio_to_db(ratio) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-100, max_value=100))
    def test_power_is_amplitude_squared(self, db):
        amp = acoustics.db_to_amplitude_ratio(db)
        power = acoustics.db_to_power_ratio(db)
        assert power == pytest.approx(amp * amp, rel=1e-9)


class TestLambWaves:
    def test_phase_velocity_grows_with_sqrt_frequency(self):
        v1 = acoustics.lamb_a0_phase_velocity(45_000.0)
        v2 = acoustics.lamb_a0_phase_velocity(180_000.0)
        assert v2 == pytest.approx(2.0 * v1, rel=1e-9)

    def test_group_velocity_is_twice_phase(self):
        f = acoustics.CARRIER_FREQUENCY_HZ
        assert acoustics.lamb_a0_group_velocity(f) == pytest.approx(
            2.0 * acoustics.lamb_a0_phase_velocity(f)
        )

    def test_velocity_below_bulk_speeds(self):
        # At 90 kHz in a 0.8 mm sheet the flexural wave is far slower
        # than bulk waves — the dispersive thin-plate regime.
        v = acoustics.lamb_a0_phase_velocity(acoustics.CARRIER_FREQUENCY_HZ)
        assert 100.0 < v < acoustics.STEEL_SHEAR_SPEED

    def test_wavelength_at_carrier_is_centimetre_scale(self):
        lam = acoustics.wavelength(acoustics.CARRIER_FREQUENCY_HZ)
        assert 1e-3 < lam < 0.1

    def test_propagation_delay_linear_in_distance(self):
        d1 = acoustics.propagation_delay(1.0)
        d2 = acoustics.propagation_delay(2.0)
        assert d2 == pytest.approx(2.0 * d1)

    def test_biw_scale_delay_under_10ms(self):
        # A full-vehicle path (~5 m) must stay well inside a slot.
        assert acoustics.propagation_delay(5.0) < 0.01

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            acoustics.lamb_a0_phase_velocity(0.0)
        with pytest.raises(ValueError):
            acoustics.propagation_delay(-1.0)
