"""Tests for the propagation / path-loss model."""

import pytest

from repro.channel.biw import BiWModel, JointKind, onvo_l60
from repro.channel.propagation import PropagationModel


@pytest.fixture(scope="module")
def model():
    return PropagationModel(onvo_l60())


class TestPathLoss:
    def test_loss_increases_with_distance(self, model):
        near = model.link("reader", "tag8").loss_db
        far = model.link("reader", "tag11").loss_db
        assert far > near

    def test_tag8_loss_matches_calibration(self, model):
        # 0.4 m, no joints: spreading + absorption ~ 6.8 dB.
        assert model.link("reader", "tag8").loss_db == pytest.approx(6.8, abs=0.3)

    def test_perpendicular_joint_dominates_tag4(self, model):
        p = model.biw.path("reader", "tag4")
        joint_part = p.joint_loss_db(model.biw.joint_loss_table)
        total = model.path_loss_db(p)
        assert joint_part > 0.3 * total

    def test_amplitude_positive_and_below_source(self, model):
        for tag in model.biw.mounts:
            if tag == "reader":
                continue
            amp = model.carrier_amplitude_at(tag)
            assert 0.0 < amp < 3.073

    def test_roundtrip_is_twice_oneway(self, model):
        one = model.link("reader", "tag11").loss_db
        assert model.roundtrip_loss_db("tag11") == pytest.approx(2 * one)

    def test_delay_positive_and_small(self, model):
        d = model.link("reader", "tag11").delay_s
        assert 0.0 < d < 0.01

    def test_link_is_cached(self, model):
        assert model.link("reader", "tag8") is model.link("reader", "tag8")

    def test_cache_invalidation_reflects_model_change(self):
        biw = onvo_l60()
        m = PropagationModel(biw)
        before = m.link("reader", "tag11").loss_db
        biw.set_joint_loss(JointKind.SEAM, 5.0)
        m.invalidate_cache()
        after = m.link("reader", "tag11").loss_db
        assert after > before

    def test_minimum_distance_clamps_spreading(self):
        biw = BiWModel()
        biw.add_vertex("a", 0, 0)
        biw.add_vertex("b", 0.01, 0)  # closer than the reference distance
        biw.add_member("a", "b", JointKind.NONE)
        biw.add_mount("src", "a")
        biw.add_mount("dst", "b")
        m = PropagationModel(biw)
        # Spreading cannot become a gain at sub-reference distances.
        assert m.link("src", "dst").loss_db >= 0.0

    def test_invalid_constructor_args(self):
        biw = onvo_l60()
        with pytest.raises(ValueError):
            PropagationModel(biw, alpha_db_per_m=-1.0)
        with pytest.raises(ValueError):
            PropagationModel(biw, source_amplitude_v=0.0)
