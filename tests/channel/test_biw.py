"""Tests for the BiW structural graph."""

import pytest

from repro.channel.biw import (
    BiWModel,
    JointKind,
    TAG_NAMES,
    onvo_l60,
)


@pytest.fixture(scope="module")
def biw():
    return onvo_l60()


class TestGraphConstruction:
    def test_duplicate_vertex_raises(self):
        m = BiWModel()
        m.add_vertex("a", 0, 0)
        with pytest.raises(ValueError):
            m.add_vertex("a", 1, 1)

    def test_member_unknown_vertex_raises(self):
        m = BiWModel()
        m.add_vertex("a", 0, 0)
        with pytest.raises(KeyError):
            m.add_member("a", "b")

    def test_mount_unknown_vertex_raises(self):
        m = BiWModel()
        with pytest.raises(KeyError):
            m.add_mount("tag", "nowhere")

    def test_duplicate_mount_raises(self):
        m = BiWModel()
        m.add_vertex("a", 0, 0)
        m.add_mount("t", "a")
        with pytest.raises(ValueError):
            m.add_mount("t", "a")

    def test_member_length_euclidean(self):
        m = BiWModel()
        m.add_vertex("a", 0, 0, 0)
        m.add_vertex("b", 3, 4, 0)
        m.add_member("a", "b")
        member = m._adjacency["a"][0]
        assert m.member_length(member) == pytest.approx(5.0)

    def test_member_length_override(self):
        m = BiWModel()
        m.add_vertex("a", 0, 0, 0)
        m.add_vertex("b", 3, 4, 0)
        m.add_member("a", "b", length_m=7.5)
        assert m.member_length(m._adjacency["a"][0]) == 7.5

    def test_negative_member_length_raises(self):
        m = BiWModel()
        m.add_vertex("a", 0, 0)
        m.add_vertex("b", 1, 0)
        with pytest.raises(ValueError):
            m.add_member("a", "b", length_m=-1.0)

    def test_negative_joint_loss_raises(self, biw):
        with pytest.raises(ValueError):
            biw.set_joint_loss(JointKind.SEAM, -0.5)


class TestPathFinding:
    def test_path_to_self_is_empty(self, biw):
        p = biw.path("reader", "reader")
        assert p.distance_m == 0.0
        assert p.joints == ()

    def test_no_path_raises(self):
        m = BiWModel()
        m.add_vertex("a", 0, 0)
        m.add_vertex("b", 1, 0)
        m.add_mount("x", "a")
        m.add_mount("y", "b")
        with pytest.raises(ValueError):
            m.path("x", "y")

    def test_tag8_is_nearest_with_no_joints(self, biw):
        p = biw.path("reader", "tag8")
        assert p.distance_m == pytest.approx(0.4, abs=0.05)
        assert p.joints == ()

    def test_tag4_crosses_perpendicular_junction(self, biw):
        p = biw.path("reader", "tag4")
        assert JointKind.PERPENDICULAR in p.joints
        assert p.distance_m == pytest.approx(0.92, abs=0.05)

    def test_tag11_crosses_two_seams(self, biw):
        p = biw.path("reader", "tag11")
        assert p.joints.count(JointKind.SEAM) == 2
        assert 1.5 < p.distance_m < 2.1

    def test_all_twelve_tags_reachable(self, biw):
        for tag in TAG_NAMES:
            p = biw.path("reader", tag)
            assert p.distance_m >= 0.0

    def test_path_symmetry(self, biw):
        fwd = biw.path("reader", "tag11")
        back = biw.path("tag11", "reader")
        assert fwd.distance_m == pytest.approx(back.distance_m)
        assert tuple(reversed(back.joints)) == fwd.joints

    def test_joint_loss_db_sums_table(self, biw):
        p = biw.path("reader", "tag11")
        expected = 2 * biw.joint_loss_table[JointKind.SEAM]
        assert p.joint_loss_db(biw.joint_loss_table) == pytest.approx(expected)

    def test_path_vertices_are_connected_route(self, biw):
        p = biw.path("reader", "tag12")
        assert p.vertices[0] == "middle_floor"
        assert p.vertices[-1] == "cargo_left"


class TestDeployment:
    def test_twelve_tags_and_reader(self, biw):
        mounts = biw.mounts
        assert set(TAG_NAMES) <= set(mounts)
        assert "reader" in mounts
        assert len(mounts) == 13

    def test_tag_names_constant(self):
        assert len(TAG_NAMES) == 12
        assert TAG_NAMES[0] == "tag1"
        assert TAG_NAMES[-1] == "tag12"

    def test_vehicle_footprint_matches_suv(self, biw):
        # ONVO L60: ~4.8 m long, ~1.9 m wide.
        xs = [biw.position(v)[0] for v in biw.vertices]
        ys = [biw.position(v)[1] for v in biw.vertices]
        assert max(xs) <= 4.8
        assert min(xs) >= 0.0
        assert max(ys) <= 1.9


class TestMegacasting:
    """Sec. 1: single-piece casting removes seams, not geometry."""

    def test_no_seams_remain(self):
        from repro.channel.biw import onvo_l60_megacast

        cast = onvo_l60_megacast()
        for tag in TAG_NAMES:
            path = cast.path("reader", tag)
            assert JointKind.SEAM not in path.joints

    def test_perpendicular_junctions_survive_casting(self):
        from repro.channel.biw import onvo_l60_megacast

        cast = onvo_l60_megacast()
        path = cast.path("reader", "tag4")
        assert JointKind.PERPENDICULAR in path.joints

    def test_same_mounts_and_distances(self, biw):
        from repro.channel.biw import onvo_l60_megacast

        cast = onvo_l60_megacast()
        assert set(cast.mounts) == set(biw.mounts)
        for tag in TAG_NAMES:
            assert cast.path("reader", tag).distance_m == pytest.approx(
                biw.path("reader", tag).distance_m
            )

    def test_cast_paths_never_lossier(self, biw):
        from repro.channel.biw import onvo_l60_megacast
        from repro.channel.propagation import PropagationModel

        stamped = PropagationModel(biw)
        cast = PropagationModel(onvo_l60_megacast())
        for tag in TAG_NAMES:
            assert (
                cast.link("reader", tag).loss_db
                <= stamped.link("reader", tag).loss_db + 1e-9
            )
