"""Tests for the multipath impulse-response model."""

import numpy as np
import pytest

from repro.channel.biw import BiWModel, JointKind, onvo_l60
from repro.channel.multipath import (
    Echo,
    ImpulseResponse,
    MultipathModel,
    k_least_lossy_paths,
)
from repro.phy.modem import BackscatterUplink
from repro.phy.packets import UplinkPacket
from repro.phy.reader_dsp import ReaderReceiveChain


@pytest.fixture(scope="module")
def model():
    return MultipathModel()


class TestImpulseResponse:
    def test_apply_adds_delayed_copies(self):
        ir = ImpulseResponse((Echo(delay_s=2e-6, gain=0.5),))
        x = np.zeros(10)
        x[0] = 1.0
        y = ir.apply(x, sample_rate_hz=500_000.0)
        assert y[0] == 1.0
        assert y[1] == 0.5  # one-sample echo

    def test_apply_preserves_length(self):
        ir = ImpulseResponse((Echo(1e-3, 0.3),))
        x = np.ones(100)
        assert len(ir.apply(x)) == 100

    def test_echo_energy_fraction(self):
        ir = ImpulseResponse((Echo(1e-4, 0.3), Echo(2e-4, 0.4)))
        assert ir.echo_energy_fraction == pytest.approx(0.09 + 0.16)

    def test_delay_spread_zero_without_echoes(self):
        assert ImpulseResponse(()).rms_delay_spread_s() == 0.0

    def test_delay_spread_grows_with_late_echoes(self):
        near = ImpulseResponse((Echo(1e-4, 0.5),))
        far = ImpulseResponse((Echo(1e-3, 0.5),))
        assert far.rms_delay_spread_s() > near.rms_delay_spread_s()


class TestPathEnumeration:
    def test_tree_graph_has_single_route(self):
        biw = onvo_l60()
        routes = k_least_lossy_paths(biw, "reader", "tag11", k=4)
        assert len(routes) == 1  # the deployment graph is a tree

    def test_cycle_yields_multiple_routes(self):
        biw = BiWModel()
        for name, x in (("a", 0.0), ("b", 1.0), ("c", 2.0)):
            biw.add_vertex(name, x, 0.0)
        biw.add_vertex("d", 1.0, 1.0)
        biw.add_member("a", "b", JointKind.NONE)
        biw.add_member("b", "c", JointKind.NONE)
        biw.add_member("a", "d", JointKind.SEAM)
        biw.add_member("d", "c", JointKind.SEAM)
        biw.add_mount("src", "a")
        biw.add_mount("dst", "c")
        routes = k_least_lossy_paths(biw, "src", "dst", k=4)
        assert len(routes) == 2
        assert routes[0][1] < routes[1][1]  # direct first

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            k_least_lossy_paths(onvo_l60(), "reader", "tag8", k=0)


class TestDeploymentResponses:
    def test_every_tag_has_a_response(self, model):
        for tag in [f"tag{i}" for i in range(1, 13)]:
            ir = model.impulse_response(tag)
            assert len(ir.echoes) >= model.n_tail_taps

    def test_echo_energy_below_direct(self, model):
        for tag in ("tag8", "tag4", "tag11"):
            assert model.impulse_response(tag).echo_energy_fraction < 0.5

    def test_delay_spread_sub_raw_bit_at_default_rate(self, model):
        # The physical basis of the 375 bps design point: delay spreads
        # (~100-200 us) are tiny against the 2.67 ms raw bit.
        for tag in ("tag8", "tag4", "tag11"):
            spread = model.impulse_response(tag).rms_delay_spread_s()
            assert spread < 0.1 * (1.0 / 375.0)

    def test_echoes_sorted_by_delay(self, model):
        ir = model.impulse_response("tag4")
        delays = [e.delay_s for e in ir.echoes]
        assert delays == sorted(delays)


class TestDecodingUnderMultipath:
    def test_default_rate_robust(self, model, rng):
        uplink = BackscatterUplink()
        chain = ReaderReceiveChain()
        ir = model.impulse_response("tag4")
        decoded = 0
        for k in range(10):
            pkt = UplinkPacket(2, 100 + k)
            comp = uplink.tag_component(
                pkt.to_bits(), 375.0, 0.025, phase_rad=0.5 * k, lead_in_s=0.03
            )
            cap = uplink.capture(
                [ir.apply(comp)], 2.673e-10, rng, extra_samples=2000
            )
            decoded += pkt in chain.decode(cap, 375.0).packets
        assert decoded == 10

    def test_heavy_multipath_breaks_high_rates_first(self, rng):
        # Push the delay spread toward a raw bit: 3000 bps suffers
        # before 375 bps does — the ISI argument for conservative rates.
        ir = ImpulseResponse(
            (Echo(0.15e-3, 0.6), Echo(0.3e-3, 0.45), Echo(0.6e-3, 0.3))
        )
        uplink = BackscatterUplink()
        chain = ReaderReceiveChain()
        results = {}
        for rate in (375.0, 3000.0):
            ok = 0
            for k in range(8):
                pkt = UplinkPacket(1, 55 + k)
                comp = uplink.tag_component(
                    pkt.to_bits(), rate, 0.025, phase_rad=0.7 * k,
                    lead_in_s=max(0.012, 8.0 / rate),
                )
                cap = uplink.capture(
                    [ir.apply(comp)], 2.673e-10, rng, extra_samples=2000
                )
                ok += pkt in chain.decode(cap, rate).packets
            results[rate] = ok
        assert results[375.0] > results[3000.0]
        assert results[375.0] >= 7
