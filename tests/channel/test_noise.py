"""Tests for noise sources."""

import numpy as np
import pytest

from repro.channel.noise import ReceiverNoise, ReverberationField, VehicleVibration


class TestReceiverNoise:
    def test_power_in_band_scales_linearly(self):
        n = ReceiverNoise(psd_v2_per_hz=1e-10)
        assert n.power_in_band(2000.0) == pytest.approx(2 * n.power_in_band(1000.0))

    def test_samples_variance_matches_psd(self, rng):
        n = ReceiverNoise(psd_v2_per_hz=1e-8)
        fs = 500_000.0
        x = n.samples(200_000, fs, rng)
        expected_var = 1e-8 * fs / 2.0
        assert np.var(x) == pytest.approx(expected_var, rel=0.05)

    def test_samples_zero_mean(self, rng):
        n = ReceiverNoise(psd_v2_per_hz=1e-8)
        x = n.samples(100_000, 500_000.0, rng)
        assert abs(np.mean(x)) < 5 * np.std(x) / np.sqrt(len(x))

    def test_invalid_psd_raises(self):
        with pytest.raises(ValueError):
            ReceiverNoise(psd_v2_per_hz=0.0)

    def test_invalid_bandwidth_raises(self):
        with pytest.raises(ValueError):
            ReceiverNoise().power_in_band(-1.0)


class TestVehicleVibration:
    def test_all_energy_below_100hz(self, rng):
        v = VehicleVibration()
        fs = 500_000.0
        x = v.samples(2 ** 18, fs, rng)
        # Hann window keeps rectangular-window leakage skirts from
        # masquerading as high-frequency content.
        x = x * np.hanning(len(x))
        spectrum = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(len(x), 1 / fs)
        low = spectrum[freqs <= 100.0].sum()
        high = spectrum[freqs > 100.0].sum()
        assert high < 1e-5 * low

    def test_rms_amplitude_respected(self, rng):
        v = VehicleVibration(rms_amplitude_v=0.5)
        x = v.samples(2 ** 18, 50_000.0, rng)
        assert np.sqrt(np.mean(x**2)) == pytest.approx(0.5, rel=0.1)

    def test_harmonic_above_limit_raises(self):
        with pytest.raises(ValueError):
            VehicleVibration(harmonic_frequencies_hz=(150.0,))

    def test_no_harmonics_is_silent(self, rng):
        v = VehicleVibration(harmonic_frequencies_hz=())
        assert np.all(v.samples(100, 1000.0, rng) == 0.0)


class TestReverberationField:
    def test_psd_scales_with_carrier_power(self):
        r = ReverberationField()
        assert r.in_band_psd(2.0) == pytest.approx(4 * r.in_band_psd(1.0))

    def test_zero_carrier_zero_reverb(self):
        assert ReverberationField().in_band_psd(0.0) == 0.0

    def test_negative_carrier_raises(self):
        with pytest.raises(ValueError):
            ReverberationField().in_band_psd(-1.0)

    def test_floor_is_well_below_carrier(self):
        r = ReverberationField()
        carrier_power = 1.0**2 / 2
        total_reverb = r.in_band_psd(1.0) * r.spread_bandwidth_hz
        assert total_reverb < 1e-3 * carrier_power
