"""Tests for the shared-medium abstraction — including the paper's
Fig. 11/12 anchor values."""

import numpy as np
import pytest

from repro.channel.medium import AcousticMedium, SlotObservation


class TestCarrierAmplitudes:
    def test_tag8_strongest(self, medium):
        amps = {t: medium.carrier_amplitude_v(t) for t in medium.tag_names()}
        assert max(amps, key=amps.get) == "tag8"

    def test_tag11_and_12_weakest(self, medium):
        amps = {t: medium.carrier_amplitude_v(t) for t in medium.tag_names()}
        weakest_two = sorted(amps, key=amps.get)[:2]
        assert set(weakest_two) == {"tag11", "tag12"}

    def test_tag_names_sorted_numerically(self, medium):
        names = medium.tag_names()
        assert names[0] == "tag1"
        assert names[2] == "tag3"
        assert names[-1] == "tag12"

    def test_unknown_reference_tag_raises(self):
        with pytest.raises(KeyError):
            AcousticMedium(reference_tag="tag99")


class TestUplinkQuality:
    def test_snr_ordering_preserved_across_rates(self, medium):
        for rate in (93.75, 375.0, 3000.0):
            s8 = medium.uplink_snr_db("tag8", rate)
            s4 = medium.uplink_snr_db("tag4", rate)
            s11 = medium.uplink_snr_db("tag11", rate)
            assert s8 > s4 > s11

    def test_snr_drops_3db_per_doubling(self, medium):
        s1 = medium.uplink_snr_db("tag8", 375.0)
        s2 = medium.uplink_snr_db("tag8", 750.0)
        assert s1 - s2 == pytest.approx(3.01, abs=0.01)

    def test_paper_anchor_tag8_at_3000bps(self, medium):
        # Paper: "an SNR exceeding 11.7 dB at 3,000 bps".
        assert medium.uplink_snr_db("tag8", 3000.0) > 11.7

    def test_paper_anchor_tag11_at_750bps(self, medium):
        # Paper: "about 18.1 dB when the bit rate is no more than 750".
        assert medium.uplink_snr_db("tag11", 750.0) == pytest.approx(18.1, abs=1.0)

    def test_packet_loss_below_half_percent_at_all_rates(self, medium):
        # Paper Fig. 12(b): "packet error ratio remains below 0.5%".
        for tag in ("tag8", "tag4", "tag11"):
            for rate in (93.75, 187.5, 375.0, 750.0, 1500.0, 3000.0):
                success = medium.uplink_packet_success(tag, rate, packet_bits=64)
                assert 1.0 - success < 0.005

    def test_loss_grows_with_rate(self, medium):
        slow = medium.uplink_packet_success("tag11", 93.75)
        fast = medium.uplink_packet_success("tag11", 3000.0)
        assert fast < slow

    def test_invalid_bit_rate_raises(self, medium):
        with pytest.raises(ValueError):
            medium.uplink_snr_db("tag8", 0.0)


class TestSlotObservation:
    def test_empty_slot(self, medium, rng):
        obs = medium.observe_slot([], rng)
        assert obs.is_empty
        assert obs.decoded_tag is None
        assert not obs.collision_detected

    def test_single_transmitter_usually_decodes(self, medium, rng):
        decoded = sum(
            1
            for _ in range(200)
            if medium.observe_slot(["tag8"], rng).decoded_tag == "tag8"
        )
        assert decoded >= 195

    def test_single_transmitter_never_flags_collision(self, medium, rng):
        for _ in range(50):
            assert not medium.observe_slot(["tag5"], rng).collision_detected

    def test_collision_detected_with_high_probability(self, medium, rng):
        detected = sum(
            1
            for _ in range(300)
            if medium.observe_slot(["tag5", "tag9"], rng).collision_detected
        )
        assert detected >= 280  # ~98% detection

    def test_capture_effect_decodes_dominant_tag(self, medium, rng):
        # tag8 is ~6 dB above the cargo tags' sum at the reader.
        decodes = [
            medium.observe_slot(["tag8", "tag11"], rng).decoded_tag
            for _ in range(200)
        ]
        assert "tag11" not in decodes
        assert decodes.count("tag8") > 150

    def test_similar_tags_cannot_capture(self, medium, rng):
        # tag11 and tag12 are nearly equal: no 6 dB gap, nothing decodes.
        for _ in range(50):
            assert medium.observe_slot(["tag11", "tag12"], rng).decoded_tag is None

    def test_n_transmitters_recorded(self, medium, rng):
        obs = medium.observe_slot(["tag1", "tag2", "tag3"], rng)
        assert obs.n_transmitters == 3


class TestDownlink:
    def test_downlink_snr_high_everywhere(self, medium):
        for tag in medium.tag_names():
            assert medium.downlink_snr_db(tag) > 20.0

    def test_beacon_loss_below_point_one_percent_at_default_rate(self, medium):
        # Appendix C assumes beacon loss < 0.1% at the default 250 bps.
        for tag in ("tag8", "tag4", "tag11"):
            assert medium.beacon_loss_probability(tag, 250.0) < 1e-3

    def test_beacon_loss_explodes_at_2000bps(self, medium):
        assert medium.beacon_loss_probability("tag8", 2000.0) > 0.5


class TestChannelGeneration:
    def test_starts_at_zero(self):
        from repro.channel.medium import AcousticMedium

        assert AcousticMedium().channel_generation == 0

    def test_bumped_by_every_invalidation(self):
        from repro.channel.medium import AcousticMedium

        medium = AcousticMedium()
        medium.invalidate_channel_cache()
        medium.invalidate_channel_cache()
        assert medium.channel_generation == 2

    def test_reads_do_not_bump(self, medium):
        before = medium.channel_generation
        medium.backscatter_amplitude_v("tag4")
        medium.propagation_delay_s("tag8")
        medium.uplink_snr_db("tag5", 375.0)
        assert medium.channel_generation == before
