"""Tests for the ALOHA baseline (Appendix B)."""

import pytest

from repro.baselines.aloha import (
    AlohaSimulation,
    PACKET_DURATION_S,
    RESUME_FRACTION,
)


class TestMechanics:
    def test_resume_fraction_is_paper_value(self):
        # (2.3 - 1.95) / 2.3 = 15.2%.
        assert RESUME_FRACTION == pytest.approx(0.152, abs=0.001)

    def test_single_tag_never_collides(self):
        sim = AlohaSimulation({"t": 10.0}, duration_s=1000.0, seed=1)
        result = sim.run()
        assert result.per_tag["t"].collided_tx == 0
        assert result.overall_success_rate == 1.0

    def test_transmission_count_matches_cycle_arithmetic(self):
        sim = AlohaSimulation({"t": 10.0}, duration_s=1000.0, noise_std=0.0, seed=0)
        result = sim.run()
        cycle = 10.0 * RESUME_FRACTION + PACKET_DURATION_S
        expected = int((1000.0 - 10.0) / cycle) + 1
        assert result.per_tag["t"].total_tx == pytest.approx(expected, abs=2)

    def test_identical_tags_collide_or_not_consistently(self):
        # Two tags with identical deterministic cycles start at the same
        # instant and collide on every transmission.
        sim = AlohaSimulation({"a": 10.0, "b": 10.0}, duration_s=500.0,
                              noise_std=0.0, seed=0)
        result = sim.run()
        assert result.overall_success_rate == 0.0

    def test_offset_tags_do_not_collide(self):
        # Very different charge times rarely overlap over a short run.
        sim = AlohaSimulation({"a": 7.0, "b": 113.0}, duration_s=500.0,
                              noise_std=0.0, seed=0)
        result = sim.run()
        assert result.per_tag["b"].total_tx > 0
        assert result.overall_success_rate > 0.9

    def test_reproducible_per_seed(self):
        kwargs = dict(duration_s=2000.0, seed=5)
        r1 = AlohaSimulation({"a": 5.0, "b": 8.0}, **kwargs).run()
        r2 = AlohaSimulation({"a": 5.0, "b": 8.0}, **kwargs).run()
        assert r1.per_tag["a"].total_tx == r2.per_tag["a"].total_tx
        assert r1.total_collided == r2.total_collided

    def test_validation(self):
        with pytest.raises(ValueError):
            AlohaSimulation({})
        with pytest.raises(ValueError):
            AlohaSimulation({"a": -1.0})
        with pytest.raises(ValueError):
            AlohaSimulation({"a": 1.0}, duration_s=0.0)
        with pytest.raises(ValueError):
            AlohaSimulation({"a": 1.0}, resume_fraction=0.0)


class TestPaperScale:
    """Slow-ish (~1 s) checks against the Appendix B findings."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.fig19_aloha import run_fig19

        return run_fig19(seed=3)

    def test_overall_success_around_one_third(self, result):
        # Paper: 34.0% collision-free overall.
        assert 0.25 <= result.overall_success_rate <= 0.40

    def test_fast_tag_transmits_over_11000_times(self, result):
        # Paper: Tag 8 (4.5 s) transmits >11,000 times in 10,000 s.
        assert result.per_tag["tag8"].total_tx > 11_000

    def test_fast_tag_collides_over_60_percent(self, result):
        assert result.per_tag["tag8"].success_rate < 0.45

    def test_slow_tags_collide_over_70_percent(self, result):
        # Paper: slow tags (Tag 11) exceed 70% collisions.
        assert result.per_tag["tag11"].success_rate < 0.30

    def test_unfair_access_across_tags(self, result):
        counts = [s.total_tx for s in result.per_tag.values()]
        assert max(counts) > 5 * min(counts)

    def test_every_tag_transmits(self, result):
        assert all(s.total_tx > 0 for s in result.per_tag.values())
