"""FaultEvent / FaultSchedule: validation, ordering, serialisation,
and seed-derived generation."""

import json

import pytest

from repro.faults.schedule import (
    ALL_KINDS,
    ALL_TAGS,
    DEFAULT_MAGNITUDES,
    FaultEvent,
    FaultSchedule,
)


class TestFaultEvent:
    def test_defaults_fill_magnitude(self):
        e = FaultEvent(slot=3, duration=2, kind="noise_burst")
        assert e.magnitude == DEFAULT_MAGNITUDES["noise_burst"]
        assert e.target == ALL_TAGS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(slot=0, duration=1, kind="gremlins")

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError, match="slot"):
            FaultEvent(slot=-1, duration=1, kind="beacon_loss")

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(slot=0, duration=0, kind="beacon_loss")

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent(slot=0, duration=1, kind="beacon_loss", target="")

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent(slot=0, duration=1, kind="noise_burst", magnitude=-3.0)

    def test_fractional_bit_flip_rejected(self):
        with pytest.raises(ValueError, match="bit_flip"):
            FaultEvent(slot=0, duration=1, kind="bit_flip", magnitude=0.5)

    def test_window_arithmetic(self):
        e = FaultEvent(slot=10, duration=4, kind="beacon_loss")
        assert e.clear_slot == 14
        assert not e.active_at(9)
        assert e.active_at(10)
        assert e.active_at(13)
        assert not e.active_at(14)

    def test_json_round_trip(self):
        e = FaultEvent(slot=5, duration=2, kind="attenuation", target="tag3",
                       magnitude=7.5, fault_id=9)
        assert FaultEvent.from_jsonable(e.to_jsonable()) == e


class TestFaultSchedule:
    def test_sequential_id_assignment(self):
        s = FaultSchedule(
            [
                FaultEvent(slot=8, duration=1, kind="beacon_loss"),
                FaultEvent(slot=2, duration=1, kind="ack_corrupt", target="tag1"),
            ]
        )
        # Input order determines ids; slot order determines iteration.
        assert [e.fault_id for e in s] == [1, 0]
        assert [e.slot for e in s] == [2, 8]

    def test_explicit_ids_kept_and_collisions_rejected(self):
        s = FaultSchedule(
            [FaultEvent(slot=0, duration=1, kind="beacon_loss", fault_id=5)]
        )
        assert s.events[0].fault_id == 5
        with pytest.raises(ValueError, match="unique"):
            FaultSchedule(
                [
                    FaultEvent(slot=0, duration=1, kind="beacon_loss", fault_id=5),
                    FaultEvent(slot=1, duration=1, kind="beacon_loss", fault_id=5),
                ]
            )

    def test_queries(self):
        s = FaultSchedule(
            [
                FaultEvent(slot=0, duration=4, kind="beacon_loss"),
                FaultEvent(slot=2, duration=1, kind="noise_burst"),
            ]
        )
        assert len(s) == 2
        assert bool(s)
        assert not bool(FaultSchedule([]))
        assert s.kinds() == ("beacon_loss", "noise_burst")
        assert [e.kind for e in s.active_at(2)] == ["beacon_loss", "noise_burst"]
        assert s.last_clear_slot == 4
        assert FaultSchedule([]).last_clear_slot == 0

    def test_shifted_preserves_everything_else(self):
        s = FaultSchedule([FaultEvent(slot=3, duration=2, kind="brownout",
                                      target="tag1")])
        moved = s.shifted(10)
        assert moved.events[0].slot == 13
        assert moved.events[0].duration == 2
        assert moved.events[0].fault_id == s.events[0].fault_id

    def test_json_round_trip_and_version_check(self):
        s = FaultSchedule.generate(seed=4, n_slots=100, tags=["tag1", "tag2"])
        assert FaultSchedule.from_jsonable(s.to_jsonable()) == s
        bad = s.to_jsonable()
        bad["version"] = 99
        with pytest.raises(ValueError, match="version"):
            FaultSchedule.from_jsonable(bad)

    def test_canonical_bytes_are_valid_sorted_json(self):
        s = FaultSchedule([FaultEvent(slot=1, duration=1, kind="crc_corrupt",
                                      target="tag2")])
        doc = json.loads(s.canonical_bytes())
        assert doc["events"][0]["kind"] == "crc_corrupt"
        # Identical schedules built separately share bytes and signature.
        twin = FaultSchedule([FaultEvent(slot=1, duration=1, kind="crc_corrupt",
                                         target="tag2")])
        assert twin.canonical_bytes() == s.canonical_bytes()
        assert twin.signature() == s.signature()
        assert s == twin and hash(s) == hash(twin)


class TestGenerate:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.generate(seed=11, n_slots=500, tags=["tag1", "tag2"])
        b = FaultSchedule.generate(seed=11, n_slots=500, tags=["tag1", "tag2"])
        assert a == b
        assert a.signature() == b.signature()

    def test_different_seed_different_schedule(self):
        a = FaultSchedule.generate(seed=11, n_slots=500, tags=["tag1"],
                                   n_faults=8)
        b = FaultSchedule.generate(seed=12, n_slots=500, tags=["tag1"],
                                   n_faults=8)
        assert a != b

    def test_generated_fields_within_bounds(self):
        tags = ["tag1", "tag2", "tag3"]
        s = FaultSchedule.generate(seed=2, n_slots=300, tags=tags, n_faults=40,
                                   max_duration=6, start_slot=50)
        assert len(s) == 40
        for e in s:
            assert 50 <= e.slot < 300
            assert 1 <= e.duration <= 6
            assert e.kind in ALL_KINDS
            if e.kind == "reader_restart":
                assert e.target == "reader" and e.duration == 1
            elif e.kind in ("noise_burst", "junction_loss"):
                assert e.target == ALL_TAGS
            else:
                assert e.target in tags

    def test_kind_subset_respected(self):
        s = FaultSchedule.generate(seed=5, n_slots=100, tags=["tag1"],
                                   kinds=["beacon_loss", "brownout"],
                                   n_faults=20)
        assert set(s.kinds()) <= {"beacon_loss", "brownout"}

    def test_generate_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.generate(seed=0, n_slots=10, tags=["tag1"],
                                   kinds=["nope"])
        with pytest.raises(ValueError, match="tag list"):
            FaultSchedule.generate(seed=0, n_slots=10, tags=[])
        with pytest.raises(ValueError, match="start_slot"):
            FaultSchedule.generate(seed=0, n_slots=10, tags=["tag1"],
                                   start_slot=10)
