"""Per-layer injector behaviour: state transitions, exact restoration,
and the controller's per-slot query surface."""

import numpy as np
import pytest

from repro.channel.medium import SlotObservation
from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.controller import FaultState
from repro.faults.injectors import MacFaultInjector, flip_bits
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.phy.packets import DownlinkBeacon

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8}


def make_net(events, **config_kwargs):
    config_kwargs.setdefault("seed", 3)
    config_kwargs.setdefault("ideal_channel", True)
    return SlottedNetwork(
        PERIODS,
        config=NetworkConfig(**config_kwargs),
        faults=FaultSchedule(events),
    )


class TestFlipBits:
    def test_flips_listed_positions(self):
        assert flip_bits([0, 1, 0, 1], [0, 3]) == [1, 1, 0, 0]

    def test_out_of_range_positions_ignored(self):
        assert flip_bits([1, 0], [5, -1, 1]) == [1, 1]

    def test_double_flip_cancels(self):
        assert flip_bits([1, 0, 1], [1, 1]) == [1, 0, 1]


class TestFaultState:
    def test_bump_refcounts_and_drops_zeros(self):
        table = {}
        FaultState.bump(table, "tag1", +1)
        FaultState.bump(table, "tag1", +1)
        assert table == {"tag1": 2}
        FaultState.bump(table, "tag1", -1)
        FaultState.bump(table, "tag1", -1)
        assert table == {}

    def test_bump_below_zero_raises(self):
        with pytest.raises(RuntimeError, match="negative"):
            FaultState.bump({}, "tag1", -1)

    def test_wildcard_flagging(self):
        assert FaultState.is_flagged({"*": 1}, "anything")
        assert FaultState.is_flagged({"tag2": 1}, "tag2")
        assert not FaultState.is_flagged({"tag2": 1}, "tag1")


class TestMacInjector:
    def test_beacon_loss_forced_then_cleared(self):
        net = make_net([FaultEvent(slot=2, duration=3, kind="beacon_loss",
                                   target="tag1")])
        ctl = net.faults
        ctl.on_slot_start(2)
        assert ctl.beacon_lost("tag1", False)
        assert not ctl.beacon_lost("tag2", False)
        ctl.on_slot_start(5)
        assert not ctl.beacon_lost("tag1", False)
        assert not ctl.state.any_active()

    def test_ack_corrupt_inverts_ack_only(self):
        net = make_net([FaultEvent(slot=0, duration=1, kind="ack_corrupt",
                                   target="tag2")])
        ctl = net.faults
        ctl.on_slot_start(0)
        beacon = DownlinkBeacon(ack=True, empty=False, reset=False)
        seen = ctl.beacon_for("tag2", beacon)
        assert seen.ack is False
        assert (seen.empty, seen.reset) == (beacon.empty, beacon.reset)
        assert ctl.beacon_for("tag1", beacon) is beacon

    def test_reader_restart_clears_soft_state(self):
        net = make_net([FaultEvent(slot=50, duration=1, kind="reader_restart",
                                   target="reader")])
        net.run(40)
        assert net.reader._committed  # converged: commitments learned
        slot_before = net.reader.slot_index
        net.run(11)  # crosses the restart
        assert net.reader.slot_index == slot_before + 11  # cadence kept
        restart_records = net.faults.trace.records(kind="fault.apply")
        assert [r["fault_kind"] for r in restart_records] == ["reader_restart"]

    def test_duplicate_kind_ownership_rejected(self):
        from repro.faults.controller import FaultController

        with pytest.raises(ValueError, match="claimed by two injectors"):
            FaultController(
                FaultSchedule([]),
                None,
                np.random.default_rng(0),
                injectors=[MacFaultInjector(), MacFaultInjector()],
            )

    def test_unhandled_kind_rejected(self):
        from repro.faults.controller import FaultController

        with pytest.raises(ValueError, match="no injector handles"):
            FaultController(
                FaultSchedule([FaultEvent(slot=0, duration=1, kind="brownout",
                                          target="tag1")]),
                None,
                np.random.default_rng(0),
                injectors=[MacFaultInjector()],
            )


class TestHardwareInjector:
    def test_brownout_darkens_then_power_cycles(self):
        net = make_net([FaultEvent(slot=3, duration=2, kind="brownout",
                                   target="tag2")])
        ctl = net.faults
        ctl.on_slot_start(3)
        assert ctl.tag_offline("tag2")
        assert not ctl.tag_offline("tag1")
        net.tags["tag2"].ever_settled = True
        net.tags["tag2"].slot_counter = 17
        ctl.on_slot_start(5)
        assert not ctl.tag_offline("tag2")
        # power_cycle: cold restart as a late-arriving tag.
        assert net.tags["tag2"].slot_counter == 0
        assert net.tags["tag2"].ever_settled is False
        assert net.tags["tag2"].late_arrival is True
        assert net.tags["tag2"].is_new

    def test_overlapping_brownouts_cycle_once_at_the_end(self):
        net = make_net([
            FaultEvent(slot=0, duration=4, kind="brownout", target="tag1"),
            FaultEvent(slot=2, duration=4, kind="brownout", target="tag1"),
        ])
        ctl = net.faults
        ctl.on_slot_start(0)
        ctl.on_slot_start(2)
        net.tags["tag1"].slot_counter = 9
        ctl.on_slot_start(4)  # first window ends; still browned out
        assert ctl.tag_offline("tag1")
        assert net.tags["tag1"].slot_counter == 9  # no premature restart
        ctl.on_slot_start(6)
        assert not ctl.tag_offline("tag1")
        assert net.tags["tag1"].slot_counter == 0

    def test_harvester_collapse_blocks_tx_keeps_rx(self):
        net = make_net([FaultEvent(slot=1, duration=2, kind="harvester_collapse",
                                   target="tag3")])
        ctl = net.faults
        ctl.on_slot_start(1)
        assert not ctl.transmit_allowed("tag3")
        assert ctl.transmit_allowed("tag1")
        assert not ctl.tag_offline("tag3")  # the MCU stays up
        ctl.on_slot_start(3)
        assert ctl.transmit_allowed("tag3")


class TestPhyInjector:
    def test_bit_flip_marks_corrupt_and_counts(self):
        net = make_net([FaultEvent(slot=0, duration=2, kind="bit_flip",
                                   target="tag1", magnitude=3)])
        ctl = net.faults
        ctl.on_slot_start(0)
        assert ctl.state.corrupt_uplink == {"tag1": 1}
        assert ctl.state.bit_flip_counts == {"tag1": 3}
        flips = ctl.uplink_bit_flips("tag1", 64)
        assert 1 <= len(flips) <= 3
        assert list(flips) == sorted(set(flips))
        assert all(0 <= p < 64 for p in flips)
        assert ctl.uplink_bit_flips("tag2", 64) == ()
        ctl.on_slot_start(2)
        assert ctl.state.corrupt_uplink == {}
        assert ctl.state.bit_flip_counts == {}

    def test_crc_corrupt_suppresses_decode_only(self):
        net = make_net([FaultEvent(slot=0, duration=1, kind="crc_corrupt",
                                   target="tag2")])
        ctl = net.faults
        ctl.on_slot_start(0)
        obs = SlotObservation(("tag2",), "tag2", False)
        out = ctl.transform_observation(obs)
        assert out.decoded_tag is None
        assert out.transmitters == ("tag2",)
        clean = SlotObservation(("tag1",), "tag1", True)
        assert ctl.transform_observation(clean) is clean

    def test_envelope_drift_multiplies_loss_probability(self):
        net = make_net(
            [FaultEvent(slot=0, duration=1, kind="envelope_drift",
                        target="tag1", magnitude=1e9)],
            beacon_loss_probability=1e-4,
        )
        ctl = net.faults
        ctl.on_slot_start(0)
        # Scale pushes the extra loss mass to its cap of 1: always lost.
        assert all(ctl.beacon_lost("tag1", False) for _ in range(8))
        assert not ctl.beacon_lost("tag2", False)
        ctl.on_slot_start(1)
        assert not ctl.beacon_lost("tag1", False)

    def test_overlapping_drift_composes_multiplicatively(self):
        net = make_net([
            FaultEvent(slot=0, duration=3, kind="envelope_drift",
                       target="tag1", magnitude=10.0),
            FaultEvent(slot=1, duration=1, kind="envelope_drift",
                       target="tag1", magnitude=4.0),
        ])
        ctl = net.faults
        ctl.on_slot_start(0)
        assert ctl.state.beacon_loss_scale == {"tag1": 10.0}
        ctl.on_slot_start(1)
        assert ctl.state.beacon_loss_scale == {"tag1": 40.0}
        ctl.on_slot_start(2)
        assert ctl.state.beacon_loss_scale == {"tag1": 10.0}
        ctl.on_slot_start(3)
        assert ctl.state.beacon_loss_scale == {}


class TestChannelInjector:
    def test_noise_burst_is_a_global_penalty(self):
        net = make_net([FaultEvent(slot=0, duration=1, kind="noise_burst",
                                   magnitude=9.0)])
        ctl = net.faults
        ctl.on_slot_start(0)
        assert ctl.snr_penalty_for("tag1") == 9.0
        assert ctl.snr_penalty_for("tag3") == 9.0
        assert ctl.penalties_for(["tag1"]) == {"tag1": 9.0}
        ctl.on_slot_start(1)
        assert ctl.snr_penalty_for("tag1") == 0.0
        assert ctl.penalties_for(["tag1"]) is None

    def test_attenuation_targets_one_tag_and_stacks_with_noise(self):
        net = make_net([
            FaultEvent(slot=0, duration=2, kind="attenuation",
                       target="tag2", magnitude=12.0),
            FaultEvent(slot=1, duration=1, kind="noise_burst", magnitude=5.0),
        ])
        ctl = net.faults
        ctl.on_slot_start(0)
        assert ctl.snr_penalty_for("tag2") == 12.0
        assert ctl.snr_penalty_for("tag1") == 0.0
        ctl.on_slot_start(1)
        assert ctl.snr_penalty_for("tag2") == 17.0
        assert ctl.snr_penalty_for("tag1") == 5.0
        ctl.on_slot_start(2)
        assert ctl.snr_penalty_for("tag2") == 0.0

    def test_junction_loss_mutates_and_restores_exactly(self):
        # Builds a private AcousticMedium (the default) on purpose: the
        # injector mutates the BiW in place, which must never touch the
        # session-shared deployment other tests use.
        net = SlottedNetwork(
            PERIODS,
            config=NetworkConfig(seed=3),
            faults=FaultSchedule([
                FaultEvent(slot=0, duration=4, kind="junction_loss",
                           magnitude=2.5),
                FaultEvent(slot=2, duration=4, kind="junction_loss",
                           magnitude=1.25),
            ]),
        )
        ctl = net.faults
        biw = net.medium.biw
        baseline_loss = dict(net._beacon_loss)
        baseline_amp = net.medium.backscatter_amplitude_v("tag2")
        ctl.on_slot_start(0)
        assert biw.joint_loss_offset_db == 2.5
        degraded_loss = net.beacon_loss_probability_for("tag2")
        assert degraded_loss > baseline_loss["tag2"]
        ctl.on_slot_start(2)
        assert biw.joint_loss_offset_db == 3.75
        ctl.on_slot_start(4)
        assert biw.joint_loss_offset_db == 1.25
        ctl.on_slot_start(6)
        # Recomputed from the active set, not decremented: exactly zero.
        assert biw.joint_loss_offset_db == 0.0
        assert net._beacon_loss == baseline_loss
        assert net.medium.backscatter_amplitude_v("tag2") == baseline_amp
