"""Golden-trace regression: four canonical scenarios under fixed
seeds must replay byte-for-byte against checked-in JSON documents.

Regenerate (after an intentional behaviour change) with::

    PYTHONPATH=src python -m pytest tests/faults/test_golden.py --regen-golden

and review the golden diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.faults.scenarios import (
    SCENARIO_NAMES,
    SCENARIO_SEED,
    SCENARIO_SLOTS,
    run_scenario,
    scenario_schedule,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

_RUN_CACHE = {}


def scenario_run(name):
    """Each scenario executes once per test session (module cache)."""
    if name not in _RUN_CACHE:
        _RUN_CACHE[name] = run_scenario(name)
    return _RUN_CACHE[name]


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def load_or_regen(name: str, regen: bool) -> dict:
    run = scenario_run(name)
    path = golden_path(name)
    if regen:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        doc = run.to_jsonable()
        path.write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        return doc
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing — run pytest with --regen-golden"
        )
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", SCENARIO_NAMES)
class TestGoldenScenarios:
    def test_trace_signature_matches_golden(self, name, regen_golden):
        doc = load_or_regen(name, regen_golden)
        run = scenario_run(name)
        assert run.trace.signature() == doc["trace_signature"], (
            f"scenario {name!r} drifted from its golden trace; if the "
            "change is intentional, regenerate with --regen-golden"
        )

    def test_full_trace_matches_golden(self, name, regen_golden):
        doc = load_or_regen(name, regen_golden)
        run = scenario_run(name)
        assert run.trace.to_jsonable() == doc["trace"]

    def test_schedule_signature_matches_golden(self, name, regen_golden):
        doc = load_or_regen(name, regen_golden)
        assert scenario_schedule(name).signature() == doc["schedule_signature"]

    def test_golden_metadata_pins_the_setup(self, name, regen_golden):
        doc = load_or_regen(name, regen_golden)
        assert doc["scenario"] == name
        assert doc["seed"] == SCENARIO_SEED
        assert doc["n_slots"] == SCENARIO_SLOTS


class TestScenarioMachinery:
    def test_all_scenarios_covered(self):
        assert set(SCENARIO_NAMES) == {
            "ideal",
            "lossy",
            "fault_burst",
            "supervised",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_scenario("nope")
        with pytest.raises(KeyError):
            scenario_schedule("nope")

    def test_repeat_runs_are_byte_identical(self):
        a = run_scenario("fault_burst")
        b = run_scenario("fault_burst")
        assert a.trace.canonical_bytes() == b.trace.canonical_bytes()

    def test_supervised_differs_from_vanilla_burst(self):
        # Same seed + schedule: any divergence is the policies acting.
        burst = scenario_run("fault_burst")
        healed = scenario_run("supervised")
        assert burst.trace.signature() != healed.trace.signature()

    def test_fault_burst_actually_disturbs_the_network(self):
        ideal = scenario_run("ideal")
        burst = scenario_run("fault_burst")
        # Same seed + topology: any divergence comes from the injection.
        assert ideal.trace.signature() != burst.trace.signature()
        assert burst.trace.count("fault.apply") == len(
            scenario_schedule("fault_burst")
        )

    def test_golden_dir_has_no_stray_scenarios(self):
        # "multireader" is pinned by tests/multireader/test_golden.py,
        # "relay_rescue" by tests/relay/test_relay_golden.py,
        # "adaptive_uplink" by tests/phy/test_adaptive_golden.py.
        stray = (
            {p.stem for p in GOLDEN_DIR.glob("*.json")}
            - set(SCENARIO_NAMES)
            - {"multireader", "relay_rescue", "adaptive_uplink"}
        )
        assert not stray, f"unexpected golden files: {sorted(stray)}"
