"""Differential suite: the vectorised hot paths against their scalar
executable specifications *with fault injectors active* — corrupted
inputs and drifted thresholds must degrade both implementations
identically, bit for bit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy import cache as phy_cache
from repro.phy.modem import (
    BackscatterUplink,
    FskOokDownlink,
    raw_bits_to_levels,
    raw_bits_to_levels_reference,
)
from repro.phy.reader_dsp import ReaderReceiveChain
from repro.faults.injectors import flip_bits

DIFF = settings(max_examples=20, deadline=None, derandomize=True)

bit_seqs = st.lists(st.integers(0, 1), min_size=4, max_size=48)
flip_sets = st.lists(st.integers(0, 63), max_size=6)


def schmitt_reference(projected, hysteresis, drift):
    """Scalar spec of the drifted hysteresis slicer: walk the samples,
    flip state only outside the dead band around the drifted centre."""
    spread = 1.4826 * float(np.median(np.abs(projected - np.median(projected))))
    if spread == 0.0:
        return np.zeros(len(projected), dtype=np.int8)
    center = drift * spread
    hi = center + hysteresis * spread
    lo = center - hysteresis * spread
    state = 1 if projected[0] > center else 0
    out = np.empty(len(projected), dtype=np.int8)
    for i, x in enumerate(projected):
        if x >= hi:
            state = 1
        elif x <= lo:
            state = 0
        out[i] = state
    return out


class TestLevelExpansionUnderFlips:
    @DIFF
    @given(bit_seqs, flip_sets)
    def test_vectorised_matches_reference_on_flipped_frames(self, bits, flips):
        corrupted = flip_bits(bits, flips)
        raw = phy_cache.fm0_raw(corrupted)
        vec = raw_bits_to_levels(raw, 375.0, 500_000.0)
        ref = raw_bits_to_levels_reference(list(raw), 375.0, 500_000.0)
        assert np.array_equal(vec, ref)

    @DIFF
    @given(bit_seqs, flip_sets, st.sampled_from([375.0, 1500.0, 3000.0]))
    def test_equivalence_holds_across_rates(self, bits, flips, rate):
        corrupted = flip_bits(bits, flips)
        raw = phy_cache.fm0_raw(corrupted)
        vec = raw_bits_to_levels(raw, rate, 500_000.0)
        ref = raw_bits_to_levels_reference(list(raw), rate, 500_000.0)
        assert np.array_equal(vec, ref)


class TestTagComponentBitFlips:
    @DIFF
    @given(bit_seqs, flip_sets)
    def test_flip_parameter_equals_manual_preflip(self, bits, flips):
        """The ``bit_flips`` fast-path parameter must be exactly the
        composition of flip_bits with the unfaulted synthesis."""
        uplink = BackscatterUplink()
        via_param = uplink.tag_component(
            bits, 375.0, 0.01, lead_in_s=0.001, tail_s=0.001, bit_flips=flips
        )
        via_manual = uplink.tag_component(
            flip_bits(bits, flips), 375.0, 0.01, lead_in_s=0.001, tail_s=0.001
        )
        assert np.array_equal(via_param, via_manual)

    def test_empty_flip_tuple_is_the_identity(self):
        uplink = BackscatterUplink()
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        a = uplink.tag_component(bits, 375.0, 0.01, lead_in_s=0.001, tail_s=0.001)
        b = uplink.tag_component(
            bits, 375.0, 0.01, lead_in_s=0.001, tail_s=0.001, bit_flips=()
        )
        assert np.array_equal(a, b)

    def test_flip_actually_changes_the_waveform(self):
        uplink = BackscatterUplink()
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        clean = uplink.tag_component(bits, 375.0, 0.01, lead_in_s=0.001,
                                     tail_s=0.001)
        faulty = uplink.tag_component(bits, 375.0, 0.01, lead_in_s=0.001,
                                      tail_s=0.001, bit_flips=(2,))
        assert not np.array_equal(clean, faulty)


class TestRingTailUnderFlips:
    @DIFF
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=16), flip_sets)
    def test_naive_ook_matches_reference_on_flipped_frames(self, bits, flips):
        downlink = FskOokDownlink()
        corrupted = flip_bits(bits, flips)
        vec = downlink.naive_ook_waveform(corrupted, 250.0)
        ref = downlink.naive_ook_waveform_reference(corrupted, 250.0)
        np.testing.assert_allclose(vec, ref, rtol=0, atol=1e-9)


class TestSchmittUnderDrift:
    @DIFF
    @given(
        st.lists(
            st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=200,
        ),
        st.sampled_from([-0.25, 0.0, 0.2]),
    )
    def test_vectorised_matches_scalar_spec(self, samples, drift):
        projected = np.asarray(samples)
        chain = ReaderReceiveChain(threshold_drift=drift)
        vec = chain.schmitt(projected)
        ref = schmitt_reference(projected, chain.schmitt_hysteresis, drift)
        assert np.array_equal(vec, ref)

    def test_zero_drift_is_bit_identical_to_default_chain(self, rng):
        projected = rng.normal(0.0, 1.0, size=5000)
        default = ReaderReceiveChain()
        explicit = ReaderReceiveChain(threshold_drift=0.0)
        assert np.array_equal(default.schmitt(projected),
                              explicit.schmitt(projected))

    def test_extreme_drift_freezes_the_slicer(self, rng):
        projected = rng.normal(0.0, 1.0, size=2000)
        pinned = ReaderReceiveChain(threshold_drift=0.99).schmitt(projected)
        # Centre far above the signal: almost everything slices low.
        assert pinned.mean() < 0.5
        balanced = ReaderReceiveChain().schmitt(projected)
        assert abs(balanced.mean() - 0.5) < 0.2

    def test_drift_bounds_validated(self):
        with pytest.raises(ValueError, match="drift"):
            ReaderReceiveChain(threshold_drift=1.0)
        with pytest.raises(ValueError, match="drift"):
            ReaderReceiveChain(threshold_drift=-1.5)
