"""Chaos suite: hypothesis-generated fault schedules against the full
network, asserting the safety invariants that must hold under ANY
injection — clean teardown, replay determinism, pre-fault transparency,
and protocol-state sanity."""

from hypothesis import given, settings, strategies as st

from repro.core.network import NetworkConfig, SlottedNetwork
from repro.faults.schedule import ALL_KINDS, FaultEvent, FaultSchedule

PERIODS = {"tag1": 4, "tag2": 8, "tag3": 8, "tag4": 16}
TAGS = tuple(sorted(PERIODS))
N_SLOTS = 120

CHAOS = settings(max_examples=20, deadline=None, derandomize=True)


@st.composite
def fault_events(draw) -> FaultEvent:
    kind = draw(st.sampled_from(ALL_KINDS))
    slot = draw(st.integers(0, N_SLOTS - 1))
    if kind == "reader_restart":
        duration, target = 1, "reader"
    else:
        duration = draw(st.integers(1, 12))
        if kind in ("noise_burst", "junction_loss"):
            target = "*"
        else:
            target = draw(st.sampled_from(TAGS + ("*",)))
    if kind == "bit_flip":
        magnitude = float(draw(st.integers(1, 4)))
    elif kind in ("noise_burst", "attenuation", "junction_loss"):
        magnitude = draw(
            st.floats(0.1, 30.0, allow_nan=False, allow_infinity=False)
        )
    elif kind == "envelope_drift":
        magnitude = draw(
            st.floats(1.0, 500.0, allow_nan=False, allow_infinity=False)
        )
    else:
        magnitude = None
    return FaultEvent(
        slot=slot, duration=duration, kind=kind, target=target, magnitude=magnitude
    )


schedules = st.lists(fault_events(), min_size=0, max_size=6).map(FaultSchedule)


def run_with(schedule: FaultSchedule, seed: int = 0, n_slots: int = None):
    net = SlottedNetwork(
        PERIODS,
        config=NetworkConfig(seed=seed, ideal_channel=True),
        faults=schedule,
    )
    net.run(n_slots if n_slots is not None else N_SLOTS + schedule.last_clear_slot)
    return net


class TestChaosInvariants:
    @CHAOS
    @given(schedules)
    def test_run_completes_with_one_record_per_slot(self, schedule):
        net = run_with(schedule)
        n = N_SLOTS + schedule.last_clear_slot
        assert len(net.records) == n
        assert [r.slot for r in net.records] == list(range(n))
        assert net.faults.trace.count("slot") == n

    @CHAOS
    @given(schedules)
    def test_all_fault_state_clears_after_last_event(self, schedule):
        net = run_with(schedule)
        state = net.faults.state
        assert not state.any_active()
        assert net.faults.active_events() == []
        # Float state restored to exactly zero — no residue.
        assert state.noise_penalty_db == 0.0
        assert net.medium.biw.joint_loss_offset_db == 0.0

    @CHAOS
    @given(schedules)
    def test_every_applied_event_is_cleared(self, schedule):
        net = run_with(schedule)
        trace = net.faults.trace
        applied = [r["fault_id"] for r in trace.records(kind="fault.apply")]
        cleared = [r["fault_id"] for r in trace.records(kind="fault.clear")]
        assert sorted(applied) == sorted(cleared)
        assert len(set(applied)) == len(applied)
        expected = [e.fault_id for e in schedule]
        assert sorted(applied) == sorted(expected)

    @CHAOS
    @given(schedules, st.integers(0, 3))
    def test_same_seed_replays_byte_identically(self, schedule, seed):
        a = run_with(schedule, seed=seed)
        b = run_with(schedule, seed=seed)
        assert a.faults.trace.signature() == b.faults.trace.signature()
        assert a.faults.trace.canonical_bytes() == b.faults.trace.canonical_bytes()
        assert a.records == b.records

    @CHAOS
    @given(schedules)
    def test_transparent_before_first_fault(self, schedule):
        """Slots before the first event match the fault-free run exactly:
        the fault layer consumes nothing from the shared slot stream."""
        baseline = SlottedNetwork(
            PERIODS, config=NetworkConfig(seed=0, ideal_channel=True)
        )
        baseline.run(N_SLOTS)
        net = run_with(schedule, n_slots=N_SLOTS)
        first = min((e.slot for e in schedule), default=N_SLOTS)
        assert net.records[:first] == baseline.records[:first]

    @CHAOS
    @given(schedules)
    def test_tag_protocol_state_stays_sane(self, schedule):
        net = run_with(schedule)
        for tag in net.tags.values():
            assert 0 <= tag.offset < tag.period
            assert tag.slot_counter >= 0
            assert tag.transmissions <= len(net.records)

    @CHAOS
    @given(schedules)
    def test_network_reconverges_after_any_schedule(self, schedule):
        """Whatever the injection, the MAC must heal once faults stop:
        the paper's self-stabilisation claim, tested adversarially."""
        net = run_with(schedule)
        assert net.run_until_converged(streak=32, max_slots=50_000) is not None

    @CHAOS
    @given(st.integers(0, 2**31 - 1))
    def test_generated_schedules_replay_and_round_trip(self, seed):
        s = FaultSchedule.generate(
            seed=seed, n_slots=N_SLOTS, tags=list(TAGS), n_faults=5
        )
        assert FaultSchedule.generate(
            seed=seed, n_slots=N_SLOTS, tags=list(TAGS), n_faults=5
        ) == s
        assert FaultSchedule.from_jsonable(s.to_jsonable()) == s
        net = run_with(s, seed=1)
        assert not net.faults.state.any_active()
