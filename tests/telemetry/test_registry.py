"""Registry behaviour, the module-level on/off gate, and the
zero-cost-when-off contract against the instrumented simulator."""

import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry, MetricsSnapshot


class TestRegistry:
    def test_counter_accumulates_per_labelset(self):
        reg = MetricsRegistry()
        reg.inc("mac.slots")
        reg.inc("mac.slots", 2)
        reg.inc("mac.tag.acked", tag="tag1")
        snap = reg.snapshot()
        assert snap.value("mac.slots") == 3
        assert snap.value("mac.tag.acked", tag="tag1") == 1
        assert snap.value("mac.tag.acked", tag="tag2") is None

    def test_type_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError):
            reg.set_gauge("x", 1.0)
        with pytest.raises(ValueError):
            reg.observe("x", 1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("")

    def test_histogram_bounds_fixed_at_first_touch(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        reg.histogram("h", bounds=(1.0, 2.0))  # same layout: fine
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_histogram_same_bounds_across_labels(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0), tag="a").observe(0.5)
        reg.histogram("h", tag="b").observe(5.0)  # inherits family bounds
        snap = reg.snapshot()
        assert snap.value("h", tag="b")["bounds"] == [1.0, 2.0]

    def test_snapshot_is_immutable_view(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        reg.inc("c")
        assert snap.value("c") == 1
        assert reg.snapshot().value("c") == 2

    def test_reset_clears_types_too(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        reg.set_gauge("x", 1.0)  # no stale type conflict after reset
        assert reg.snapshot().value("x") == 1.0

    def test_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.inc("acks", tag="a")
        reg.inc("acks", 2, tag="b")
        assert reg.snapshot().total("acks") == 3
        assert reg.snapshot().total("absent") == 0

    def test_total_rejects_non_counter(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        with pytest.raises(ValueError):
            reg.snapshot().total("g")


class TestActiveGate:
    def test_off_by_default(self):
        assert telemetry.active() is None

    def test_enable_disable(self):
        try:
            reg = telemetry.enable()
            assert telemetry.active() is reg
        finally:
            telemetry.disable()
        assert telemetry.active() is None

    def test_collecting_restores_previous_state(self):
        outer = MetricsRegistry()
        with telemetry.collecting(outer):
            assert telemetry.active() is outer
            with telemetry.collecting() as inner:
                assert telemetry.active() is inner
                assert inner is not outer
            assert telemetry.active() is outer
        assert telemetry.active() is None

    def test_collecting_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.collecting():
                raise RuntimeError("boom")
        assert telemetry.active() is None


class TestZeroCostOffContract:
    """Collection must never perturb the simulation it observes."""

    def test_scenario_trace_identical_with_and_without_telemetry(self):
        from repro.faults.scenarios import run_scenario

        baseline = run_scenario("fault_burst").trace.canonical_bytes()
        with telemetry.collecting():
            observed = run_scenario("fault_burst").trace.canonical_bytes()
        assert observed == baseline

    def test_supervised_scenario_unperturbed_and_counted(self):
        from repro.faults.scenarios import run_scenario

        baseline = run_scenario("supervised").trace.canonical_bytes()
        with telemetry.collecting() as reg:
            observed = run_scenario("supervised").trace.canonical_bytes()
        assert observed == baseline
        snap = reg.snapshot()
        assert snap.total("mac.slots") == 240
        assert snap.total("faults.applied") == 5

    def test_instrumented_network_records_slot_outcomes(self):
        from repro.core.network import NetworkConfig, SlottedNetwork

        with telemetry.collecting() as reg:
            net = SlottedNetwork(
                {"tag1": 4, "tag2": 8, "tag3": 8},
                config=NetworkConfig(ideal_channel=True),
            )
            net.run(200)
        snap = reg.snapshot()
        assert snap.total("mac.slots") == 200
        decoded = sum(1 for r in net.records if r.decoded is not None)
        assert snap.total("mac.decodes") == decoded
        collisions = sum(1 for r in net.records if r.collision_detected)
        assert snap.total("mac.collisions") == collisions

    def test_engine_event_counter_batches(self):
        from repro.sim.engine import Simulator

        with telemetry.collecting() as reg:
            sim = Simulator()
            for i in range(5):
                sim.schedule_at(float(i), lambda: None)
            sim.run()
        assert reg.snapshot().total("engine.events") == 5

    def test_repeated_collection_is_deterministic(self):
        from repro.faults.scenarios import run_scenario

        sigs = []
        for _ in range(2):
            with telemetry.collecting() as reg:
                run_scenario("fault_burst")
            sigs.append(reg.snapshot().signature())
        assert sigs[0] == sigs[1]


class TestSnapshotSerialisation:
    def test_jsonable_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", tag="a")
        reg.set_gauge("g", 3.5)
        reg.observe("h", 12)
        snap = reg.snapshot()
        back = MetricsSnapshot.from_jsonable(snap.to_jsonable())
        assert back == snap
        assert back.canonical_bytes() == snap.canonical_bytes()

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            MetricsSnapshot.from_jsonable({"version": 99, "metrics": {}})

    def test_unknown_instrument_type_rejected(self):
        with pytest.raises(ValueError):
            MetricsSnapshot.from_jsonable(
                {"version": 1, "metrics": {"x": {"": {"type": "exotic"}}}}
            )

    def test_json_round_trip_preserves_bytes(self):
        import json

        reg = MetricsRegistry()
        reg.observe("h", 7)
        snap = reg.snapshot()
        rehydrated = MetricsSnapshot.from_jsonable(
            json.loads(json.dumps(snap.to_jsonable()))
        )
        assert rehydrated.canonical_bytes() == snap.canonical_bytes()
