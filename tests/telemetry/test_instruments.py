"""Unit tests for the typed telemetry instruments and label encoding."""

import json
import math

import pytest

from repro.telemetry import (
    DEFAULT_SLOT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    labelset,
    labelset_key,
    log_spaced_bounds,
    parse_labelset_key,
)


class TestLabelSets:
    def test_labelset_sorts_keys(self):
        assert labelset({"b": 2, "a": 1}) == (("a", "1"), ("b", "2"))

    def test_key_round_trip(self):
        ls = labelset({"tag": "tag4", "kind": "brownout"})
        assert parse_labelset_key(labelset_key(ls)) == ls

    def test_empty_labelset_key(self):
        assert labelset_key(()) == ""
        assert parse_labelset_key("") == ()

    @pytest.mark.parametrize("bad", ["a=b", "a|b", "a\nb"])
    def test_forbidden_characters_rejected(self, bad):
        with pytest.raises(ValueError):
            labelset({"k": bad})
        with pytest.raises(ValueError):
            labelset({bad: "v"})

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError):
            parse_labelset_key("no-separator")


class TestLogSpacedBounds:
    def test_default_slot_bounds_shape(self):
        assert len(DEFAULT_SLOT_BOUNDS) == 15  # 16 buckets - 1 overflow
        assert DEFAULT_SLOT_BOUNDS[0] == 1.0
        assert DEFAULT_SLOT_BOUNDS[-1] == 100_000.0

    def test_bounds_strictly_ascending(self):
        bounds = log_spaced_bounds(0.5, 2000.0, 10)
        assert list(bounds) == sorted(bounds)
        assert len(set(bounds)) == len(bounds)

    def test_bounds_are_pure(self):
        assert log_spaced_bounds(1.0, 100.0, 8) == log_spaced_bounds(
            1.0, 100.0, 8
        )

    @pytest.mark.parametrize(
        "low,high,n", [(0.0, 1.0, 4), (2.0, 1.0, 4), (1.0, 2.0, 1)]
    )
    def test_invalid_arguments_rejected(self, low, high, n):
        with pytest.raises(ValueError):
            log_spaced_bounds(low, high, n)


class TestCounter:
    def test_inc_and_merge_add(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        assert a.merge(b).value == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter(-1)
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_jsonable_round_trip(self):
        c = Counter(9)
        assert Counter.from_jsonable(c.to_jsonable()) == c


class TestGauge:
    def test_set_overwrites_merge_keeps_max(self):
        a, b = Gauge(), Gauge()
        a.set(5.0)
        a.set(2.0)
        b.set(3.0)
        assert a.merge(b).value == 3.0

    def test_set_max_is_high_water(self):
        g = Gauge()
        g.set_max(2.0)
        g.set_max(1.0)
        assert g.value == 2.0

    def test_unset_gauge_is_identity(self):
        g = Gauge()
        g.set(4.0)
        assert Gauge().merge(g) == g
        assert g.merge(Gauge()) == g

    def test_non_finite_rejected(self):
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(ValueError):
                Gauge().set(bad)

    def test_jsonable_round_trip_including_unset(self):
        assert Gauge.from_jsonable(Gauge().to_jsonable()) == Gauge()
        g = Gauge(7.5)
        assert Gauge.from_jsonable(g.to_jsonable()) == g


class TestHistogram:
    def test_bucketing_includes_overflow(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        # bisect_right: <1.0 -> bucket 0, [1.0, 10.0) -> bucket 1,
        # >=10.0 -> overflow
        assert h.counts == [1, 2, 2]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 11.0

    def test_merge_adds_buckets_and_combines_extremes(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(1.0, 10.0))
        a.observe(2.0)
        b.observe(20.0)
        m = a.merge(b)
        assert m.counts == [0, 1, 1]
        assert m.count == 2
        assert m.min == 2.0 and m.max == 20.0
        assert m.sum == 22.0

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 2.0)).merge(Histogram(bounds=(1.0, 3.0)))

    def test_empty_histogram_is_identity(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(3.0)
        empty = Histogram(bounds=(1.0, 10.0))
        assert empty.merge(h) == h
        assert h.merge(empty) == h

    def test_mean(self):
        h = Histogram(bounds=(1.0, 10.0))
        assert h.mean is None
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_non_finite_observation_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(math.inf)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 2.0), counts=[1, 2])
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 2.0), counts=[1, -1, 0])

    def test_jsonable_round_trip_is_json_safe(self):
        h = Histogram()
        for v in (1, 7, 300, 99_999, 200_000):
            h.observe(v)
        doc = h.to_jsonable()
        json.dumps(doc, allow_nan=False)  # no inf/NaN anywhere
        assert Histogram.from_jsonable(doc) == h
