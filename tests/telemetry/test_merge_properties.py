"""Property-based conformance suite for snapshot merge semantics.

Derandomized (like ``tests/faults``) so CI failures replay exactly.
The algebra under test: ``merge`` is associative and commutative with
the empty snapshot as identity, and the canonical byte encoding — and
therefore the SHA-256 signature — is a pure function of content,
independent of construction order and of ``PYTHONHASHSEED``.

Histogram observations are drawn integer-valued on purpose: float
addition is exactly associative over integers, which is the same
restriction the deterministic instrument sites obey (slot counts,
event tallies — never wall-clock time).
"""

import os
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.telemetry import MetricsRegistry, MetricsSnapshot, merge_snapshots

PROP = settings(max_examples=20, deadline=None, derandomize=True)

_NAMES = ("mac.slots", "mac.acks", "conv.slots", "peak.depth")
_TAGS = ("", "tag1", "tag2")

# One recordable event: (kind, name, tag, integer value).
_events = st.tuples(
    st.sampled_from(("counter", "gauge", "histogram")),
    st.sampled_from(_NAMES),
    st.sampled_from(_TAGS),
    st.integers(min_value=0, max_value=100_000),
)

#: A "process worth" of telemetry: a list of events applied in order.
_event_lists = st.lists(_events, max_size=40)


def _apply(registry: MetricsRegistry, events) -> None:
    for kind, base, tag, value in events:
        # Namespace per kind so generated streams never collide types.
        name = f"{kind}.{base}"
        labels = {"tag": tag} if tag else {}
        if kind == "counter":
            registry.inc(name, value, **labels)
        elif kind == "gauge":
            registry.gauge(name, **labels).set_max(float(value))
        else:
            registry.observe(name, float(value), **labels)


def _snap(events) -> MetricsSnapshot:
    registry = MetricsRegistry()
    _apply(registry, events)
    return registry.snapshot()


class TestMergeAlgebra:
    @PROP
    @given(_event_lists, _event_lists, _event_lists)
    def test_associative(self, a, b, c):
        sa, sb, sc = _snap(a), _snap(b), _snap(c)
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.canonical_bytes() == right.canonical_bytes()

    @PROP
    @given(_event_lists, _event_lists)
    def test_commutative(self, a, b):
        sa, sb = _snap(a), _snap(b)
        assert sa.merge(sb).canonical_bytes() == sb.merge(sa).canonical_bytes()

    @PROP
    @given(_event_lists)
    def test_empty_identity(self, a):
        sa = _snap(a)
        empty = MetricsSnapshot.empty()
        assert empty.merge(sa).canonical_bytes() == sa.canonical_bytes()
        assert sa.merge(empty).canonical_bytes() == sa.canonical_bytes()

    @PROP
    @given(_event_lists)
    def test_self_merge_doubles_counters(self, a):
        sa = _snap(a)
        merged = sa.merge(sa)
        for name in sa.names():
            series = sa.series(name)
            for key, entry in series.items():
                if entry["type"] == "counter":
                    assert merged.series(name)[key]["value"] == 2 * entry["value"]

    @PROP
    @given(_event_lists, _event_lists)
    def test_merge_equals_single_process_run(self, a, b):
        # Two half-runs merged == one process that saw both streams.
        merged = _snap(a).merge(_snap(b))
        combined = MetricsRegistry()
        _apply(combined, a)
        _apply(combined, b)
        assert merged.canonical_bytes() == combined.snapshot().canonical_bytes()

    @PROP
    @given(st.lists(_event_lists, max_size=5))
    def test_fold_is_partition_independent(self, chunks):
        # merge_snapshots in canonical order is invariant to how the
        # event stream was partitioned into "processes".
        flat = [e for chunk in chunks for e in chunk]
        assert (
            merge_snapshots([_snap(chunk) for chunk in chunks]).canonical_bytes()
            == _snap(flat).canonical_bytes()
        )

    @PROP
    @given(_event_lists)
    def test_serialisation_round_trip_preserves_signature(self, a):
        sa = _snap(a)
        back = MetricsSnapshot.from_jsonable(sa.to_jsonable())
        assert back.signature() == sa.signature()


_HASHSEED_SCRIPT = r"""
import sys
sys.path.insert(0, {src!r})
from repro.telemetry import MetricsRegistry

reg = MetricsRegistry()
# Insertion order deliberately scrambled relative to sorted order.
reg.inc("zeta.slots", 3)
reg.inc("alpha.acks", tag="tag2")
reg.inc("alpha.acks", 4, tag="tag1")
reg.gauge("mid.depth").set_max(7.0)
reg.observe("conv.slots", 42)
reg.observe("conv.slots", 999)
print(reg.snapshot().signature())
"""


class TestHashSeedIndependence:
    def test_signature_stable_across_hash_seeds(self):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = _HASHSEED_SCRIPT.format(src=os.path.abspath(src))
        signatures = set()
        for seed in ("0", "424242", "1"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            signatures.add(out.stdout.strip())
        assert len(signatures) == 1, (
            f"snapshot signature varies with PYTHONHASHSEED: {signatures}"
        )
