"""JSONL export round-trips and the scorecard renderer's purity."""

import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    TelemetryFormatError,
    merge_jsonl_files,
    read_jsonl,
    render_report,
    render_results_report,
    snapshot_from_jsonl,
    snapshot_to_jsonl,
    write_jsonl,
)


def _sample_snapshot():
    reg = MetricsRegistry()
    reg.inc("mac.slots", 240)
    reg.inc("mac.collisions", 18)
    reg.inc("mac.tag.acked", 135, tag="tag1")
    reg.inc("mac.tag.nacked", 2, tag="tag1")
    reg.observe("mac.convergence_slots", 77)
    reg.gauge("resilience.peak_missed").set_max(4.0)
    return reg.snapshot()


class TestJsonl:
    def test_round_trip(self, tmp_path):
        snap = _sample_snapshot()
        path = str(tmp_path / "tel.jsonl")
        write_jsonl(snap, path)
        back = read_jsonl(path)
        assert back.canonical_bytes() == snap.canonical_bytes()

    def test_text_is_byte_deterministic(self):
        a = snapshot_to_jsonl(_sample_snapshot())
        b = snapshot_to_jsonl(_sample_snapshot())
        assert a == b

    def test_header_carries_signature(self):
        import json

        snap = _sample_snapshot()
        header = json.loads(snapshot_to_jsonl(snap).splitlines()[0])
        assert header["format"] == "repro-telemetry"
        assert header["signature"] == snap.signature()

    def test_tampering_detected(self):
        text = snapshot_to_jsonl(_sample_snapshot())
        tampered = text.replace('"value":240', '"value":241')
        assert tampered != text
        with pytest.raises(TelemetryFormatError):
            snapshot_from_jsonl(tampered)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not json\n",
            '{"format":"something-else","version":1}\n',
            '{"format":"repro-telemetry","version":99}\n',
        ],
    )
    def test_malformed_documents_rejected(self, bad):
        with pytest.raises(TelemetryFormatError):
            snapshot_from_jsonl(bad)

    def test_merge_jsonl_files(self, tmp_path):
        snap = _sample_snapshot()
        p1, p2 = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write_jsonl(snap, p1)
        write_jsonl(snap, p2)
        merged = merge_jsonl_files([p1, p2])
        assert merged.total("mac.slots") == 2 * snap.total("mac.slots")


class TestRenderReport:
    def test_pure_function_of_snapshot(self):
        snap = _sample_snapshot()
        assert render_report(snap) == render_report(snap)

    def test_scorecard_sections_present(self):
        text = render_report(_sample_snapshot(), title="unit test")
        assert "unit test" in text
        assert "slot outcomes" in text
        assert "per-tag link scorecard" in text
        assert "tag1" in text
        assert "convergence" in text

    def test_signature_shown(self):
        snap = _sample_snapshot()
        assert snap.signature() in render_report(snap)

    def test_empty_snapshot_renders(self):
        reg = MetricsRegistry()
        text = render_report(reg.snapshot())
        assert "series:" in text

    def test_rendering_never_mutates(self):
        snap = _sample_snapshot()
        before = snap.canonical_bytes()
        render_report(snap)
        assert snap.canonical_bytes() == before


class TestRenderResultsReport:
    def test_reads_embedded_telemetry_section(self):
        snap = _sample_snapshot()
        document = {
            "quick": True,
            "seed": 0,
            "telemetry": {
                "signature": snap.signature(),
                "snapshot": snap.to_jsonable(),
            },
        }
        text = render_results_report(document)
        assert snap.signature() in text
        assert "seed" in text

    def test_missing_section_raises(self):
        with pytest.raises((KeyError, ValueError)):
            render_results_report({"quick": True, "seed": 0})


class TestScenarioScorecard:
    def test_fault_scenario_report_shows_fault_counts(self):
        from repro.faults.scenarios import run_scenario

        with telemetry.collecting() as reg:
            run_scenario("fault_burst")
        text = render_report(reg.snapshot())
        assert "fault injection" in text
        assert "beacon_loss" in text
