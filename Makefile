PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-compare chaos-smoke results api-index

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q

# Quick smoke subset (all three fidelity tiers + event engine + DSP
# loop), snapshotted to BENCH_<git-rev>.json for bench-compare.
bench-smoke:
	$(PYTHON) tools/bench_smoke.py

# Random-seed resilience chaos trials; the seed is logged for replay.
chaos-smoke:
	$(PYTHON) tools/chaos_smoke.py

# Usage: make bench-compare BEFORE=BENCH_old.json AFTER=BENCH_new.json
bench-compare:
	$(PYTHON) tools/bench_compare.py $(BEFORE) $(AFTER)

results:
	$(PYTHON) -m repro results --out results.json

api-index:
	$(PYTHON) tools/gen_api_index.py
