PYTHON ?= python
export PYTHONPATH := src

.PHONY: test coverage bench bench-smoke bench-waveform bench-fleet bench-compare chaos-smoke figT figM figA results report api-index

test:
	$(PYTHON) -m pytest -x -q

# Line-coverage ratchet (requires pytest-cov; mirrors the CI job).
coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term --cov-fail-under=80

bench:
	$(PYTHON) -m pytest benchmarks -q

# Quick smoke subset (all three fidelity tiers + event engine + DSP
# loop), snapshotted to BENCH_<git-rev>.json for bench-compare, plus
# the waveform-tier throughput snapshot BENCH_waveform.json (diff it
# against the committed benchmarks/BENCH_waveform.json baseline).
bench-smoke:
	$(PYTHON) tools/bench_smoke.py

# Waveform-tier slots/s snapshot only (fast + reference legs), then
# diff against the committed baseline.
bench-waveform:
	$(PYTHON) tools/bench_smoke.py --waveform-only
	$(PYTHON) tools/bench_compare.py benchmarks/BENCH_waveform.json BENCH_waveform.json

# Fleet-tier aggregate tag-slots/s snapshot (batch engine at each
# fleet width plus the sequential baseline), then diff against the
# committed baseline.
bench-fleet:
	$(PYTHON) tools/bench_smoke.py --fleet-only
	$(PYTHON) tools/bench_compare.py benchmarks/BENCH_fleet.json BENCH_fleet.json

# Random-seed resilience chaos trials; the seed is logged for replay.
chaos-smoke:
	$(PYTHON) tools/chaos_smoke.py

# Multi-reader scaling sweep (planned vs shared carrier) plus the
# single-reader zero-cost-off overhead gate (mirrors the CI figT job).
figT:
	$(PYTHON) -m repro figT
	$(PYTHON) tools/bench_smoke.py --multireader-only

# Relay depth ladder (direct-only vs relaying) plus the relay-off
# zero-cost overhead gate (mirrors the CI figM job).
figM:
	$(PYTHON) -m repro figM
	$(PYTHON) tools/bench_smoke.py --relay-only

# Adaptive-bitrate sweep (adaptive vs every fixed modulation/rate)
# plus the adaptive-off zero-cost overhead gate (mirrors the CI figA
# job).
figA:
	$(PYTHON) -m repro figA
	$(PYTHON) tools/bench_smoke.py --adaptive-only

# Usage: make bench-compare BEFORE=BENCH_old.json AFTER=BENCH_new.json
bench-compare:
	$(PYTHON) tools/bench_compare.py $(BEFORE) $(AFTER)

results:
	$(PYTHON) -m repro results --telemetry --out results.json

# Telemetry scorecard from a results document or telemetry JSONL.
# Usage: make report IN=results.json
report:
	$(PYTHON) -m repro report --input $(IN)

api-index:
	$(PYTHON) tools/gen_api_index.py
