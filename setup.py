"""Setup shim for environments whose pip/setuptools lack PEP 660
editable-install support (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
